#!/usr/bin/env bash
# CLI smoke groups shared by the CI jobs (and runnable locally).
#
# Usage: scripts/ci_smoke.sh [group...]
#
# Groups:
#   runtime   parallel runtime on a tiny grid (workers + replications)
#   adaptive  adaptive replication control (--ci-target)
#   sharded   sharded multi-node network scenarios
#   socket    multi-host backend: 2 localhost workers, sharded sweep,
#             output asserted bit-identical to --backend local
#   engine    vectorized lockstep engine: a figure run diffed
#             bit-identical against the interpreted engine
#   store     content-addressed result store: cold run, warm run diffed
#             bit-identical, `store stats` asserted to report hits
#   scenario  declarative scenario files: validate + run every gallery
#             spec at its --smoke scale, `scenario run fig14.yaml`
#             diffed bit-identical against the flag-spelled fig run
#   serve     sweep-serving query service: ephemeral-port server,
#             `query` cold then warm, both diffed bit-identical
#             against `scenario run`, /stats asserted to report the
#             warm pass as pure hits
#   topology  scenario-diversity subsystem: both generated-topology
#             gallery scenarios at --smoke, a churning bursty run
#             diffed bit-identical between sharded and serial
#             spellings, `topology describe` asserted stable
#   all       every group above (default)
#
# Each group exercises the CLI exactly as a user would — tiny horizons,
# full code paths.  The socket group is the acceptance gate for the
# execution-backend layer: it starts two `repro.cli worker` processes
# on ephemeral ports, runs the same sharded `network --sweep` through
# `--backend socket` and `--backend local`, and diffs the output.

set -euo pipefail

cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

CLI="python -m repro.cli"

# Background workers started by the socket group.  Killed on any exit
# path — an EXIT trap also fires when `set -e` aborts mid-function
# (a RETURN trap would not).
WORKER_PIDS=()
cleanup_workers() {
    if [ "${#WORKER_PIDS[@]}" -gt 0 ]; then
        kill "${WORKER_PIDS[@]}" 2>/dev/null || true
        WORKER_PIDS=()
    fi
}
trap cleanup_workers EXIT

smoke_runtime() {
    echo "--- smoke: parallel runtime (tiny grid) ---"
    $CLI node-sweep --horizon 2 --workers 2 --replications 2
    $CLI validate
}

smoke_adaptive() {
    echo "--- smoke: adaptive replication control ---"
    $CLI node-sweep --horizon 2 --workers 2 --ci-target 0.5 --max-replications 4
    $CLI network --topology line --nodes 3 --horizon 5 --sweep \
        --ci-target 0.5 --max-replications 2
}

smoke_sharded() {
    echo "--- smoke: sharded network scenarios ---"
    $CLI network --topology grid --grid 5x4 --horizon 5 --base-rate 0.05 \
        --shards 4 --workers 2
    $CLI network --topology line --nodes 3 --horizon 5 --sweep \
        --shards 2 --shard-strategy round-robin
}

# Start one worker on an ephemeral port, logging to $1.  Runs in the
# *parent* shell (no command substitution) so WORKER_PIDS really
# accumulates the pids the cleanup trap must kill.
start_worker() {
    $CLI worker --serve 0 --max-sessions 64 >"$1" 2>&1 &
    WORKER_PIDS+=("$!")
}

# Poll a worker log for the announced port; prints it.
worker_port() {
    local port=""
    for _ in $(seq 1 120); do
        port="$(sed -n 's/.*listening on [^:]*:\([0-9]*\)$/\1/p' "$1")"
        [ -n "$port" ] && break
        sleep 0.5
    done
    if [ -z "$port" ]; then
        echo "worker failed to start; log:" >&2
        cat "$1" >&2
        return 1
    fi
    echo "$port"
}

smoke_socket() {
    echo "--- smoke: socket backend (2 localhost workers) ---"
    local log_a log_b port_a port_b
    log_a="$(mktemp)"
    log_b="$(mktemp)"
    start_worker "$log_a"
    start_worker "$log_b"
    port_a="$(worker_port "$log_a")"
    port_b="$(worker_port "$log_b")"
    echo "workers on ports $port_a, $port_b"

    local args=(network --topology line --nodes 4 --horizon 5 --sweep --shards 2)
    local out_local out_socket
    out_local="$(mktemp)"
    out_socket="$(mktemp)"
    $CLI "${args[@]}" --backend local >"$out_local"
    $CLI "${args[@]}" --backend socket \
        --connect "127.0.0.1:$port_a" --connect "127.0.0.1:$port_b" \
        >"$out_socket"
    if diff "$out_local" "$out_socket"; then
        echo "socket backend output is bit-identical to local"
    else
        echo "FAIL: socket backend output differs from local" >&2
        return 1
    fi
    cleanup_workers
}

smoke_engine() {
    echo "--- smoke: vectorized engine vs interpreted ---"
    # The engines promise bit-identity, so a textual diff of a figure
    # regeneration is the acceptance gate — not "close enough".
    local args=(fig 14 --horizon 2 --replications 2)
    local out_interp out_vec
    out_interp="$(mktemp)"
    out_vec="$(mktemp)"
    $CLI "${args[@]}" --engine interpreted >"$out_interp"
    $CLI "${args[@]}" --engine vectorized >"$out_vec"
    if diff "$out_interp" "$out_vec"; then
        echo "vectorized engine output is bit-identical to interpreted"
    else
        echo "FAIL: vectorized engine output differs from interpreted" >&2
        return 1
    fi
    # Adaptive control must agree too (converged flags ride the output).
    local args_ci=(validate --ci-target 0.5 --max-replications 4)
    out_interp="$(mktemp)"
    out_vec="$(mktemp)"
    $CLI "${args_ci[@]}" --engine interpreted >"$out_interp"
    $CLI "${args_ci[@]}" --engine vectorized >"$out_vec"
    if diff "$out_interp" "$out_vec"; then
        echo "adaptive validate output is bit-identical across engines"
    else
        echo "FAIL: adaptive validate output differs across engines" >&2
        return 1
    fi
    # The network subcommand is per-node (ensembles of one) and must
    # not accept the flag at all.
    if $CLI network --topology line --nodes 3 --horizon 5 \
        --engine vectorized >/dev/null 2>&1; then
        echo "FAIL: network accepted --engine vectorized" >&2
        return 1
    fi
    echo "network correctly rejects --engine vectorized"
}

smoke_store() {
    echo "--- smoke: result store (cold vs warm runs) ---"
    local store_dir out_cold out_warm
    store_dir="$(mktemp -d)"
    out_cold="$(mktemp)"
    out_warm="$(mktemp)"
    local args=(node-sweep --horizon 2 --replications 2 --store "$store_dir")
    $CLI "${args[@]}" >"$out_cold"
    $CLI "${args[@]}" >"$out_warm"
    if diff "$out_cold" "$out_warm"; then
        echo "warm store run output is bit-identical to cold"
    else
        echo "FAIL: warm store run output differs from cold" >&2
        return 1
    fi
    # Cross-engine sharing: the vectorized engine must read the
    # interpreted run's entries and print the same bytes.
    $CLI node-sweep --horizon 2 --replications 2 --engine vectorized \
        --store "$store_dir" >"$out_warm"
    if diff "$out_cold" "$out_warm"; then
        echo "vectorized run served from interpreted entries, bit-identical"
    else
        echo "FAIL: vectorized warm run differs from interpreted cold" >&2
        return 1
    fi
    # A fresh `store stats` process must see the warm runs' hits
    # (counters are flushed to the manifest on CLI exit).
    $CLI store stats --store "$store_dir"
    local hits
    hits="$($CLI store stats --store "$store_dir" | sed -n 's/^hits *: *//p')"
    if [ "${hits:-0}" -gt 0 ]; then
        echo "store stats reports $hits hits across processes"
    else
        echo "FAIL: store stats reported no hits after warm runs" >&2
        return 1
    fi
    $CLI store verify --store "$store_dir"
    $CLI store gc --store "$store_dir"
    rm -rf "$store_dir"
}

smoke_scenario() {
    echo "--- smoke: declarative scenario gallery ---"
    # Every shipped spec must validate and run at its own CI scale.
    local file
    for file in scenarios/*.yaml; do
        $CLI scenario validate "$file"
        $CLI scenario run "$file" --smoke
    done
    # The acceptance gate: a scenario run prints the same bytes as the
    # flag spelling it replaces (fig14.yaml's smoke shape is
    # `fig 14 --horizon 2.0 --replications 2`).
    local out_scenario out_flags
    out_scenario="$(mktemp)"
    out_flags="$(mktemp)"
    $CLI scenario run scenarios/fig14.yaml --smoke >"$out_scenario"
    $CLI fig 14 --horizon 2.0 --replications 2 >"$out_flags"
    if diff "$out_scenario" "$out_flags"; then
        echo "scenario run output is bit-identical to the flag spelling"
    else
        echo "FAIL: scenario run output differs from the flag spelling" >&2
        return 1
    fi
    # Schema errors must name the bad key and exit non-zero.
    if $CLI scenario run scenarios/fig14.yaml \
        --override params.bogus=1 >/dev/null 2>&1; then
        echo "FAIL: scenario accepted an unknown params key" >&2
        return 1
    fi
    echo "scenario correctly rejects an unknown params key"
}

smoke_topology() {
    echo "--- smoke: generated topologies, churn and bursty traffic ---"
    # Both generated-topology gallery scenarios at their CI scale.
    $CLI scenario validate scenarios/geo1000.yaml
    $CLI scenario run scenarios/geo1000.yaml --smoke
    $CLI scenario validate scenarios/churn_tree.yaml
    $CLI scenario run scenarios/churn_tree.yaml --smoke
    # The acceptance gate for the dynamics layer: a churning, bursty
    # geometric run must print the same bytes sharded as serial.  The
    # first output line records the execution shape (workers/shards),
    # which is exactly what differs — drop it, diff the numbers.
    local args=(network --topology geometric --nodes 12 --horizon 5
        --base-rate 0.2 --failure-rate 0.2 --duty-spread 0.3
        --traffic bursty --seed 3)
    local out_serial out_sharded
    out_serial="$(mktemp)"
    out_sharded="$(mktemp)"
    $CLI "${args[@]}" | tail -n +2 >"$out_serial"
    $CLI "${args[@]}" --shards 3 --workers 2 | tail -n +2 >"$out_sharded"
    if diff "$out_serial" "$out_sharded"; then
        echo "churn run output is bit-identical sharded vs serial"
    else
        echo "FAIL: churn run output differs sharded vs serial" >&2
        return 1
    fi
    if ! grep -q "failures" "$out_serial"; then
        echo "FAIL: churn run reported no churn summary" >&2
        return 1
    fi
    # `topology describe` is pure inspection: two runs, same bytes.
    local desc_a desc_b
    desc_a="$(mktemp)"
    desc_b="$(mktemp)"
    $CLI topology describe --topology geometric --nodes 200 \
        --seed 2010 >"$desc_a"
    $CLI topology describe --topology geometric --nodes 200 \
        --seed 2010 >"$desc_b"
    if diff "$desc_a" "$desc_b"; then
        echo "topology describe output is stable"
    else
        echo "FAIL: topology describe output is unstable" >&2
        return 1
    fi
    cat "$desc_a"
}

# Read one numeric field out of the server's /stats JSON, e.g.
# `serve_stat "$server" hits`.
serve_stat() {
    $CLI query --server "$1" --stats | python -c \
        "import json, sys; print(json.load(sys.stdin)['store']['$2'])"
}

smoke_serve() {
    echo "--- smoke: sweep-serving query service ---"
    local store_dir log port server out_ref out_cold out_warm
    store_dir="$(mktemp -d)"
    log="$(mktemp)"
    out_ref="$(mktemp)"
    out_cold="$(mktemp)"
    out_warm="$(mktemp)"
    # The ground truth the served answers must match byte-for-byte.
    $CLI scenario run scenarios/fig14.yaml --smoke >"$out_ref"
    # The server gets a fresh store: it computes the cold query
    # itself, so the warm pass genuinely proves store-only serving.
    $CLI serve --store "$store_dir" --progress-interval 0 >"$log" 2>&1 &
    WORKER_PIDS+=("$!")
    port="$(worker_port "$log")"
    server="http://127.0.0.1:$port"
    echo "serve on port $port"

    $CLI query scenarios/fig14.yaml --smoke --server "$server" >"$out_cold"
    if diff "$out_ref" "$out_cold"; then
        echo "cold served output is bit-identical to scenario run"
    else
        echo "FAIL: cold served output differs from scenario run" >&2
        return 1
    fi
    local hits_cold misses_cold hits_warm misses_warm
    hits_cold="$(serve_stat "$server" hits)"
    misses_cold="$(serve_stat "$server" misses)"

    $CLI query scenarios/fig14.yaml --smoke --server "$server" >"$out_warm"
    if diff "$out_ref" "$out_warm"; then
        echo "warm served output is bit-identical to scenario run"
    else
        echo "FAIL: warm served output differs from scenario run" >&2
        return 1
    fi
    hits_warm="$(serve_stat "$server" hits)"
    misses_warm="$(serve_stat "$server" misses)"
    if [ "$hits_warm" -gt "$hits_cold" ] && \
        [ "$misses_warm" -eq "$misses_cold" ]; then
        echo "warm pass was pure hits ($hits_cold -> $hits_warm," \
            "misses flat at $misses_warm)"
    else
        echo "FAIL: warm pass was not store-only" \
            "(hits $hits_cold -> $hits_warm," \
            "misses $misses_cold -> $misses_warm)" >&2
        return 1
    fi
    cleanup_workers
    rm -rf "$store_dir"
}

groups=("${@:-all}")
for group in "${groups[@]}"; do
    case "$group" in
        runtime)  smoke_runtime ;;
        adaptive) smoke_adaptive ;;
        sharded)  smoke_sharded ;;
        socket)   smoke_socket ;;
        engine)   smoke_engine ;;
        store)    smoke_store ;;
        scenario) smoke_scenario ;;
        serve)    smoke_serve ;;
        topology) smoke_topology ;;
        all)      smoke_runtime; smoke_adaptive; smoke_sharded; smoke_socket; smoke_engine; smoke_store; smoke_scenario; smoke_serve; smoke_topology ;;
        *)
            echo "unknown smoke group: $group" >&2
            echo "valid groups: runtime adaptive sharded socket engine store scenario serve topology all" >&2
            exit 2
            ;;
    esac
done
echo "ci_smoke: OK (${groups[*]})"
