#!/usr/bin/env python
"""Docs checker: intra-repo links resolve and code snippets run.

Scans ``README.md`` and ``docs/*.md`` for

* **relative markdown links** ``[text](path)`` — each target must
  exist in the repo (external ``http(s):``/``mailto:`` links and
  in-page ``#`` anchors are skipped);
* **fenced ``python`` code blocks** — each block is executed in its
  own namespace, in file order, with ``src/`` importable.  Blocks
  fenced as ``text``/``console`` are documentation-only and skipped.

Exit code 0 when everything passes; non-zero with a per-failure report
otherwise.  Run from anywhere::

    python scripts/check_docs.py
"""

from __future__ import annotations

import pathlib
import re
import sys
import traceback

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"```(\w*)\n(.*?)```", re.DOTALL)
SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def doc_files() -> list[pathlib.Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def check_links(path: pathlib.Path, text: str) -> list[str]:
    failures = []
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES):
            continue
        target_path = (path.parent / target.split("#")[0]).resolve()
        if not target_path.exists():
            failures.append(
                f"{path.relative_to(REPO_ROOT)}: broken link -> {target}"
            )
    return failures


def run_snippets(path: pathlib.Path, text: str) -> list[str]:
    failures = []
    for i, match in enumerate(FENCE_RE.finditer(text), start=1):
        language, code = match.group(1), match.group(2)
        if language != "python":
            continue
        line = text[: match.start()].count("\n") + 2  # first code line
        try:
            exec(  # noqa: S102 - the whole point of the checker
                compile(code, f"{path.name}:snippet-{i}", "exec"), {}
            )
        except Exception:
            tail = traceback.format_exc().strip().splitlines()[-1]
            failures.append(
                f"{path.relative_to(REPO_ROOT)}:{line}: "
                f"snippet {i} failed: {tail}"
            )
    return failures


def main() -> int:
    sys.path.insert(0, str(REPO_ROOT / "src"))
    failures: list[str] = []
    files = doc_files()
    n_snippets = 0
    for path in files:
        text = path.read_text(encoding="utf-8")
        failures.extend(check_links(path, text))
        n_snippets += sum(
            1 for m in FENCE_RE.finditer(text) if m.group(1) == "python"
        )
        failures.extend(run_snippets(path, text))
    if failures:
        print(f"docs check FAILED ({len(failures)} problem(s)):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"docs check OK: {len(files)} file(s), {n_snippets} python "
        "snippet(s) executed, all links resolve"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
