"""Setuptools shim.

This offline environment lacks the ``wheel`` package, so PEP 660
editable installs (``pip install -e .`` via pyproject build isolation)
cannot build. This shim enables the legacy editable path:

    pip install -e . --no-build-isolation --no-use-pep517

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
