"""Ablation A1: memory policy of the deterministic power-down timer.

DESIGN.md calls out enabling memory as the load-bearing semantics for
the ``Power_Down_Threshold`` transition.  This ablation swaps the
policy (enabling vs age) in the Fig. 3 CPU net and quantifies the
standby-share error against the DES ground truth, whose timer
explicitly resets on arrival.

Age memory *resumes* the idle countdown after a service burst instead
of restarting it, so it sleeps too eagerly — visibly inflating the
standby share at moderate thresholds.
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.core import MemoryPolicy, Simulation
from repro.des import CPUPowerStateSimulator
from repro.energy import format_table
from repro.models import build_cpu_petri_net

LAM, MU, D = 1.0, 10.0, 0.001
HORIZON, WARMUP = scaled(20_000.0, 1_500.0), scaled(200.0, 50.0)
THRESHOLDS = (0.2, 0.5, 1.0, 2.0)


def petri_standby(threshold: float, policy: MemoryPolicy, seed: int = 11) -> float:
    net = build_cpu_petri_net(LAM, MU, threshold, D)
    net.transition("Power_Down_Threshold").memory = policy
    sim = Simulation(net, seed=seed, warmup=WARMUP)
    result = sim.run(HORIZON)
    return result.occupancy("Stand_By")


def des_standby(threshold: float, seed: int = 11) -> float:
    sim = CPUPowerStateSimulator(LAM, MU, threshold, D, seed=seed, warmup=WARMUP)
    return sim.run(HORIZON).fraction("standby")


@pytest.mark.benchmark(group="ablation")
def test_ablation_memory_policy(benchmark):
    def run():
        rows = []
        for t in THRESHOLDS:
            truth = des_standby(t)
            enabling = petri_standby(t, MemoryPolicy.ENABLING)
            age = petri_standby(t, MemoryPolicy.AGE)
            rows.append(
                (t, truth, enabling, age, abs(enabling - truth), abs(age - truth))
            )
        return rows

    rows = once(benchmark, run)
    text = format_table(
        ["PDT (s)", "DES standby", "enabling", "age", "|enab-DES|", "|age-DES|"],
        rows,
        title="Ablation A1: PDT timer memory policy (standby share)",
    )
    write_result("ablation_memory_policy", text)

    enabling_err = sum(r[4] for r in rows)
    age_err = sum(r[5] for r in rows)
    # Enabling memory must track the ground truth strictly better.
    paper_claim(enabling_err < age_err)
    # And age memory must oversleep (standby share inflated).
    paper_claim(all(r[3] >= r[1] - 0.01 for r in rows))


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
