"""Adaptive replication control vs a fixed replication count.

Runs the Figs. 14/15 closed-model threshold grid to a CI-width target
twice: once with the fixed ``replications=MAX_R`` budget every point
would need under worst-case planning, once adaptively
(``ci_target=CI_TARGET``), and records the replication and wall-time
saving.  The grid is deliberately heterogeneous: sub-millisecond
thresholds barely perturb the workload (tight intervals after a couple
of replications) while the near-1 s crossover region is noisy — which
is exactly the case where per-point stopping wins.

Two hard gates, independent of host speed:

* the adaptive run's replicates are a bit-identical prefix of the
  fixed run's at every point (the reproducibility contract), and
* the adaptive run never executes more replications than the fixed
  budget (with at least one point below it on this grid).

The replication saving is a deterministic function of the seed, so it
is recorded *and* asserted; wall times are hardware-dependent and only
recorded.
"""

import os
import time

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.experiments import NodeSweepConfig, run_node_energy_sweep

HORIZON_S = scaled(60.0, 4.0)
CI_TARGET = scaled(0.10, 0.5)
MAX_R = scaled(16, 4)
CONFIG = NodeSweepConfig(workload="closed", horizon=HORIZON_S, seed=2010)


def _timed(fn):
    start = time.perf_counter()
    return fn(), time.perf_counter() - start


@pytest.mark.benchmark(group="adaptive-replication")
def test_adaptive_vs_fixed_replication_budget(benchmark):
    fixed, fixed_s = _timed(
        lambda: run_node_energy_sweep(CONFIG, replications=MAX_R)
    )
    adaptive, adaptive_s = once(
        benchmark,
        lambda: _timed(
            lambda: run_node_energy_sweep(
                CONFIG, ci_target=CI_TARGET, max_replications=MAX_R
            )
        ),
    )

    # Hard gate 1: prefix reproducibility at every grid point.
    for fixed_reps, adaptive_reps in zip(fixed.replicates, adaptive.replicates):
        k = len(adaptive_reps)
        assert [r.total_energy_j for r in adaptive_reps] == [
            r.total_energy_j for r in fixed_reps[:k]
        ]

    # Hard gate 2: the controller only ever saves replications.
    n_points = len(CONFIG.thresholds)
    fixed_total = n_points * MAX_R
    adaptive_total = sum(adaptive.replication_counts)
    assert adaptive_total <= fixed_total
    paper_claim(min(adaptive.replication_counts) < MAX_R)

    n_converged = sum(adaptive.converged)
    text = "\n".join(
        [
            "Adaptive replication control: Figs. 14/15 23-point closed "
            f"sweep ({HORIZON_S:.0f} s horizon, seed {CONFIG.seed}, "
            f"ci-target {CI_TARGET:g}, max {MAX_R} replications/point)",
            f"  host cores            : {os.cpu_count()}",
            f"  fixed    ({MAX_R:2d}/point)   : {fixed_total:4d} replications "
            f"in {fixed_s:7.2f} s",
            f"  adaptive (ci-target)  : {adaptive_total:4d} replications "
            f"in {adaptive_s:7.2f} s",
            f"  replication saving    : "
            f"{(1 - adaptive_total / fixed_total) * 100:5.1f}% "
            "(deterministic at this seed; asserted <= fixed)",
            f"  wall-time saving      : "
            f"{(1 - adaptive_s / fixed_s) * 100:5.1f}% (host-dependent)",
            f"  converged points      : {n_converged}/{n_points} "
            f"(rest capped at {MAX_R})",
            f"  replications per point: {adaptive.replication_counts}",
            "  adaptive replicates   : bit-identical prefix of the fixed "
            "run at every point (asserted)",
        ]
    )
    write_result("adaptive_replication", text)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
