"""Tables VIII–X: the Section V simple-system validation.

* Table VIII/IX — steady-state probabilities of the Fig. 10 stages
  from a long Petri-net run, side-by-side with the paper's values.
* Table X — IMote2 "hardware" energy vs Petri-net prediction with the
  percent difference (paper: 2.95 %).
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.experiments import (
    ValidationConfig,
    format_steady_state_table,
    format_validation_table,
    run_simple_node_validation,
)

#: Paper's Table IX (the 19.7 % Transmitting row is a typo; the delay-
#: consistent value is ~0.12 % — see DESIGN.md).
PAPER_TABLE_IX = {
    "Wait": 59.8,
    "Temp_Place": 19.7,
    "Receiving": 0.098,
    "Computation": 20.2,
    "Transmitting": 0.117,
}

CONFIG = ValidationConfig(
    n_events=scaled(100, 20), petri_horizon=scaled(20_000.0, 2_000.0), seed=2010
)


@pytest.mark.benchmark(group="table8-10")
def test_table08_09_simple_steady_state(benchmark):
    result = once(benchmark, lambda: run_simple_node_validation(CONFIG))
    probs = result.petri.stage_probabilities
    text = format_steady_state_table(probs, paper_values=PAPER_TABLE_IX)
    write_result("table08_09_simple_steady_state", text)
    paper_claim(probs["Wait"] == pytest.approx(0.595, abs=0.02))
    paper_claim(probs["Temp_Place"] == pytest.approx(0.198, abs=0.02))
    paper_claim(probs["Computation"] == pytest.approx(0.204, abs=0.02))
    paper_claim(probs["Receiving"] < 0.01)
    paper_claim(probs["Transmitting"] < 0.01)


@pytest.mark.benchmark(group="table8-10")
def test_table10_imote2_validation(benchmark):
    result = once(benchmark, lambda: run_simple_node_validation(CONFIG))
    text = format_validation_table(result.table_rows())
    write_result("table10_imote2_validation", text)
    # Paper: 2.95 % difference; we assert the same band and direction.
    paper_claim(0.5 < result.percent_difference < 5.0)
    paper_claim(result.petri_energy_j < result.hardware_energy_j)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
