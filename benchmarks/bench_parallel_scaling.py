"""Parallel runtime scaling: the Figs. 14/15 23-point sweep, serial vs pool.

Runs the full 23-point closed-model threshold grid through
``run_node_energy_sweep`` twice — ``workers=1`` (the bit-identical
serial fallback) and ``workers=4`` — and records per-configuration
throughput (grid points per second) and the speedup.  The per-point
results must be numerically identical at a fixed seed regardless of
worker count; that assertion is the hard gate.  The speedup itself is
hardware-dependent (a 4-worker pool needs ≥ 4 cores to approach 4×;
single-core CI boxes will show ≈ 1× minus pool overhead), so it is
recorded, not asserted.

The horizon is shortened from the paper's 900 s to keep the double run
benchmark-sized; the task structure (23 independent node simulations)
is identical to the paper-scale artifact.
"""

import os
import time

import pytest

from conftest import once, write_result
from repro.experiments import NodeSweepConfig, run_node_energy_sweep

HORIZON_S = 60.0
WORKERS = 4
CONFIG = NodeSweepConfig(workload="closed", horizon=HORIZON_S, seed=2010)


def _timed_sweep(workers):
    start = time.perf_counter()
    sweep = run_node_energy_sweep(CONFIG, workers=workers)
    return sweep, time.perf_counter() - start


@pytest.mark.benchmark(group="parallel-scaling")
def test_parallel_scaling_fig14_grid(benchmark):
    serial, serial_s = _timed_sweep(1)
    parallel, parallel_s = once(benchmark, lambda: _timed_sweep(WORKERS))

    # Hard gate: worker count must never change the numbers.
    assert parallel.total_energy_j == serial.total_energy_j
    assert parallel.optimum() == serial.optimum()

    n = len(CONFIG.thresholds)
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    text = "\n".join(
        [
            "Parallel scaling: Figs. 14/15 23-point closed sweep "
            f"({HORIZON_S:.0f} s horizon, seed {CONFIG.seed})",
            f"  host cores          : {os.cpu_count()}",
            f"  serial   (workers=1): {serial_s:8.2f} s "
            f"({n / serial_s:6.2f} points/s)",
            f"  parallel (workers={WORKERS}): {parallel_s:8.2f} s "
            f"({n / parallel_s:6.2f} points/s)",
            f"  speedup             : {speedup:6.2f}x",
            "  per-point results   : numerically identical (asserted)",
        ]
    )
    write_result("parallel_scaling", text)
