"""Parallel runtime scaling: the Figs. 14/15 sweep and a sharded grid.

Runs the full 23-point closed-model threshold grid through
``run_node_energy_sweep`` twice — ``workers=1`` (the bit-identical
serial fallback) and ``workers=4`` — and records per-configuration
throughput (grid points per second) and the speedup.  A second section
does the same for the sharded network path: a 100-node
``GridTopology`` scenario unsharded vs ``shards=4`` worker groups.
The per-point results must be numerically identical at a fixed seed
regardless of worker or shard count; those assertions are the hard
gate.  The speedups themselves are hardware-dependent (a 4-worker pool
needs ≥ 4 cores to approach 4×), so they are recorded, not asserted —
and on a host with fewer than two cores the bench *refuses to record*:
the hard identity gates still run and the numbers are echoed, but
``results/`` is left untouched, because a "0.9x" measured there is
pool overhead, not scaling.  The recorded artifacts carry a refusal
stamp until a multi-core runner re-baselines them.

The horizon is shortened from the paper's 900 s to keep the double run
benchmark-sized; the task structures (23 independent node simulations;
100 independent grid nodes) are identical to the paper-scale
artifacts.
"""

import os
import time

import pytest

from conftest import once, scaled, write_result
from repro.experiments import NodeSweepConfig, run_node_energy_sweep
from repro.models import GridTopology, NodeParameters, SensorNetworkModel

HORIZON_S = scaled(60.0, 4.0)
WORKERS = scaled(4, 2)
CONFIG = NodeSweepConfig(workload="closed", horizon=HORIZON_S, seed=2010)

SHARDS = scaled(4, 2)
GRID = GridTopology(*scaled((10, 10), (3, 3)))
GRID_HORIZON_S = scaled(30.0, 4.0)
GRID_BASE_RATE = 0.004  # hotspot at 0.4 events/s stays unsaturated


def _timed_sweep(workers):
    start = time.perf_counter()
    sweep = run_node_energy_sweep(CONFIG, workers=workers)
    return sweep, time.perf_counter() - start


def _timed_grid(shards, workers):
    network = SensorNetworkModel(
        GRID, NodeParameters(power_down_threshold=0.01)
    )
    start = time.perf_counter()
    result = network.simulate(
        GRID_HORIZON_S,
        seed=2010,
        base_rate=GRID_BASE_RATE,
        workers=workers,
        shards=shards,
    )
    return result, time.perf_counter() - start


def _speedup_lines(label, serial_s, parallel_s):
    """Speedup report lines (only emitted on recordable hosts)."""
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    return [f"  {label}: {speedup:6.2f}x"]


def _record_or_refuse(name, text):
    """Persist via ``write_result`` — unless the host can't scale.

    A scaling number measured on fewer than two cores is pool overhead
    wearing a speedup's clothes; recording it would poison the
    baseline.  The hard identity gates have already run by the time we
    get here, so the bench still *verifies* on any host — it just
    refuses to put single-core timings in ``results/``.
    """
    cores = os.cpu_count() or 1
    if cores < 2:
        print(
            f"\n{text}\n[refusing to record {name}: os.cpu_count()={cores} "
            "< 2 — these timings measure pool overhead, not scaling; "
            "re-baseline on a multi-core runner]"
        )
        return
    write_result(name, text)


@pytest.mark.benchmark(group="parallel-scaling")
def test_parallel_scaling_fig14_grid(benchmark):
    serial, serial_s = _timed_sweep(1)
    parallel, parallel_s = once(benchmark, lambda: _timed_sweep(WORKERS))

    # Hard gate: worker count must never change the numbers.
    assert parallel.total_energy_j == serial.total_energy_j
    assert parallel.optimum() == serial.optimum()

    n = len(CONFIG.thresholds)
    text = "\n".join(
        [
            "Parallel scaling: Figs. 14/15 23-point closed sweep "
            f"({HORIZON_S:.0f} s horizon, seed {CONFIG.seed})",
            f"  host cores          : {os.cpu_count()}",
            f"  serial   (workers=1): {serial_s:8.2f} s "
            f"({n / serial_s:6.2f} points/s)",
            f"  parallel (workers={WORKERS}): {parallel_s:8.2f} s "
            f"({n / parallel_s:6.2f} points/s)",
            *_speedup_lines("speedup             ", serial_s, parallel_s),
            "  per-point results   : numerically identical (asserted)",
        ]
    )
    _record_or_refuse("parallel_scaling", text)


@pytest.mark.benchmark(group="parallel-scaling")
def test_shard_scaling_network_grid(benchmark):
    serial, serial_s = _timed_grid(shards=1, workers=1)
    sharded, sharded_s = once(
        benchmark, lambda: _timed_grid(shards=SHARDS, workers=WORKERS)
    )

    # Hard gate: sharding must never change the numbers.
    assert sharded == serial

    n = GRID.n_nodes
    text = "\n".join(
        [
            f"Shard scaling: {GRID.describe()} "
            f"({GRID_HORIZON_S:.0f} s horizon, {GRID_BASE_RATE:g} events/s "
            "base rate, seed 2010)",
            f"  host cores          : {os.cpu_count()}",
            f"  unsharded (shards=1): {serial_s:8.2f} s "
            f"({n / serial_s:6.2f} nodes/s)",
            f"  sharded   (shards={SHARDS}, workers={WORKERS}): "
            f"{sharded_s:8.2f} s ({n / sharded_s:6.2f} nodes/s)",
            *_speedup_lines("speedup             ", serial_s, sharded_s),
            "  merged NetworkResult: identical to unsharded (asserted)",
        ]
    )
    _record_or_refuse("shard_scaling", text)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
