"""Figure 15: open-model Power_Down_Threshold sweep (15 min, 1 event/s).

Same protocol as Fig. 14 with the open workload generator (events
arrive independently of system state and may queue).  Paper claims:
optimum ≈ 0.01 s at ≈ 2589 J, 55 % below immediate power-down and 26 %
below never powering down.
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.energy import format_breakdown_sweep
from repro.experiments import (
    NodeSweepConfig,
    format_optimum_summary,
    run_node_energy_sweep,
)

CONFIG = NodeSweepConfig(
    workload="open", horizon=scaled(900.0, 20.0), seed=2010
)


@pytest.mark.benchmark(group="fig14-15")
def test_fig15_open_sweep(benchmark):
    sweep = once(benchmark, lambda: run_node_energy_sweep(CONFIG))
    t_opt, e_opt = sweep.optimum()
    text = format_breakdown_sweep(
        sweep.thresholds,
        sweep.breakdowns,
        title="Figure 15: PDT vs Energy Requirements (open model, 1 event/s)",
    )
    text += "\n" + format_optimum_summary(
        "open",
        t_opt,
        e_opt,
        sweep.savings_vs_immediate(),
        sweep.savings_vs_never(),
    )
    text += "\n(paper: optimum 0.01 s, ~2589 J, 55% vs immediate, 26% vs never)"
    write_result("fig15_open_sweep", text)

    paper_claim(0.0017 <= t_opt <= 0.05)
    # The open model pays more wake-ups at tiny thresholds, so its
    # savings vs immediate power-down exceed the closed model's band.
    paper_claim(sweep.savings_vs_immediate() > 0.25)
    paper_claim(sweep.savings_vs_never() > 0.10)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
