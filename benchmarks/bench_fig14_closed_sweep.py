"""Figure 14: closed-model Power_Down_Threshold sweep (15 min, 1 event/s).

Regenerates the eight stacked energy components over the paper's
23-point threshold grid, locates the optimum, and checks the paper's
Section VII-A claims: the optimum sits just above the radio-phase
duration (paper: 0.00177 s) and beats both extremes (paper: 35 % vs
immediate power-down, 29 % vs never powering down).
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.energy import format_breakdown_sweep
from repro.experiments import (
    NodeSweepConfig,
    format_optimum_summary,
    run_node_energy_sweep,
)

CONFIG = NodeSweepConfig(
    workload="closed", horizon=scaled(900.0, 20.0), seed=2010
)


@pytest.mark.benchmark(group="fig14-15")
def test_fig14_closed_sweep(benchmark):
    sweep = once(benchmark, lambda: run_node_energy_sweep(CONFIG))
    t_opt, e_opt = sweep.optimum()
    text = format_breakdown_sweep(
        sweep.thresholds,
        sweep.breakdowns,
        title="Figure 14: PDT vs Energy Requirements (closed model, 1 event/s)",
    )
    text += "\n" + format_optimum_summary(
        "closed",
        t_opt,
        e_opt,
        sweep.savings_vs_immediate(),
        sweep.savings_vs_never(),
    )
    text += "\n(paper: optimum 0.00177 s, ~2432 J, 35% vs immediate, 29% vs never)"
    write_result("fig14_closed_sweep", text)

    # Optimum location: the just-above-radio-phase cluster.
    paper_claim(0.0017 <= t_opt <= 0.01)
    # Both savings claims hold directionally.
    paper_claim(sweep.savings_vs_immediate() > 0.10)
    paper_claim(sweep.savings_vs_never() > 0.10)
    # The wake-up transitional component collapses past 0.00177 s.
    wake = dict(zip(sweep.thresholds, sweep.series("cpu_wakeup")))
    paper_claim(wake[0.00178] < 0.7 * wake[1e-9])


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
