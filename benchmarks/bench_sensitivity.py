"""Extension benches: sensitivity of the optimum threshold + break-even.

Extends Section VII the way a deployment would: (a) how the optimum
``Power_Down_Threshold`` and its payoff move with the event rate, and
(b) the closed-form break-even wake-up delay of the analytic CPU model
(the paper's Section I question "should a processor be put to sleep
immediately after computation ... or never?" answered as a single
number for the PXA271).
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.energy import format_table
from repro.experiments import (
    cpu_breakeven_delay,
    cpu_energy_threshold_response,
    node_optimum_vs_rate,
)


@pytest.mark.benchmark(group="sensitivity")
def test_optimum_vs_event_rate(benchmark):
    rates = (0.25, 0.5, 1.0, 2.0, 4.0)

    result = once(
        benchmark,
        lambda: node_optimum_vs_rate(
            rates=rates,
            thresholds=(1e-9, 0.00178, 0.01, 0.1, 1.0, 10.0, 100.0),
            horizon=scaled(300.0, 30.0),
        ),
    )
    text = format_table(
        ["events/s", "optimum PDT (s)", "energy (J)", "saving vs never-down"],
        result.rows(),
        title="Sensitivity: optimum Power_Down_Threshold vs event rate "
        "(closed model, 300 s)",
    )
    write_result("sensitivity_optimum_vs_rate", text)
    # The optimum is set by the intra-cycle radio phase, not the event
    # gap: it must stay in the just-above-0.00177 s cluster throughout.
    for t_opt in result.optima:
        paper_claim(t_opt in (0.00178, 0.01), str(t_opt))
    # Rarer events leave more idle time to avoid: the saving at the
    # lowest rate (index 0) dwarfs the saving at the highest.
    paper_claim(result.savings_vs_never[0] > result.savings_vs_never[-1])


@pytest.mark.benchmark(group="sensitivity")
def test_cpu_breakeven_delay(benchmark):
    def run():
        d_star = cpu_breakeven_delay()
        below = cpu_energy_threshold_response(d_star * 0.5, (1e-6, 5.0))
        above = cpu_energy_threshold_response(d_star * 2.0, (1e-6, 5.0))
        return d_star, below, above

    d_star, below, above = once(benchmark, run)
    rows = [
        ["0.5 x D*", below[0][1], below[1][1]],
        ["2.0 x D*", above[0][1], above[1][1]],
    ]
    text = format_table(
        ["wake-up delay", "E(sleep immediately) J", "E(never sleep) J"],
        rows,
        title=(
            f"Break-even wake-up delay for the PXA271 CPU model: "
            f"D* = {d_star:.4f} s (lam=1/s, mean service 0.1 s, 1000 s)"
        ),
    )
    write_result("sensitivity_breakeven_delay", text)
    assert 0.01 < d_star < 10.0
    assert below[0][1] < below[1][1]  # below D*: sleeping wins
    assert above[0][1] > above[1][1]  # above D*: idling wins


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
