"""Extension bench: generated-topology scale (100 → 1000 nodes).

Times a full churning, bursty network run on random geometric
deployments of growing size — the scenario-diversity subsystem's
answer to "does the generated-topology path actually scale?".  Each
run goes through the sharded worker path exactly as the
``geo1000.yaml`` gallery scenario does; recorded columns are wall
time, simulated events, and events/s of end-to-end throughput.

Scale-free gates stay active in smoke mode: topology generation is
asserted seed-deterministic and the sharded run bit-identical to the
serial one at the smallest size.
"""

import time

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.energy import format_table
from repro.models import NodeParameters, SensorNetworkModel
from repro.topology import ChurnModel, MMPPTraffic, RandomGeometricTopology

SIZES = (100, 400, 1000)
SEED = 2010
BASE_RATE = 0.1


def build_network(n_nodes):
    return SensorNetworkModel(
        RandomGeometricTopology(n_nodes, seed=SEED),
        NodeParameters(power_down_threshold=0.01),
        dynamics=ChurnModel(failure_rate=1e-4, duty_spread=0.2),
        traffic=MMPPTraffic(burst_on_s=5.0, burst_off_s=15.0),
    )


def run_one(n_nodes, horizon):
    start = time.perf_counter()
    result = build_network(n_nodes).simulate(
        horizon=horizon,
        seed=SEED,
        base_rate=BASE_RATE,
        shards=8,
        workers=4,
    )
    wall_s = time.perf_counter() - start
    events = sum(node.events_completed for node in result.nodes)
    return result, wall_s, events


@pytest.mark.benchmark(group="topology")
def test_topology_scale(benchmark):
    horizon = scaled(120.0, 2.0)

    # Scale-free gates first, at the cheapest size: the generator is a
    # pure function of its seed, and sharding never changes numbers.
    small = RandomGeometricTopology(SIZES[0], seed=SEED)
    assert small.tree_parents() == (
        RandomGeometricTopology(SIZES[0], seed=SEED).tree_parents()
    )
    serial = build_network(SIZES[0]).simulate(
        horizon=horizon, seed=SEED, base_rate=BASE_RATE
    )
    sharded, _, _ = run_one(SIZES[0], horizon)
    assert sharded == serial

    def sweep():
        return [run_one(n, horizon) for n in SIZES]

    runs = once(benchmark, sweep)

    rows = []
    for n, (result, wall_s, events) in zip(SIZES, runs):
        assert len(result.nodes) == n
        rows.append(
            [n, horizon, wall_s, events, events / wall_s if wall_s else 0.0]
        )
    text = format_table(
        [
            "nodes",
            "horizon (s)",
            "wall (s)",
            "events",
            "events/s",
        ],
        rows,
        title="Generated-topology scale: churning bursty geometric "
        f"deployments, shards=8/workers=4, seed {SEED}",
    )
    write_result("topology_scale", text)

    # At paper scale the 1000-node run must finish in minutes, not
    # hours, and throughput must not collapse with size (the per-node
    # cost is flat; only the relay load near the sink grows).
    paper_claim(rows[-1][2] < 600.0, "1000-node run exceeded 10 minutes")
    paper_claim(
        rows[-1][4] > rows[0][4] / 10.0,
        "throughput collapsed between 100 and 1000 nodes",
    )


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
