"""Extension bench: network-level lifetime optimisation (energy hole).

Composes the node model into a 5-node relay chain and optimises the
``Power_Down_Threshold`` for the *network* lifetime (time to the first
node death) — the deployment-level version of the paper's Section VII
question.  Asserts the energy-hole structure (sink-adjacent hotspot)
and that the single-node optimum band carries over to the network
metric.  The sweep runs through the sharded path (``shards=2``), which
is numerically identical to the serial one by construction — see
``bench_parallel_scaling.py`` for the shard-scaling timings.
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.energy import IMOTE2_3xAAA, format_table
from repro.models import LineTopology, NodeParameters, SensorNetworkModel

THRESHOLDS = (1e-9, 0.00178, 0.01, 0.1, 1.0, 100.0)


@pytest.mark.benchmark(group="network")
def test_network_lifetime_sweep(benchmark):
    network = SensorNetworkModel(
        LineTopology(5),
        NodeParameters(power_down_threshold=0.01),
        IMOTE2_3xAAA,
    )

    results = once(
        benchmark,
        lambda: network.sweep_thresholds(
            THRESHOLDS,
            horizon=scaled(300.0, 20.0),
            seed=2010,
            base_rate=0.5,
            shards=2,
        ),
    )

    rows = [
        [
            r.power_down_threshold,
            r.total_energy_j,
            r.network_lifetime_days,
            r.hotspot.node_id,
            r.lifetime_imbalance(),
        ]
        for r in results
    ]
    text = format_table(
        [
            "PDT (s)",
            "network energy (J)",
            "network lifetime (d)",
            "hotspot node",
            "imbalance (x)",
        ],
        rows,
        title="Network lifetime vs Power_Down_Threshold "
        "(5-node relay chain, 0.5 events/s/node, 3xAAA per node)",
    )
    write_result("network_lifetime_sweep", text)

    # Energy hole: the sink-adjacent node is always the hotspot.
    paper_claim(all(r.hotspot.node_id == 1 for r in results))
    # The single-node optimum band carries over to the network metric.
    best = max(results, key=lambda r: r.network_lifetime_days)
    paper_claim(best.power_down_threshold in (0.00178, 0.01))
    # Lifetimes are materially imbalanced (the motivation for
    # location-aware power management in the WSN literature).
    paper_claim(results[2].lifetime_imbalance() > 1.3)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
