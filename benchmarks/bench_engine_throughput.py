"""Ablation A3: engine event-loop throughput — the engine scoreboard.

Microbenchmarks of the simulation engine itself: firings per second on
(a) the Fig. 3 CPU net, (b) the full Fig. 12 node net, and (c) a
synthetic wide net with many concurrently enabled timed transitions.
These are true pytest-benchmark microbenchmarks (multiple rounds) —
they quantify the paper's "long simulation time" remark for our
substrate.

The final test is the vectorized-engine scoreboard: the full WSN node
net at the paper's 900 s evaluation horizon, one replication ensemble
run first through the interpreted engine (per-seed Python loop), then
through ``repro.core.fast`` in lockstep.  Bit-identity of every
replication is the hard gate; the recorded events/sec pair
(``results/engine_throughput.txt``) is the before/after scoreboard,
and the ≥ 5x speedup is asserted at paper scale.
"""

import time

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.core import Exponential, PetriNet, Simulation
from repro.core.fast import run_ensemble
from repro.models import NodeParameters, build_cpu_petri_net, build_wsn_node_net
from repro.models.workload import ClosedWorkload
from repro.runtime.seeding import replication_seeds


@pytest.mark.benchmark(group="engine-throughput")
def test_throughput_cpu_net(benchmark):
    def run():
        net = build_cpu_petri_net(1.0, 10.0, 0.1, 0.3)
        sim = Simulation(net, seed=1)
        result = sim.run(scaled(2000.0, 100.0))
        return result.firings

    firings = benchmark(run)
    assert firings > scaled(1000, 10)


@pytest.mark.benchmark(group="engine-throughput")
def test_throughput_node_net(benchmark):
    def run():
        net = build_wsn_node_net(
            NodeParameters(power_down_threshold=0.01), ClosedWorkload(1.0)
        )
        sim = Simulation(net, seed=1)
        result = sim.run(scaled(200.0, 20.0))
        return result.firings

    firings = benchmark(run)
    assert firings > scaled(1000, 10)


@pytest.mark.benchmark(group="engine-throughput")
def test_throughput_wide_net(benchmark):
    """Fork-join fan of 20 parallel exponential stages."""

    def build():
        net = PetriNet("wide")
        net.add_place("hub", initial_tokens=20)
        for i in range(20):
            net.add_place(f"stage{i}")
            net.add_transition(
                f"out{i}", Exponential(1.0 + 0.1 * i),
                inputs=["hub"], outputs=[f"stage{i}"],
            )
            net.add_transition(
                f"back{i}", Exponential(2.0), inputs=[f"stage{i}"], outputs=["hub"],
            )
        return net

    def run():
        sim = Simulation(build(), seed=2)
        return sim.run(scaled(100.0, 10.0)).firings

    firings = benchmark(run)
    assert firings > scaled(1000, 10)


#: Scoreboard shape: the paper's 15-minute node horizon, with an
#: ensemble size typical of an adaptive-replication sweep point.  The
#: lockstep engine amortises its per-round overhead across the
#: ensemble, so throughput grows with R (~2.8x at R=32, ~9x at R=128).
SCOREBOARD_HORIZON_S = scaled(900.0, 20.0)
SCOREBOARD_REPLICATIONS = scaled(128, 4)
SCOREBOARD_SEED = 2010


def _scoreboard_net():
    return build_wsn_node_net(
        NodeParameters(power_down_threshold=0.00178), ClosedWorkload(1.0)
    )


@pytest.mark.benchmark(group="engine-throughput")
def test_vectorized_engine_scoreboard(benchmark):
    """Interpreted vs vectorized events/sec on the paper's node model."""
    seeds = replication_seeds(SCOREBOARD_SEED, SCOREBOARD_REPLICATIONS)

    start = time.perf_counter()
    interpreted = [
        Simulation(_scoreboard_net(), seed=s).run(SCOREBOARD_HORIZON_S)
        for s in seeds
    ]
    interpreted_s = time.perf_counter() - start

    def run_vectorized():
        start = time.perf_counter()
        results = run_ensemble(_scoreboard_net(), SCOREBOARD_HORIZON_S, seeds)
        return results, time.perf_counter() - start

    vectorized, vectorized_s = once(benchmark, run_vectorized)

    # Hard gate (scale-free): the lockstep run must be bit-identical to
    # the interpreted engine on every replication.
    for ref, vec in zip(interpreted, vectorized):
        assert vec.firings == ref.firings
        assert vec.final_marking_counts == ref.final_marking_counts
        assert vec.end_time == ref.end_time

    events = sum(r.firings for r in interpreted)
    interp_rate = events / interpreted_s
    vec_rate = events / vectorized_s
    speedup = vec_rate / interp_rate if interp_rate else float("inf")
    # The ISSUE 6 acceptance bar, asserted at paper scale only (tiny
    # smoke ensembles can't amortise the lockstep setup).
    paper_claim(
        speedup >= 5.0,
        f"vectorized engine speedup {speedup:.1f}x < 5x "
        f"(interpreted {interp_rate:,.0f} ev/s, vectorized {vec_rate:,.0f} ev/s)",
    )

    text = "\n".join(
        [
            "Engine scoreboard: WSN node net, closed workload "
            f"({SCOREBOARD_HORIZON_S:.0f} s horizon, "
            f"{SCOREBOARD_REPLICATIONS} replications, "
            f"seed {SCOREBOARD_SEED})",
            f"  events per replication ensemble: {events:,}",
            f"  interpreted (before): {interpreted_s:8.2f} s "
            f"({interp_rate:10,.0f} events/s)",
            f"  vectorized  (after) : {vectorized_s:8.2f} s "
            f"({vec_rate:10,.0f} events/s)",
            f"  speedup             : {speedup:6.2f}x (acceptance bar: 5x)",
            "  per-replication results: bit-identical (asserted)",
        ]
    )
    write_result("engine_throughput", text)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
