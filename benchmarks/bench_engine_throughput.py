"""Ablation A3: engine event-loop throughput.

Microbenchmarks of the simulation engine itself: firings per second on
(a) the Fig. 3 CPU net, (b) the full Fig. 12 node net, and (c) a
synthetic wide net with many concurrently enabled timed transitions.
These are true pytest-benchmark microbenchmarks (multiple rounds) —
they quantify the paper's "long simulation time" remark for our
substrate.
"""

import pytest

from conftest import scaled
from repro.core import Exponential, PetriNet, Simulation
from repro.models import NodeParameters, build_cpu_petri_net, build_wsn_node_net
from repro.models.workload import ClosedWorkload


@pytest.mark.benchmark(group="engine-throughput")
def test_throughput_cpu_net(benchmark):
    def run():
        net = build_cpu_petri_net(1.0, 10.0, 0.1, 0.3)
        sim = Simulation(net, seed=1)
        result = sim.run(scaled(2000.0, 100.0))
        return result.firings

    firings = benchmark(run)
    assert firings > scaled(1000, 10)


@pytest.mark.benchmark(group="engine-throughput")
def test_throughput_node_net(benchmark):
    def run():
        net = build_wsn_node_net(
            NodeParameters(power_down_threshold=0.01), ClosedWorkload(1.0)
        )
        sim = Simulation(net, seed=1)
        result = sim.run(scaled(200.0, 20.0))
        return result.firings

    firings = benchmark(run)
    assert firings > scaled(1000, 10)


@pytest.mark.benchmark(group="engine-throughput")
def test_throughput_wide_net(benchmark):
    """Fork-join fan of 20 parallel exponential stages."""

    def build():
        net = PetriNet("wide")
        net.add_place("hub", initial_tokens=20)
        for i in range(20):
            net.add_place(f"stage{i}")
            net.add_transition(
                f"out{i}", Exponential(1.0 + 0.1 * i),
                inputs=["hub"], outputs=[f"stage{i}"],
            )
            net.add_transition(
                f"back{i}", Exponential(2.0), inputs=[f"stage{i}"], outputs=["hub"],
            )
        return net

    def run():
        sim = Simulation(build(), seed=2)
        return sim.run(scaled(100.0, 10.0)).firings

    firings = benchmark(run)
    assert firings > scaled(1000, 10)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
