"""Figures 4–6: CPU state-time percentages vs Power_Down_Threshold.

Regenerates the three state-share figures (PUD = 0.001 / 0.3 / 10 s)
at the paper's scale: λ = 1 job/s, mean service 0.1 s, 1000 simulated
seconds, thresholds 0.001–1 s.  Each series is printed for all three
estimators and the figure's qualitative claims are asserted.
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.des import CPUStates
from repro.energy import format_state_percentages
from repro.experiments import CPUComparisonConfig, run_cpu_comparison

CONFIG = CPUComparisonConfig(horizon=scaled(1000.0, 60.0))


def _render(result, figure_name):
    blocks = []
    for est in ("simulation", "markov", "petri"):
        blocks.append(
            format_state_percentages(
                result.thresholds,
                {s: result.fractions[est][s] for s in CPUStates.ALL},
                title=f"{figure_name} — {est}",
            )
        )
    return "\n\n".join(blocks)


@pytest.mark.benchmark(group="fig4-6")
def test_fig04_states_pud_0_001(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(0.001, CONFIG))
    write_result("fig04_states_pud_0_001", _render(result, "Figure 4 (PUD=0.001s)"))
    sim = result.fractions["simulation"]
    paper_claim(sim["idle"][0] < sim["idle"][-1])        # idle grows
    paper_claim(sim["standby"][0] > sim["standby"][-1])  # standby shrinks
    paper_claim(max(sim["active"]) - min(sim["active"]) < 0.05)


@pytest.mark.benchmark(group="fig4-6")
def test_fig05_states_pud_0_3(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(0.3, CONFIG))
    write_result("fig05_states_pud_0_3", _render(result, "Figure 5 (PUD=0.3s)"))
    # Petri net tracks the simulator better than the Markov model.
    paper_claim(
        result.mean_abs_fraction_error("petri")
        <= result.mean_abs_fraction_error("markov") + 0.01
    )


@pytest.mark.benchmark(group="fig4-6")
def test_fig06_states_pud_10(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(10.0, CONFIG))
    write_result("fig06_states_pud_10", _render(result, "Figure 6 (PUD=10s)"))
    # "the Markov model completely fails ... the Petri net is in lock
    # step with the simulator"
    paper_claim(result.mean_abs_fraction_error("petri") < 0.03)
    paper_claim(result.mean_abs_fraction_error("markov") > 0.15)
    paper_claim(result.fractions["simulation"]["powerup"][0] > 0.5)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
