"""Result-store reuse: cold vs warm wall time on the Figs. 14/15 grid.

Runs the closed-model threshold sweep three times against one
content-addressed store: cold (every replication simulated and
cached), warm (every replication served from disk), and a top-up at
double the replication count (cached prefix served, only the new
suffix simulated).  Records the wall-time saving of each reuse path.

Hard gates, independent of host speed:

* the warm run recomputes nothing (zero store misses) and is
  bit-identical to the cold run at every (point, replication), and
* the top-up run simulates exactly the replication delta while
  matching a from-scratch run at the larger count bit for bit.

The wall-time savings are hardware-dependent and only recorded; at
paper scale the warm run must still beat the cold run (simulating 15
minutes of model time costs far more than unpickling it).
"""

import os
import pickle
import tempfile
import time

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.experiments import NodeSweepConfig, run_node_energy_sweep
from repro.runtime import ResultStore

HORIZON_S = scaled(60.0, 2.0)
REPLICATIONS = scaled(8, 2)
CONFIG = NodeSweepConfig(workload="closed", horizon=HORIZON_S, seed=2010)


def _timed(fn):
    start = time.perf_counter()
    return fn(), time.perf_counter() - start


def _fingerprint(result):
    return [pickle.dumps(r, 5) for point in result.replicates for r in point]


@pytest.mark.benchmark(group="store-reuse")
def test_store_reuse_cold_warm_topup(benchmark):
    with tempfile.TemporaryDirectory() as d:
        store = ResultStore(d)
        run = lambda reps: run_node_energy_sweep(  # noqa: E731
            CONFIG, replications=reps, store=store
        )

        cold, cold_s = _timed(lambda: run(REPLICATIONS))
        store.hits = store.misses = 0
        warm, warm_s = once(benchmark, lambda: _timed(lambda: run(REPLICATIONS)))

        # Hard gate 1: the warm run is a pure read.
        assert store.misses == 0, "warm run must not recompute anything"
        assert _fingerprint(warm) == _fingerprint(cold)

        # Hard gate 2: topping up serves the prefix, simulates the delta.
        store.hits = store.misses = 0
        topped, topup_s = _timed(lambda: run(2 * REPLICATIONS))
        n_points = len(CONFIG.thresholds)
        assert store.hits == n_points * REPLICATIONS
        assert store.misses == n_points * REPLICATIONS
        scratch, scratch_s = _timed(
            lambda: run_node_energy_sweep(
                CONFIG, replications=2 * REPLICATIONS
            )
        )
        assert _fingerprint(topped) == _fingerprint(scratch)

        paper_claim(warm_s < 0.5 * cold_s, "warm must beat cold at paper scale")
        paper_claim(topup_s < scratch_s, "top-up must beat from-scratch")

        stats = store.stats()
        text = "\n".join(
            [
                "Result-store reuse: Figs. 14/15 23-point closed sweep "
                f"({HORIZON_S:.0f} s horizon, seed {CONFIG.seed}, "
                f"{REPLICATIONS} replications/point)",
                f"  host cores          : {os.cpu_count()}",
                f"  cold  (all computed): {cold_s:7.2f} s "
                f"({n_points * REPLICATIONS} simulations cached)",
                f"  warm  (all cached)  : {warm_s:7.2f} s "
                f"({cold_s / warm_s:6.1f}x, zero misses asserted)",
                f"  top-up to {2 * REPLICATIONS:2d}/point  : {topup_s:7.2f} s "
                f"vs {scratch_s:7.2f} s from scratch "
                f"({scratch_s / topup_s:4.1f}x; prefix served, "
                "delta simulated, bit-identical — asserted)",
                f"  store               : {stats.entries} entries, "
                f"{stats.total_bytes / 1e6:.1f} MB",
                "  warm replicates     : bit-identical to cold at every "
                "(point, replication) (asserted)",
            ]
        )
        write_result("store_reuse", text)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
