"""Figures 7–9: CPU energy estimates vs Power_Down_Threshold.

Energy per Eq. (7) with the PXA271 Table III powers over the 1000 s
run, for all three estimators and the three PUD scenarios.
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.energy import format_energy_series
from repro.experiments import CPUComparisonConfig, run_cpu_comparison

CONFIG = CPUComparisonConfig(horizon=scaled(1000.0, 60.0))


def _render(result, figure_name):
    return format_energy_series(
        result.thresholds,
        {
            "Simulation": result.energy_j["simulation"],
            "Markov": result.energy_j["markov"],
            "Petri Net": result.energy_j["petri"],
        },
        title=figure_name,
    )


@pytest.mark.benchmark(group="fig7-9")
def test_fig07_energy_pud_0_001(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(0.001, CONFIG))
    write_result("fig07_energy_pud_0_001", _render(result, "Figure 7 (PUD=0.001s)"))
    for est in ("simulation", "markov", "petri"):
        e = result.energy_j[est]
        paper_claim(e[-1] > e[0], f"{est}: energy must grow with PDT")


@pytest.mark.benchmark(group="fig7-9")
def test_fig08_energy_pud_0_3(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(0.3, CONFIG))
    write_result("fig08_energy_pud_0_3", _render(result, "Figure 8 (PUD=0.3s)"))
    d = result.delta_energy()
    # Paper Table V: the Petri net is closer to the simulator.
    paper_claim(d["sim_petri"].avg < d["sim_markov"].avg)


@pytest.mark.benchmark(group="fig7-9")
def test_fig09_energy_pud_10(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(10.0, CONFIG))
    write_result("fig09_energy_pud_10", _render(result, "Figure 9 (PUD=10s)"))
    # Paper: the energy trend *decreases* as the threshold increases,
    # because idling is cheaper than repeatedly paying a 10 s wake-up.
    for est in ("simulation", "petri"):
        e = result.energy_j[est]
        paper_claim(e[-1] < e[0], est)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
