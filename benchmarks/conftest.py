"""Shared helpers for the table/figure regeneration benchmarks.

Every benchmark regenerates one paper artifact (table or figure series)
at the paper's own scale, times it with pytest-benchmark, prints the
regenerated rows, and persists them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a regenerated table under benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    These are experiment regenerations (seconds each), not
    microbenchmarks; one round keeps total wall time sane while still
    recording the runtime in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
