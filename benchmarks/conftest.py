"""Shared helpers for the table/figure regeneration benchmarks.

Every benchmark regenerates one paper artifact (table or figure series)
at the paper's own scale, times it with pytest-benchmark, prints the
regenerated rows, and persists them under ``benchmarks/results/`` so
EXPERIMENTS.md can reference stable artifacts.

Smoke mode
----------
Every ``bench_*.py`` is also a script with a ``--smoke`` flag::

    python benchmarks/bench_fig14_closed_sweep.py --smoke

Smoke mode (used by the CI ``bench-smoke`` job) runs the same code
paths at tiny horizons so the scripts can't silently rot, with three
differences: constants wrapped in :func:`scaled` shrink to
benchmark-sized values, :func:`paper_claim` assertions (claims that
only hold at paper scale) are skipped, and :func:`write_result` does
**not** persist — the recorded artifacts under ``results/`` always
come from paper-scale runs.  Scale-free assertions (bit-identity,
prefix reproducibility) stay active in both modes.
"""

from __future__ import annotations

import os
import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Environment switch for tiny-horizon smoke runs (set by ``--smoke``).
SMOKE_ENV = "REPRO_BENCH_SMOKE"


def smoke_mode() -> bool:
    """True when running under ``--smoke`` (tiny-horizon CI mode)."""
    return os.environ.get(SMOKE_ENV) == "1"


def scaled(paper_value, smoke_value):
    """``paper_value``, or ``smoke_value`` under ``--smoke``."""
    return smoke_value if smoke_mode() else paper_value


def paper_claim(condition: bool, label: str = "") -> None:
    """Assert a claim that only holds at paper scale.

    Skipped in smoke mode, where horizons are far too short for the
    paper's quantitative claims; hard scale-free gates (bit-identity,
    prefix reproducibility) must use plain ``assert`` instead.
    """
    if smoke_mode():
        return
    assert condition, label


def write_result(name: str, text: str) -> pathlib.Path:
    """Persist a regenerated table under benchmarks/results/ and echo it.

    In smoke mode the table is only echoed: tiny-horizon numbers must
    never overwrite the recorded paper-scale artifacts.
    """
    path = RESULTS_DIR / f"{name}.txt"
    if smoke_mode():
        print(f"\n{text}\n[smoke mode: {path} left untouched]")
        return path
    RESULTS_DIR.mkdir(exist_ok=True)
    path.write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n[written to {path}]")
    return path


def bench_main(path: str, argv: list[str] | None = None) -> int:
    """Script entry point shared by every ``bench_*.py``.

    Parses ``--smoke``, exports :data:`SMOKE_ENV` *before* pytest
    imports the benchmark module (so :func:`scaled` constants see it),
    and runs the file under pytest.  Smoke runs disable benchmark
    timing — they verify the script still works, not how fast it is.
    """
    import argparse

    import pytest

    parser = argparse.ArgumentParser(
        description="Run this benchmark script standalone."
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny-horizon smoke run: exercise the code paths, skip "
        "paper-scale claims, never overwrite results/",
    )
    args = parser.parse_args(argv)
    pytest_args = [str(path), "-q", "-p", "no:cacheprovider"]
    if args.smoke:
        os.environ[SMOKE_ENV] = "1"
        pytest_args.append("--benchmark-disable")
    return pytest.main(pytest_args)


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer.

    These are experiment regenerations (seconds each), not
    microbenchmarks; one round keeps total wall time sane while still
    recording the runtime in the benchmark table.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)
