"""Tables IV–VI: Δ-energy statistics between the three estimators.

Avg / Variance / StdDev / RMSE of |energy difference| across the
Figs. 7–9 threshold sweeps, printed in the paper's three-column layout.
"""

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.experiments import (
    CPUComparisonConfig,
    format_delta_table,
    run_cpu_comparison,
)

CONFIG = CPUComparisonConfig(horizon=scaled(1000.0, 60.0))

PAPER_ROWS = {
    # power_up_delay: (avg sim-markov, avg sim-petri, avg markov-petri)
    0.001: (7.37, 7.37, 0.05),
    0.3: (7.28, 4.99, 2.29),
    10.0: (42.41, 0.12, 42.41),
}


@pytest.mark.benchmark(group="table4-6")
def test_table04_deltas_pud_0_001(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(0.001, CONFIG))
    d = result.delta_energy()
    text = format_delta_table(d, 0.001, "IV")
    text += (
        f"\n(paper: Sim-Markov {PAPER_ROWS[0.001][0]}, "
        f"Sim-Petri {PAPER_ROWS[0.001][1]}, Markov-Petri {PAPER_ROWS[0.001][2]})"
    )
    write_result("table04_deltas_pud_0_001", text)
    # Paper Table IV: the two models nearly coincide with each other.
    paper_claim(d["markov_petri"].avg < d["sim_markov"].avg)
    paper_claim(abs(d["sim_markov"].avg - d["sim_petri"].avg) < 1.0)


@pytest.mark.benchmark(group="table4-6")
def test_table05_deltas_pud_0_3(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(0.3, CONFIG))
    d = result.delta_energy()
    text = format_delta_table(d, 0.3, "V")
    text += (
        f"\n(paper: Sim-Markov {PAPER_ROWS[0.3][0]}, "
        f"Sim-Petri {PAPER_ROWS[0.3][1]}, Markov-Petri {PAPER_ROWS[0.3][2]})"
    )
    write_result("table05_deltas_pud_0_3", text)
    paper_claim(d["sim_petri"].avg < d["sim_markov"].avg)


@pytest.mark.benchmark(group="table4-6")
def test_table06_deltas_pud_10(benchmark):
    result = once(benchmark, lambda: run_cpu_comparison(10.0, CONFIG))
    d = result.delta_energy()
    text = format_delta_table(d, 10.0, "VI")
    text += (
        f"\n(paper: Sim-Markov {PAPER_ROWS[10.0][0]}, "
        f"Sim-Petri {PAPER_ROWS[10.0][1]}, Markov-Petri {PAPER_ROWS[10.0][2]})"
    )
    write_result("table06_deltas_pud_10", text)
    # The catastrophic Markov failure: an order of magnitude worse.
    paper_claim(d["sim_markov"].avg > 10 * d["sim_petri"].avg)


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
