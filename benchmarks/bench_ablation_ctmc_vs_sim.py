"""Ablation A2: exact CTMC solve vs engine simulation.

On an exponential-only approximation of the CPU net (wake-up delay
exponentialised, buffer bounded), the SPN→CTMC pipeline gives the exact
stationary answer.  The simulation engine must converge to it — and the
bench records how much wall time each route costs, reproducing the
paper's closing observation that "one drawback of Petri net models is
the relatively long simulation time" when an analytic route exists.
"""

import time

import pytest

from conftest import once, paper_claim, scaled, write_result
from repro.analysis import spn_to_ctmc
from repro.core import Exponential, PetriNet, simulate, tokens_eq, tokens_gt
from repro.energy import format_table
from repro.markov import CTMC

LAM, MU, NU, SLEEP_RATE = 1.0, 10.0, 4.0, 2.0
BOUND = 30


def build():
    net = PetriNet("exp-cpu")
    net.add_place("P0", initial_tokens=1)
    net.add_place("Buffer")
    net.add_place("Cap", initial_tokens=BOUND)
    net.add_place("Sleep", initial_tokens=1)
    net.add_place("On")
    net.add_transition(
        "arrive", Exponential(LAM), inputs=["P0", "Cap"], outputs=["P0", "Buffer"]
    )
    net.add_transition(
        "wake", Exponential(NU), inputs=["Sleep"], outputs=["On"],
        guard=tokens_gt("Buffer", 0),
    )
    net.add_transition(
        "serve", Exponential(MU), inputs=["On", "Buffer"], outputs=["On", "Cap"]
    )
    net.add_transition(
        "sleep", Exponential(SLEEP_RATE), inputs=["On"], outputs=["Sleep"],
        guard=tokens_eq("Buffer", 0),
    )
    return net


@pytest.mark.benchmark(group="ablation")
def test_ablation_ctmc_vs_simulation(benchmark):
    def run():
        t0 = time.perf_counter()
        ctmc = spn_to_ctmc(build())
        pi = CTMC(ctmc.Q).steady_state()
        exact_on = ctmc.place_marginal(pi, "On")
        exact_q = ctmc.expected_tokens(pi, "Buffer")
        t_exact = time.perf_counter() - t0

        t0 = time.perf_counter()
        sim = simulate(
            build(),
            horizon=scaled(40_000.0, 2_000.0),
            seed=17,
            warmup=scaled(400.0, 50.0),
        )
        t_sim = time.perf_counter() - t0
        return {
            "states": ctmc.n_states,
            "exact_on": exact_on,
            "sim_on": sim.occupancy("On"),
            "exact_q": exact_q,
            "sim_q": sim.mean_tokens("Buffer"),
            "t_exact_s": t_exact,
            "t_sim_s": t_sim,
        }

    r = once(benchmark, run)
    text = format_table(
        ["quantity", "exact CTMC", "simulation"],
        [
            ["P(CPU on)", r["exact_on"], r["sim_on"]],
            ["E[buffer]", r["exact_q"], r["sim_q"]],
            ["wall time (s)", r["t_exact_s"], r["t_sim_s"]],
        ],
        title=(
            f"Ablation A2: exact CTMC ({r['states']} tangible states) "
            "vs engine simulation"
        ),
        precision=5,
    )
    write_result("ablation_ctmc_vs_sim", text)
    paper_claim(r["sim_on"] == pytest.approx(r["exact_on"], abs=0.02))
    paper_claim(r["sim_q"] == pytest.approx(r["exact_q"], rel=0.10))


if __name__ == "__main__":
    from conftest import bench_main

    raise SystemExit(bench_main(__file__))
