#!/usr/bin/env python
"""The Section IV study: DES vs Markov vs Petri net across thresholds.

Sweeps the ``Power_Down_Threshold`` for the three ``Power_Up_Delay``
scenarios of Figs. 4–9 (at a reduced horizon so the script runs in a
few seconds) and prints:

* the state-share table per scenario (Figs. 4–6),
* the energy comparison (Figs. 7–9),
* the Δ-energy statistics (Tables IV–VI),

then states which estimator tracked the ground truth.

Run:  python examples/power_down_threshold_study.py
"""

from repro.energy import format_energy_series, format_state_percentages
from repro.experiments import (
    CPUComparisonConfig,
    format_delta_table,
    run_cpu_comparison,
)

CONFIG = CPUComparisonConfig(
    horizon=500.0,
    thresholds=(0.001, 0.2, 0.4, 0.6, 0.8, 1.0),
    seed=2010,
)

TABLE_NUMBERS = {0.001: "IV", 0.3: "V", 10.0: "VI"}


def study(power_up_delay: float) -> None:
    result = run_cpu_comparison(power_up_delay, CONFIG)

    print(
        format_state_percentages(
            result.thresholds,
            result.fractions["simulation"],
            title=f"\nState shares (ground-truth DES), PUD = {power_up_delay} s",
        )
    )
    print(
        format_energy_series(
            result.thresholds,
            {
                "Simulation": result.energy_j["simulation"],
                "Markov": result.energy_j["markov"],
                "Petri Net": result.energy_j["petri"],
            },
            title=f"\nEnergy over {CONFIG.horizon:.0f} s, PUD = {power_up_delay} s",
        )
    )
    print()
    print(
        format_delta_table(
            result.delta_energy(), power_up_delay, TABLE_NUMBERS[power_up_delay]
        )
    )

    markov_err = result.mean_abs_fraction_error("markov")
    petri_err = result.mean_abs_fraction_error("petri")
    verdict = (
        "Petri net tracks the simulator; the Markov model fails"
        if markov_err > 3 * petri_err
        else "both models track the simulator"
    )
    print(
        f"mean |fraction error|: markov = {markov_err:.4f}, "
        f"petri = {petri_err:.4f}  ->  {verdict}"
    )


if __name__ == "__main__":
    for pud in (0.001, 0.3, 10.0):
        print("\n" + "=" * 72)
        print(f"Power_Up_Delay = {pud} s")
        print("=" * 72)
        study(pud)
