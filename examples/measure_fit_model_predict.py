#!/usr/bin/env python
"""The full modelling workflow: measure → fit → model → predict.

This is how a practitioner would actually use the library on their own
node, mirroring what the paper did manually for the IMote2:

1. **Measure** — collect event inter-arrival gaps and per-stage
   durations from the deployed node (here: synthesised from a hidden
   ground truth, standing in for field data).
2. **Fit** — turn each trace into a firing distribution with
   :func:`repro.markov.fit_best` (MLE/AIC model selection).
3. **Model** — assemble a Fig. 10-style cycle net from the fitted
   distributions.
4. **Predict** — simulate to a requested precision
   (:func:`repro.core.simulate_to_precision`) and convert stage
   probabilities into energy, then check the prediction against the
   hidden ground truth.

Run:  python examples/measure_fit_model_predict.py
"""

import numpy as np

from repro.core import PetriNet, simulate_to_precision
from repro.energy import imote2_power_table
from repro.markov import fit_best

RNG = np.random.default_rng(42)

# ----------------------------------------------------------------------
# 1. "Measure": field traces from the hidden ground truth.
#    waits are exponential-ish (mean 2.5 s), computation is
#    low-variance (Erlang-like around 0.8 s), radio stages are
#    effectively constant.
# ----------------------------------------------------------------------
TRACES = {
    "wait": RNG.exponential(2.5, 400),
    "receive": np.full(400, 0.006) * RNG.normal(1.0, 0.0005, 400),
    "compute": RNG.gamma(25, 0.8 / 25, 400),
    "transmit": np.full(400, 0.005) * RNG.normal(1.0, 0.0005, 400),
}

GROUND_TRUTH_MEANS = {
    "wait": 2.5,
    "receive": 0.006,
    "compute": 0.8,
    "transmit": 0.005,
}


def main() -> None:
    # ------------------------------------------------------------------
    # 2. Fit a distribution per stage.
    # ------------------------------------------------------------------
    fitted = {}
    print("fitted stage distributions:")
    for stage, trace in TRACES.items():
        dist = fit_best(trace)
        fitted[stage] = dist
        print(
            f"  {stage:9s} -> {dist!r:40s} "
            f"mean {dist.mean():.4f} (truth {GROUND_TRUTH_MEANS[stage]:.4f})"
        )

    # ------------------------------------------------------------------
    # 3. Assemble the node cycle from the fitted distributions.
    # ------------------------------------------------------------------
    net = PetriNet("fitted-node")
    for place in ("Wait", "Receiving", "Computation", "Transmitting"):
        net.add_place(place, initial_tokens=1 if place == "Wait" else 0)
    net.add_transition("event", fitted["wait"], inputs=["Wait"], outputs=["Receiving"])
    net.add_transition("rx", fitted["receive"], inputs=["Receiving"], outputs=["Computation"])
    net.add_transition("work", fitted["compute"], inputs=["Computation"], outputs=["Transmitting"])
    net.add_transition("tx", fitted["transmit"], inputs=["Transmitting"], outputs=["Wait"])

    # ------------------------------------------------------------------
    # 4. Simulate to 2% precision on the computation share and predict
    #    energy with the measured Table VII powers.
    # ------------------------------------------------------------------
    precision = simulate_to_precision(
        net,
        signal=lambda v: float(v.count("Computation")),
        rel_half_width=0.02,
        initial_horizon=2_000.0,
        max_horizon=128_000.0,
        seed=7,
    )
    print(
        f"\nsimulated to precision: horizon {precision.horizon:.0f} s in "
        f"{precision.attempts} attempt(s); computation share = "
        f"{precision.estimate:.4f} ± {precision.interval.half_width:.4f}"
    )

    stats = precision.result.stats
    probs = {
        "wait": stats.occupancy("Wait"),
        "receiving": stats.occupancy("Receiving"),
        "computation": stats.occupancy("Computation"),
        "transmitting": stats.occupancy("Transmitting"),
    }
    table = imote2_power_table()
    predicted_mw = table.mean_power_mw(probs)

    cycle = sum(GROUND_TRUTH_MEANS.values())
    truth_probs = {
        "wait": GROUND_TRUTH_MEANS["wait"] / cycle,
        "receiving": GROUND_TRUTH_MEANS["receive"] / cycle,
        "computation": GROUND_TRUTH_MEANS["compute"] / cycle,
        "transmitting": GROUND_TRUTH_MEANS["transmit"] / cycle,
    }
    truth_mw = table.mean_power_mw(truth_probs)

    print(f"predicted mean power: {predicted_mw:.4f} mW")
    print(f"ground-truth power:   {truth_mw:.4f} mW")
    err = abs(predicted_mw - truth_mw) / truth_mw * 100
    print(f"prediction error:     {err:.2f}%  (paper's Table X gap: 2.95%)")


if __name__ == "__main__":
    main()
