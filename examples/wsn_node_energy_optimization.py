#!/usr/bin/env python
"""The Section VII question: what Power_Down_Threshold minimises energy?

Runs the full Figs. 12/13 node model (CPU + radio + DVS) over a
threshold grid for both workload generators, prints the component
breakdown (the Figs. 14/15 stacked series) and answers the paper's
headline question with the measured optimum and savings.

Run:  python examples/wsn_node_energy_optimization.py
"""

from repro.energy import format_breakdown_sweep
from repro.experiments import (
    NodeSweepConfig,
    format_optimum_summary,
    run_node_energy_sweep,
)
from repro.models import NodeParameters

# A condensed grid around the interesting region (the full 23-point
# paper grid lives in benchmarks/bench_fig14_closed_sweep.py).
GRID = (1e-9, 1e-6, 0.0017, 0.00178, 0.005, 0.01, 0.1, 1.0, 10.0)
HORIZON = 300.0  # seconds (the benchmarks use the paper's 900 s)


def optimise(workload: str) -> None:
    sweep = run_node_energy_sweep(
        NodeSweepConfig(
            workload=workload,
            horizon=HORIZON,
            thresholds=GRID,
            seed=7,
        )
    )
    print(
        format_breakdown_sweep(
            sweep.thresholds,
            sweep.breakdowns,
            title=f"\n{workload} workload, {HORIZON:.0f} s at 1 event/s",
        )
    )
    t_opt, e_opt = sweep.optimum()
    print(
        format_optimum_summary(
            workload,
            t_opt,
            e_opt,
            sweep.savings_vs_immediate(),
            sweep.savings_vs_never(),
        )
    )
    radio_phase = NodeParameters().radio_phase_duration()
    print(
        f"(radio phase = {radio_phase:.5f} s; the optimum threshold sits "
        "just above it so the CPU stays awake across one event's radio "
        "bursts but sleeps between events)"
    )


if __name__ == "__main__":
    for workload in ("closed", "open"):
        print("\n" + "=" * 72)
        print(f"{workload.upper()} WORKLOAD GENERATOR")
        print("=" * 72)
        optimise(workload)
