#!/usr/bin/env python
"""Network-level energy optimisation: the energy-hole problem.

Composes the paper's node model into a 5-node chain relaying events to
a sink.  The node next to the sink relays everyone's traffic (5× the
event rate of the far node), so it drains first — the classic WSN
energy hole.  The example then asks the paper's Section VII question
at the network level: which ``Power_Down_Threshold`` maximises the
*network* lifetime (time to first node death)?

The final section scales the question up: a 100-node grid simulated
through the sharded runtime (``shards=8`` worker-group tasks), which
is bit-identical to the serial path — sharding is an execution knob,
not a modelling one.

Run:  python examples/network_lifetime.py
"""

from repro.energy import IMOTE2_3xAAA, format_table
from repro.models import (
    GridTopology,
    LineTopology,
    NodeParameters,
    SensorNetworkModel,
)

HORIZON = 200.0
BASE_RATE = 0.5  # events/s sensed by each node


def main() -> None:
    network = SensorNetworkModel(
        LineTopology(5),
        NodeParameters(power_down_threshold=0.01),
        IMOTE2_3xAAA,
    )

    # --- one run: the workload gradient and the hotspot -----------------
    result = network.simulate(horizon=HORIZON, seed=1, base_rate=BASE_RATE)
    print(
        format_table(
            ["node", "events/s", "mean power (mW)", "lifetime (days)"],
            [
                [n.node_id, n.event_rate, n.mean_power_mw, n.lifetime_days]
                for n in result.nodes
            ],
            title=f"{result.topology}; PDT = {result.power_down_threshold:g} s",
        )
    )
    print(
        f"hotspot: node {result.hotspot.node_id} "
        f"(dies after {result.network_lifetime_days:.1f} days; "
        f"lifetime imbalance {result.lifetime_imbalance():.2f}x)\n"
    )

    # --- threshold sweep on the network metric --------------------------
    thresholds = (1e-9, 0.00178, 0.01, 0.1, 1.0, 100.0)
    sweeps = network.sweep_thresholds(
        thresholds, horizon=HORIZON, seed=1, base_rate=BASE_RATE
    )
    rows = [
        [r.power_down_threshold, r.total_energy_j, r.network_lifetime_days]
        for r in sweeps
    ]
    print(
        format_table(
            ["PDT (s)", "network energy (J)", "network lifetime (days)"],
            rows,
            title="Power_Down_Threshold vs network lifetime (first node death)",
        )
    )
    best = max(sweeps, key=lambda r: r.network_lifetime_days)
    print(
        f"\nbest threshold for the network: {best.power_down_threshold:g} s "
        f"-> {best.network_lifetime_days:.2f} days. Everything past the "
        "radio-phase crossover (0.00177 s) sits in a flat basin because the "
        "hotspot node's higher event rate leaves it few long idle gaps; "
        "immediate power-down remains clearly worst, as in Fig. 14."
    )

    # --- hundreds of nodes: the sharded path -----------------------------
    grid_net = SensorNetworkModel(
        GridTopology(10, 10),
        NodeParameters(power_down_threshold=0.01),
        IMOTE2_3xAAA,
    )
    grid = grid_net.simulate(
        horizon=40.0, seed=1, base_rate=0.004, shards=8
    )
    print(
        f"\n{grid.topology}, simulated as 8 shards: "
        f"hotspot node {grid.hotspot.node_id} "
        f"(relays {grid.hotspot.event_rate:g} events/s vs "
        f"{grid.nodes[-1].event_rate:g} at the far corner), "
        f"network lifetime {grid.network_lifetime_days:.1f} days, "
        f"imbalance {grid.lifetime_imbalance():.1f}x"
    )


if __name__ == "__main__":
    main()
