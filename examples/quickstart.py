#!/usr/bin/env python
"""Quickstart: build, analyse and simulate a stochastic Petri net.

Reproduces the paper's introductory example (Fig. 1) and then the full
Fig. 3 CPU model in a few lines each, showing the three things the
library does: structural analysis, stochastic simulation, and energy
accounting.

Run:  python examples/quickstart.py
"""

from repro.analysis import boundedness, p_invariants
from repro.core import Deterministic, Exponential, PetriNet, simulate
from repro.energy import cpu_power_table
from repro.models import CPUPetriModel


def fig1_example() -> None:
    """The paper's Fig. 1: two places, one transition."""
    print("=== Fig. 1: a minimal Petri net ===")
    net = PetriNet("fig1")
    net.add_place("P0", initial_tokens=1)
    net.add_place("P1")
    net.add_transition("T0", Deterministic(1.0), inputs=["P0"], outputs=["P1"])
    print(net.describe())

    result = simulate(net, horizon=10.0)
    print(f"after 10 s: marking = {result.final_marking_counts}")
    print(f"P0 was marked {100 * result.occupancy('P0'):.0f}% of the time\n")


def mm1_queue() -> None:
    """An M/M/1 queue: the engine must reproduce textbook answers."""
    print("=== M/M/1 queue (rho = 0.5) ===")
    net = PetriNet("mm1")
    net.add_place("source", initial_tokens=1)
    net.add_place("queue")
    net.add_transition(
        "arrive", Exponential(1.0), inputs=["source"], outputs=["source", "queue"]
    )
    net.add_transition("serve", Exponential(2.0), inputs=["queue"])
    result = simulate(net, horizon=20_000.0, seed=7, warmup=500.0)
    print(f"mean jobs in system: {result.mean_tokens('queue'):.3f} (theory: 1.000)")
    print(f"utilisation:         {result.occupancy('queue'):.3f} (theory: 0.500)\n")


def cpu_model() -> None:
    """The Fig. 3 CPU model with Table III powers."""
    print("=== Fig. 3 CPU model ===")
    model = CPUPetriModel(
        arrival_rate=1.0,        # 1 job/s  (Table II)
        service_rate=10.0,       # mean service 0.1 s
        power_down_threshold=0.1,
        power_up_delay=0.3,
    )
    net = model.build()

    # Structural analysis: the CPU state token is conserved and the
    # state subnet is safe.
    invariants = p_invariants(net)
    print(f"P-invariants: {[str(i) for i in invariants]}")

    result = model.simulate(horizon=5000.0, seed=42, warmup=100.0)
    print("state-time fractions:")
    for state, frac in sorted(result.fractions.items()):
        print(f"  {state:8s} {100 * frac:6.2f}%")

    table = cpu_power_table()
    energy = table.energy_from_probabilities_j(result.fractions, 1000.0)
    print(f"energy over 1000 s at Table III powers: {energy:.2f} J")
    print(f"CPU wake-ups: {result.wakeups}\n")


if __name__ == "__main__":
    fig1_example()
    mm1_queue()
    cpu_model()
