#!/usr/bin/env python
"""Parallel sweeps and replications with ``repro.runtime.map_sweep``.

Three escalating uses of the runtime:

1. a plain grid sweep fanned out over a process pool (``workers=4``),
2. the same sweep with 8 replications per point, so every grid point
   reports a mean ± 95 % t-interval instead of a point estimate,
3. the high-level driver equivalent — ``run_node_energy_sweep`` with
   ``workers``/``replications`` — which is what the CLI's
   ``repro node-sweep --workers 4 --replications 8`` calls.

Results are a pure function of the seed: re-running with any worker
count reproduces the identical numbers (the seed plan is spawned from
the root seed before any work is distributed).

Run:  PYTHONPATH=src python examples/parallel_sweep.py
"""

from repro.experiments import NodeSweepConfig, run_node_energy_sweep
from repro.models.wsn_node import NodeParameters, WSNNodeModel
from repro.runtime import map_sweep

GRID = (1e-9, 0.0017, 0.00178, 0.01, 0.1, 1.0)
HORIZON_S = 30.0


def node_energy(threshold: float, seed: int) -> float:
    """Total closed-model node energy at one threshold (picklable)."""
    params = NodeParameters(power_down_threshold=threshold)
    return WSNNodeModel(params, "closed").simulate(HORIZON_S, seed=seed).total_energy_j


def main() -> None:
    print(f"== 1. grid sweep over {len(GRID)} points, workers=4 ==")
    for point in map_sweep(node_energy, GRID, seed=2010, workers=4):
        print(f"  PDT {point.threshold:<10g} {point.value:8.3f} J")

    print("\n== 2. same grid, 8 replications per point ==")
    for point in map_sweep(
        node_energy, GRID, seed=2010, workers=4, replications=8
    ):
        ci = point.value.interval()
        print(
            f"  PDT {point.threshold:<10g} {ci.mean:8.3f} J "
            f"± {ci.half_width:.3f} (95% t, n={ci.batches})"
        )

    print("\n== 3. the Fig. 14 driver with the same knobs ==")
    sweep = run_node_energy_sweep(
        NodeSweepConfig(horizon=HORIZON_S, thresholds=GRID),
        workers=4,
        replications=8,
    )
    t_opt, e_opt = sweep.optimum()
    print(f"  optimum threshold {t_opt:g} s at {e_opt:.3f} J (mean of 8 reps)")
    for threshold, ci in zip(sweep.thresholds, sweep.energy_ci()):
        print(f"  PDT {threshold:<10g} {ci.mean:8.3f} J ± {ci.half_width:.3f}")


if __name__ == "__main__":
    main()
