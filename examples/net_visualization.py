#!/usr/bin/env python
"""Export the paper's nets for inspection and rendering.

Writes each of the paper's four models as Graphviz DOT (render with
``dot -Tpdf``) and JSON (diffable structural description), plus a
structural-analysis summary per net — the library's replacement for
TimeNET's GUI.

Run:  python examples/net_visualization.py
Output lands in ./net_exports/
"""

import pathlib

from repro.analysis import boundedness, liveness_summary, p_invariants
from repro.core import UnboundedNetError, net_to_dot, net_to_json
from repro.models import (
    NodeParameters,
    SimpleNodeModel,
    build_cpu_petri_net,
    build_wsn_node_net,
)
from repro.models.workload import ClosedWorkload, OpenWorkload

OUT = pathlib.Path("net_exports")


def export(name: str, net) -> None:
    OUT.mkdir(exist_ok=True)
    (OUT / f"{name}.dot").write_text(net_to_dot(net), encoding="utf-8")
    (OUT / f"{name}.json").write_text(net_to_json(net), encoding="utf-8")

    print(f"=== {name} ===")
    print(f"  places: {len(net.places)}, transitions: {len(net.transitions)}")
    invariants = p_invariants(net)
    for inv in invariants:
        print(f"  {inv}")
    try:
        b = boundedness(net, max_states=20_000)
        live = liveness_summary(net, max_states=20_000, rg=None)
        print(f"  {b}")
        dead = sorted(live.dead)
        print(f"  deadlock-free: {live.deadlock_free}; dead transitions: {dead or 'none'}")
    except UnboundedNetError:
        print("  (unbounded marking space: open workload queues events; "
              "skipped exhaustive analysis)")
    print(f"  wrote {OUT}/{name}.dot and .json\n")


def main() -> None:
    export("fig03_cpu", build_cpu_petri_net(1.0, 10.0, 0.1, 0.3))
    export("fig10_simple_node", SimpleNodeModel().build())
    export(
        "fig12_closed_node",
        build_wsn_node_net(NodeParameters(power_down_threshold=0.01), ClosedWorkload(1.0)),
    )
    export(
        "fig13_open_node",
        build_wsn_node_net(NodeParameters(power_down_threshold=0.01), OpenWorkload(1.0)),
    )
    print("Render any of these with: dot -Tpdf net_exports/<name>.dot -o <name>.pdf")


if __name__ == "__main__":
    main()
