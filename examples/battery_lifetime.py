#!/usr/bin/env python
"""From energy model to deployment lifetime.

The paper's opening motivation is battery lifetime ("minimize
maintenance and replacement costs").  This example closes that loop:
it runs the Fig. 12 node model across thresholds and converts each
energy figure into days of operation on the IMote2's 3×AAA supply,
with and without the Peukert high-draw correction.

Run:  python examples/battery_lifetime.py
"""

from repro.energy import (
    IMOTE2_3xAAA,
    NodeLifetimeEstimator,
    PeukertBattery,
    format_table,
)
from repro.experiments import NodeSweepConfig, run_node_energy_sweep

GRID = (1e-9, 0.00178, 0.01, 0.1, 1.0, 100.0)
HORIZON = 300.0


def main() -> None:
    sweep = run_node_energy_sweep(
        NodeSweepConfig(workload="closed", horizon=HORIZON, thresholds=GRID, seed=9)
    )

    linear = NodeLifetimeEstimator(IMOTE2_3xAAA)
    peukert = NodeLifetimeEstimator(
        PeukertBattery(
            capacity_mah=1000.0, voltage_v=4.5, peukert_exponent=1.15
        )
    )

    rows = []
    for threshold, energy in zip(sweep.thresholds, sweep.total_energy_j):
        mean_power_mw = energy / HORIZON * 1000.0
        rows.append(
            [
                threshold,
                mean_power_mw,
                linear.lifetime_days(mean_power_mw),
                peukert.lifetime_days(mean_power_mw),
            ]
        )

    print(
        format_table(
            [
                "PDT (s)",
                "mean power (mW)",
                "lifetime days (linear)",
                "lifetime days (Peukert)",
            ],
            rows,
            title="Node lifetime on 3xAAA (1000 mAh @ 4.5 V) vs "
            "Power_Down_Threshold (closed model, 1 event/s)",
        )
    )

    t_opt, _ = sweep.optimum()
    best = max(rows, key=lambda r: r[2])
    worst = min(rows, key=lambda r: r[2])
    print(
        f"\nThe optimum threshold ({t_opt:g} s) buys "
        f"{best[2] / worst[2]:.2f}x the deployment lifetime of the worst "
        "setting — the maintenance-cost translation of Fig. 14."
    )


if __name__ == "__main__":
    main()
