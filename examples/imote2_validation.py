#!/usr/bin/env python
"""The Section V validation: model prediction vs "measured" IMote2 energy.

Replays the paper's protocol end to end:

1. characterise the node — we take Table VII's measured state powers
   as given (they are printed in the paper);
2. "measure" a run — the IMote2 hardware simulator triggers 100 random
   events and integrates power, including the small unmodeled overhead
   a real node draws;
3. predict with the model — the Fig. 10 Petri net is simulated to
   steady state and Eq. (8) turns stage probabilities into mean power;
4. compare — the paper reports a 2.95 % difference.

Run:  python examples/imote2_validation.py
"""

from repro.experiments import (
    ValidationConfig,
    format_steady_state_table,
    format_validation_table,
    run_simple_node_validation,
)

PAPER_TABLE_IX = {
    "Wait": 59.8,
    "Temp_Place": 19.7,
    "Receiving": 0.098,
    "Computation": 20.2,
    "Transmitting": 0.117,  # delay-consistent value; the printed 19.7 is a typo
}


def main() -> None:
    result = run_simple_node_validation(
        ValidationConfig(n_events=100, petri_horizon=10_000.0, seed=2010)
    )

    print(
        format_steady_state_table(
            result.petri.stage_probabilities, paper_values=PAPER_TABLE_IX
        )
    )
    print()
    print(format_validation_table(result.table_rows()))
    print()
    print(
        f"Petri-net prediction differs from the measured energy by "
        f"{result.percent_difference:.2f}% (paper: 2.95%)."
    )
    print(
        "The gap is the node's unmodeled baseline draw (OS ticks, "
        "regulator loss) that the four-stage power model cannot see."
    )


if __name__ == "__main__":
    main()
