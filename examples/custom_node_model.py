#!/usr/bin/env python
"""Building a custom sensor-node model with the library's primitives.

The paper argues Petri nets win on *flexibility*: "Any other scenario
can just as easily be simulated by slight modifications to the Petri
net."  This example demonstrates exactly that by modelling a scenario
the paper does not evaluate — a node with

* a trace-driven workload (replaying measured event gaps),
* a duty-cycled radio that wakes on a periodic schedule instead of
  per event (a schedule-driven node in the sense of Jung et al.),
* an extra DVS class for a rare expensive task, dispatched by token
  colour.

It then compares the energy of schedule-driven vs trigger-driven
operation — the question Jung et al. posed with Markov models and the
paper revisits with Petri nets.

Run:  python examples/custom_node_model.py
"""

import numpy as np

from repro.core import (
    Deterministic,
    Exponential,
    PetriNet,
    Simulation,
    color_eq,
    tokens_eq,
    tokens_gt,
)
from repro.energy import (
    EnergyAccount,
    cpu_power_table,
    format_table,
    radio_power_table,
)
from repro.models import TraceWorkload


def build_trigger_driven(trace: list[float]) -> PetriNet:
    """Radio wakes whenever an event arrives (the paper's style)."""
    net = PetriNet("trigger-driven")
    net.add_place("Events")
    net.add_place("Radio_Sleep", initial_tokens=1)
    net.add_place("Radio_On")
    net.add_place("Pending")
    TraceWorkload(trace).attach(net, "Events")
    # Wake per event, serve it (5 ms), sleep when drained.
    net.add_transition(
        "wake", Deterministic(0.000194),
        inputs=["Radio_Sleep"], outputs=["Radio_On"],
        guard=tokens_gt("Events", 0),
    )
    net.add_transition(
        "serve", Deterministic(0.005),
        inputs=["Radio_On", "Events"], outputs=["Radio_On", "Pending"],
    )
    net.add_transition(
        "sleep", Deterministic(0.001),
        inputs=["Radio_On"], outputs=["Radio_Sleep"],
        guard=tokens_eq("Events", 0),
    )
    net.add_transition("drain", inputs=["Pending"], priority=2)
    return net


def build_schedule_driven(trace: list[float], period: float) -> PetriNet:
    """Radio wakes every ``period`` seconds and drains queued events."""
    net = PetriNet("schedule-driven")
    net.add_place("Events")
    net.add_place("Radio_Sleep", initial_tokens=1)
    net.add_place("Radio_On")
    net.add_place("Pending")
    TraceWorkload(trace).attach(net, "Events")
    net.add_transition(
        "scheduled_wake", Deterministic(period),
        inputs=["Radio_Sleep"], outputs=["Radio_On"],
    )
    net.add_transition(
        "serve", Deterministic(0.005),
        inputs=["Radio_On", "Events"], outputs=["Radio_On", "Pending"],
    )
    net.add_transition(
        "sleep", Deterministic(0.001),
        inputs=["Radio_On"], outputs=["Radio_Sleep"],
        guard=tokens_eq("Events", 0),
    )
    net.add_transition("drain", inputs=["Pending"], priority=2)
    return net


def radio_energy(net: PetriNet, horizon: float, seed: int) -> tuple[float, float]:
    """(energy J, mean latency proxy = mean queued events)."""
    sim = Simulation(net, seed=seed, warmup=5.0)
    result = sim.run(horizon)
    table = radio_power_table()
    account = EnergyAccount(table)
    duration = result.end_time - 5.0
    account.credit("standby", result.occupancy("Radio_Sleep") * duration)
    account.credit("active", result.occupancy("Radio_On") * duration)
    return account.energy_j(), result.mean_tokens("Events")


def main() -> None:
    rng = np.random.default_rng(5)
    # A bursty measured-looking trace: exponential gaps with occasional
    # long quiet periods.
    trace = [
        float(g)
        for g in np.where(
            rng.random(200) < 0.1,
            rng.exponential(20.0, 200),
            rng.exponential(1.0, 200),
        )
    ]
    horizon = 600.0

    rows = []
    e_trig, lat_trig = radio_energy(build_trigger_driven(trace), horizon, seed=3)
    rows.append(["trigger-driven", e_trig, lat_trig])
    for period in (0.5, 2.0, 10.0):
        e, lat = radio_energy(build_schedule_driven(trace, period), horizon, seed=3)
        rows.append([f"schedule-driven ({period:g}s)", e, lat])

    print(
        format_table(
            ["mode", "radio energy (J)", "mean queued events"],
            rows,
            title=f"Trigger- vs schedule-driven radio over {horizon:.0f} s "
            "(trace-driven workload)",
            precision=4,
        )
    )
    print(
        "\nLonger wake periods save radio energy but let events queue — "
        "the latency/energy trade Jung et al. studied, rebuilt here in "
        "~40 lines of Petri net."
    )


if __name__ == "__main__":
    main()
