"""``repro.runtime`` — the parallel replication/sweep execution runtime.

The paper's headline artifacts (Figs. 4–9 threshold sweeps, the
23-point Figs. 14/15 grids, the Section V validation) are
embarrassingly parallel: every grid point and every replication is an
independent simulation.  This package turns that structure into wall
time:

* :class:`ParallelExecutor` — chunked, ordered map with a serial
  ``workers=1`` fallback that is bit-identical to the old in-process
  loops, delegating placement to a pluggable execution
  :class:`Backend`;
* :mod:`repro.runtime.backend` — the backend seam:
  :class:`SerialBackend` (in-process reference),
  :class:`ProcessPoolBackend` (local cores, the historical default for
  ``workers > 1``) and :func:`make_backend` for CLI-style selection;
* :mod:`repro.runtime.remote` — multi-host execution:
  ``SocketBackend`` dispatches task chunks to remote
  ``repro.cli worker --serve PORT`` processes over a length-prefixed
  TCP pickle protocol, load-balancing across hosts and re-queuing the
  chunks of dropped workers;
* :mod:`repro.runtime.seeding` — spawn-safe, collision-free seed plans
  via :meth:`numpy.random.SeedSequence.spawn`;
* :func:`map_sweep` — the public grid × replications API, returning
  :class:`~repro.experiments.sweep.SweepPoint` rows whose values carry
  across-replication confidence intervals when ``replications > 1``;
* :mod:`repro.runtime.adaptive` — sequential replication control:
  :func:`run_adaptive_rounds` evaluates every open point in rounds and
  stops each one independently once its interval's relative half-width
  crosses an :class:`AdaptiveSettings` target, consuming a prefix of
  the fixed-count seed plan so converged runs stay bit-reproducible
  (``map_sweep(..., ci_target=...)`` is the sweep-level entry point);
* :mod:`repro.runtime.sharding` — coarse-grained worker groups for
  hundreds-of-item task sets: :func:`partition_indices` plans
  contiguous or round-robin :class:`ShardPlan` partitions,
  :func:`map_shards` / :func:`run_sharded` run one executor task per
  shard, and :func:`shard_node_seeds` keys seeds by global item index
  so no shard count or strategy can change the numbers;
* :mod:`repro.runtime.store` — content-addressed result memoization:
  :class:`ResultStore` keeps per-replication results on disk under a
  canonical SHA-256 :func:`task_key` of the task spec (parameters,
  seed entry, horizon — never execution knobs), written atomically and
  checksummed on read, so re-runs, figure regeneration and adaptive
  top-ups recompute only what the cache has never seen.
  :func:`cached_map` / :func:`cached_ensemble_map` are the
  store-through-executor primitives the sweep/adaptive/shard layers
  build on;
* :mod:`repro.runtime.config` — the declarative seam over all of the
  above: :class:`ExecutionConfig` bundles workers / backend spec /
  engine / store dir / seed mode / shards / adaptive settings into one
  frozen, serialisable value whose :meth:`~ExecutionConfig.resolve`
  builds the live backend/store, and every driver accepts it as
  ``exec_cfg=`` (the loose keyword bundle remains as a deprecation
  shim through :func:`resolve_execution`).

Every experiment driver (``repro.experiments.figures``,
``node_energy``, ``sensitivity``, ``validation``) and the network
lifetime model accept ``workers=`` (and where meaningful
``replications=``) and route their grids through this runtime; the CLI
exposes the same knobs as ``--workers`` / ``--replications``.
"""

from .adaptive import AdaptivePointRun, AdaptiveSettings, run_adaptive_rounds
from .config import (
    ENGINE_NAMES,
    ExecutionConfig,
    ResolvedExecution,
    resolve_execution,
)
from .backend import (
    BACKEND_NAMES,
    Backend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from .executor import ParallelExecutor, TaskError
from .seeding import (
    replication_seeds,
    sequence_to_seed,
    spawn_seeds,
    spawn_sequences,
    substream_seed,
    substream_sequence,
)
from .sharding import (
    SHARD_STRATEGIES,
    Shard,
    ShardPlan,
    map_shards,
    partition_indices,
    run_sharded,
    shard_node_seeds,
)
from .store import (
    ResultStore,
    StoreStats,
    StoreWarning,
    cached_ensemble_map,
    cached_map,
    canonical_json,
    canonicalize,
    request_key,
    task_key,
)
from .sweep import ReplicatedValue, map_sweep

__all__ = [
    "ExecutionConfig",
    "ResolvedExecution",
    "resolve_execution",
    "ENGINE_NAMES",
    "ParallelExecutor",
    "TaskError",
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "make_backend",
    "map_sweep",
    "ReplicatedValue",
    "AdaptiveSettings",
    "AdaptivePointRun",
    "run_adaptive_rounds",
    "replication_seeds",
    "sequence_to_seed",
    "spawn_seeds",
    "spawn_sequences",
    "substream_seed",
    "substream_sequence",
    "Shard",
    "ShardPlan",
    "SHARD_STRATEGIES",
    "partition_indices",
    "shard_node_seeds",
    "map_shards",
    "run_sharded",
    "ResultStore",
    "StoreStats",
    "StoreWarning",
    "task_key",
    "request_key",
    "canonicalize",
    "canonical_json",
    "cached_map",
    "cached_ensemble_map",
]
