"""Shard a large task set across coarse-grained worker-group tasks.

The :class:`~repro.runtime.ParallelExecutor` fans out *per-item* tasks;
for hundreds-of-node network scenarios that is the wrong granularity —
per-node IPC dominates and result gathering scales with node count.
This module adds the coarse level: partition the item set into
**shards**, run each shard as one executor task (its items evaluated
serially inside the worker), and scatter the per-shard result lists
back into global item order.

Design contract (mirrors the executor's "chunking never affects
results"):

* **Plans are pure data.**  :func:`partition_indices` computes a
  :class:`ShardPlan` — disjoint, non-empty index groups covering
  ``range(n_items)`` — before any work is distributed.
* **Sharding never affects results.**  Seeds are keyed by *global item
  index* (:func:`shard_node_seeds`), not by shard, so every shard
  count and every strategy evaluates item ``i`` with the same seed:
  ``shards=1`` and ``shards=8`` are bit-identical.
* **Collision-free per-shard seed streams.**  In ``"spawn"`` mode the
  per-item seeds are :meth:`numpy.random.SeedSequence.spawn` children
  of the root seed, grouped per shard — distinct children across all
  shards, with the spawn-tree independence guarantee.  The default
  ``"legacy"`` mode keeps the network model's historical ``seed + i``
  scheme (distinct within a run) so existing results stay bit-identical.

Example
-------
>>> from repro.runtime.sharding import partition_indices, run_sharded
>>> plan = partition_indices(5, shards=2, strategy="round-robin")
>>> [s.node_indices for s in plan.shards]
[(0, 2, 4), (1, 3)]
>>> def square(x):
...     return x * x
>>> run_sharded(square, [1, 2, 3, 4, 5], plan)
[1, 4, 9, 16, 25]
"""

from __future__ import annotations

import traceback
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

from .executor import ParallelExecutor, TaskError
from .seeding import spawn_seeds
from .store import ResultStore, task_key

__all__ = [
    "Shard",
    "ShardPlan",
    "SHARD_STRATEGIES",
    "partition_indices",
    "shard_node_seeds",
    "map_shards",
    "run_sharded",
]

T = TypeVar("T")
R = TypeVar("R")

#: Supported partition strategies.
SHARD_STRATEGIES = ("contiguous", "round-robin")

#: Supported per-item seed derivation modes.
SEED_MODES = ("legacy", "spawn")


@dataclass(frozen=True)
class Shard:
    """One worker-group's slice of the item set."""

    shard_id: int
    node_indices: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.node_indices)


@dataclass(frozen=True)
class ShardPlan:
    """A complete partition of ``range(n_items)`` into shards.

    Invariants (established by :func:`partition_indices`, relied on by
    :func:`map_shards`): shards are non-empty, pairwise disjoint, and
    their union is exactly ``range(n_items)``.
    """

    n_items: int
    strategy: str
    shards: tuple[Shard, ...]

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    def global_order(self, per_shard: Sequence[Sequence[R]]) -> list[R]:
        """Scatter per-shard result lists back into global item order."""
        if len(per_shard) != self.n_shards:
            raise ValueError(
                f"expected {self.n_shards} shard result lists, "
                f"got {len(per_shard)}"
            )
        out: list[Any] = [None] * self.n_items
        for shard, results in zip(self.shards, per_shard):
            if len(results) != len(shard):
                raise ValueError(
                    f"shard {shard.shard_id} returned {len(results)} "
                    f"results for {len(shard)} items"
                )
            for index, result in zip(shard.node_indices, results):
                out[index] = result
        return out


def partition_indices(
    n_items: int, shards: int, strategy: str = "contiguous"
) -> ShardPlan:
    """Partition ``range(n_items)`` into at most ``shards`` groups.

    ``shards`` is clamped to ``n_items`` so every shard is non-empty
    (asking for 8 shards of a 5-node topology gives 5 singletons).

    Strategies
    ----------
    ``"contiguous"``
        Balanced blocks of consecutive indices; the first
        ``n_items % shards`` shards take one extra item.  Best when
        neighbouring items have similar cost (e.g. a line topology's
        rate gradient stays grouped).
    ``"round-robin"``
        Shard ``j`` takes indices ``j, j+shards, j+2*shards, ...``.
        Best when cost decreases (or varies) along the index order —
        the expensive low-index items spread across all shards.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if strategy not in SHARD_STRATEGIES:
        raise ValueError(
            f"strategy must be one of {SHARD_STRATEGIES}, got {strategy!r}"
        )
    n_shards = min(shards, n_items)
    groups: list[list[int]]
    if strategy == "round-robin":
        groups = [list(range(j, n_items, n_shards)) for j in range(n_shards)]
    else:
        base, extra = divmod(n_items, n_shards)
        groups = []
        start = 0
        for j in range(n_shards):
            size = base + (1 if j < extra else 0)
            groups.append(list(range(start, start + size)))
            start += size
    return ShardPlan(
        n_items=n_items,
        strategy=strategy,
        shards=tuple(
            Shard(shard_id=j, node_indices=tuple(g))
            for j, g in enumerate(groups)
        ),
    )


def shard_node_seeds(
    seed: int | None, n_items: int, mode: str = "legacy"
) -> list[int]:
    """Per-item seeds keyed by *global* item index.

    Because the seed of item ``i`` depends only on ``(seed, i)``, any
    shard count and any strategy hands every item the same seed —
    sharding can never change the numbers.

    Modes
    -----
    ``"legacy"``
        ``seed + i`` — the network model's historical scheme, distinct
        within a run, kept so ``shards=1`` stays bit-identical to the
        pre-sharding serial path.  Requires an integer ``seed``.
    ``"spawn"``
        :meth:`numpy.random.SeedSequence.spawn` children of ``seed``,
        flattened to 128-bit integers — collision-free across shards
        *and* across different root seeds (two ``"legacy"`` runs with
        roots 0 and 50 share seeds 50..n-1; two ``"spawn"`` runs never
        overlap).  Accepts ``seed=None`` for fresh OS entropy.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if mode not in SEED_MODES:
        raise ValueError(f"mode must be one of {SEED_MODES}, got {mode!r}")
    if mode == "spawn":
        return spawn_seeds(seed, n_items)
    if seed is None:
        raise ValueError("legacy seed mode requires an integer seed")
    return [seed + i for i in range(n_items)]


def _run_shard(
    task: tuple[Callable[[Any], Any], tuple[int, ...], list[Any]],
) -> list[Any]:
    """Worker-side shard loop; failures carry the global item index."""
    fn, indices, items = task
    out: list[Any] = []
    for index, item in zip(indices, items):
        try:
            out.append(fn(item))
        except TaskError:
            raise
        except Exception as exc:  # noqa: BLE001 - rewrap with provenance
            raise TaskError(
                index, item, f"{exc}\n{traceback.format_exc()}"
            ) from None
    return out


def map_shards(
    fn: Callable[[T], R],
    items: Sequence[T],
    plan: ShardPlan,
    workers: int = 1,
    mp_context: str | None = None,
    backend: Any | None = None,
    store: ResultStore | None = None,
    exec_cfg: Any | None = None,
) -> list[list[R]]:
    """Evaluate ``fn`` over ``items``, one executor task per shard.

    Returns one result list per shard, aligned with
    ``plan.shards[j].node_indices`` — the shape
    :meth:`repro.models.network.NetworkResult.merge` consumes.  Use
    :func:`run_sharded` when only the global order matters.

    ``fn`` must be module-level (picklable) when ``workers > 1``; a
    failing item re-raises as :class:`~repro.runtime.TaskError` with
    its global index attached, exactly like a flat executor map.

    ``backend`` routes the shard tasks through an explicit execution
    :class:`~repro.runtime.backend.Backend` — shard tasks are pure
    picklable data with their seeds inside, so a
    :class:`~repro.runtime.remote.SocketBackend` dispatches them to
    remote hosts unchanged, and bit-identically.

    With a ``store``, each *item* (not shard) is keyed by
    ``task_key(fn, item)`` in the parent; cached items are served
    without touching a worker, each shard is reduced to its missing
    items (fully-cached shards submit nothing), and computed values are
    written back.  Shard membership never enters the key, so any shard
    count and strategy warms and reads the same entries.

    ``exec_cfg`` supplies ``workers`` / ``backend`` / ``store`` in one
    :class:`~repro.runtime.config.ExecutionConfig` (or resolved
    :class:`~repro.runtime.config.ResolvedExecution`); mutually
    exclusive with passing those keywords individually.
    """
    if exec_cfg is not None:
        from .config import resolve_execution

        rx = resolve_execution(
            exec_cfg, workers=workers, backend=backend, store=store
        )
        workers, backend, store = rx.workers, rx.backend, rx.store
    items = list(items)
    if plan.n_items != len(items):
        raise ValueError(
            f"plan covers {plan.n_items} items, got {len(items)}"
        )
    pool = ParallelExecutor(
        workers=workers, chunk_size=1, mp_context=mp_context, backend=backend
    )
    if store is None:
        tasks = [
            (fn, shard.node_indices, [items[i] for i in shard.node_indices])
            for shard in plan.shards
        ]
        return pool.map(_run_shard, tasks)
    keys = [task_key(fn, item) for item in items]
    values: dict[int, Any] = {}
    for i, key in enumerate(keys):
        hit, value = store.get(key)
        if hit:
            values[i] = value
    reduced = [
        (shard, [i for i in shard.node_indices if i not in values])
        for shard in plan.shards
    ]
    reduced = [(shard, missing) for shard, missing in reduced if missing]
    computed = pool.map(
        _run_shard,
        [
            (fn, tuple(missing), [items[i] for i in missing])
            for _, missing in reduced
        ],
    )
    for (_, missing), shard_values in zip(reduced, computed):
        for i, value in zip(missing, shard_values):
            store.put(keys[i], value)
            values[i] = value
    return [[values[i] for i in shard.node_indices] for shard in plan.shards]


def run_sharded(
    fn: Callable[[T], R],
    items: Sequence[T],
    plan: ShardPlan,
    workers: int = 1,
    mp_context: str | None = None,
    backend: Any | None = None,
    store: ResultStore | None = None,
) -> list[R]:
    """Sharded map returning results in global item order.

    Equivalent to ``[fn(x) for x in items]`` for any plan, workers,
    start method and backend — sharding is an execution detail, never
    a semantic one.
    """
    return plan.global_order(
        map_shards(fn, items, plan, workers, mp_context, backend, store)
    )
