"""Spawn-safe, collision-free seed derivation for parallel runs.

Every parallel execution plan derives its per-task seeds *before* any
work is distributed, via :meth:`numpy.random.SeedSequence.spawn`.  The
spawn tree guarantees statistically independent, collision-free streams
regardless of which process evaluates which task, so results are a pure
function of ``(root seed, task index, replication index)`` — identical
for ``workers=1`` and ``workers=N``, and identical under ``fork`` and
``spawn`` start methods.

Two integer-seed helpers exist because the simulation APIs accept plain
integer seeds: a spawned :class:`~numpy.random.SeedSequence` child is
flattened to a 128-bit integer drawn from its state, which
:func:`numpy.random.default_rng` accepts directly.  Distinct children
give distinct integers with overwhelming probability (collisions need a
128-bit birthday coincidence).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sequence_to_seed",
    "spawn_sequences",
    "spawn_seeds",
    "replication_seeds",
    "substream_sequence",
    "substream_seed",
]


def sequence_to_seed(seq: np.random.SeedSequence) -> int:
    """Flatten a seed sequence to a 128-bit integer seed."""
    words = seq.generate_state(4, np.uint32)
    return int.from_bytes(words.tobytes(), "little")


def spawn_sequences(seed: int | None, n: int) -> list[np.random.SeedSequence]:
    """``n`` independent children of ``SeedSequence(seed)``."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return np.random.SeedSequence(seed).spawn(n)


def spawn_seeds(seed: int | None, n: int) -> list[int]:
    """``n`` collision-free integer seeds spawned from ``seed``."""
    return [sequence_to_seed(s) for s in spawn_sequences(seed, n)]


def substream_sequence(
    seed: int | None, *key: int
) -> np.random.SeedSequence:
    """A *tagged* sub-stream of ``seed``, keyed by an integer tuple.

    Where :func:`spawn_sequences` numbers children ``0..n-1``,
    ``substream_sequence`` addresses a child by an explicit ``key``
    (``SeedSequence(seed, spawn_key=key)``), so independent subsystems
    can carve collision-free streams out of one run seed without
    coordinating a child count — e.g. topology layout, churn failure
    times and duty-cycle draws each own a fixed tag.  Tags should be
    large constants (``>= 2**16``) so they can never collide with the
    small indices :meth:`~numpy.random.SeedSequence.spawn` hands out
    for the same parent seed.
    """
    for k in key:
        if not 0 <= k < 2**32:
            raise ValueError(f"substream key words must be uint32, got {k}")
    return np.random.SeedSequence(seed, spawn_key=tuple(key))


def substream_seed(seed: int | None, *key: int) -> int:
    """Integer seed for the tagged sub-stream ``key`` of ``seed``."""
    return sequence_to_seed(substream_sequence(seed, *key))


def replication_seeds(base_seed: int | None, replications: int) -> list[int | None]:
    """Per-replication seeds with a legacy-compatible first entry.

    Replication 0 runs with ``base_seed`` *unchanged*, so a
    single-replication run is bit-identical to the pre-runtime
    behaviour of every experiment driver; replications 1..R-1 get
    independent seeds spawned from ``base_seed``.
    """
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if replications == 1:
        return [base_seed]
    return [base_seed, *spawn_seeds(base_seed, replications - 1)]
