"""Pluggable execution backends behind the :class:`ParallelExecutor` seam.

A *backend* answers one question — "evaluate these picklable task
chunks and give me the results back in order" — and nothing else.  The
chunking policy, seed plans, adaptive control and sharding all live
above this seam, which is what makes the implementations
interchangeable:

* :class:`SerialBackend` — in-process, in-order evaluation.
  Bit-identical to the plain for-loops the drivers used before the
  runtime existed (it is the ``workers=1`` path of
  :class:`~repro.runtime.ParallelExecutor`).
* :class:`ProcessPoolBackend` — the historical
  :class:`concurrent.futures.ProcessPoolExecutor` fan-out across local
  cores.
* :class:`~repro.runtime.remote.SocketBackend` — chunks dispatched to
  remote worker processes over a length-prefixed TCP protocol
  (``python -m repro.cli worker --serve PORT`` on each host).

The contract every backend must honour (asserted in
``tests/runtime/test_backends.py`` and ``tests/runtime/test_remote.py``):

* **Ordering** — ``submit_chunks(fn, chunks)`` returns one result list
  per chunk, in chunk-submission order, whatever order execution
  finishes in.
* **Purity of placement** — seeds travel as data inside the items
  (:mod:`repro.runtime.seeding`), so *where* a chunk runs can never
  change the numbers: every backend is bit-identical to
  :class:`SerialBackend`.
* **Error provenance** — a failing item re-raises in the caller as
  :class:`~repro.runtime.TaskError` carrying the item's global index,
  whichever process (or host) evaluated it.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from typing import Any, TypeVar

from .executor import TaskError, _run_chunk

__all__ = [
    "Backend",
    "SerialBackend",
    "ProcessPoolBackend",
    "BACKEND_NAMES",
    "make_backend",
]

T = TypeVar("T")
R = TypeVar("R")

#: Chunk is ``(start_index, items)`` — the unit a backend schedules.
Chunk = tuple[int, Sequence[Any]]

#: CLI-facing backend spec names (see :func:`make_backend`).
BACKEND_NAMES = ("local", "processes", "socket")


class Backend(ABC):
    """Execution strategy for ordered maps over picklable task chunks.

    Subclasses implement :meth:`submit_chunks`; :meth:`map` adds the
    shared chunking policy on top.  ``parallelism`` is the slot count
    the default chunk size is balanced against (1 for serial, the
    worker count for a pool, the host count for sockets).
    """

    #: Human-readable backend name (used in CLI output and errors).
    name: str = "backend"

    @property
    def parallelism(self) -> int:
        """Concurrent execution slots the backend can fill."""
        return 1

    @abstractmethod
    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> list[list[Any]]:
        """Evaluate ``fn`` over each chunk; one result list per chunk.

        ``chunks`` are ``(global_start_index, items)`` pairs; failures
        must surface as :class:`~repro.runtime.TaskError` with the
        failing item's global index.
        """

    def close(self) -> None:
        """Release any long-lived resources the backend holds.

        A no-op for stateless backends.  Long-lived owners (the
        serving layer resolves one backend and reuses it across
        requests) call this on shutdown; a closed backend may lazily
        re-acquire resources if used again.
        """

    def resolve_chunk_size(
        self, n_items: int, chunk_size: int | None = None
    ) -> int:
        """The chunking policy: explicit size, else ~4 chunks per slot."""
        if chunk_size is not None:
            if chunk_size < 1:
                raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
            return chunk_size
        return max(1, math.ceil(n_items / (4 * self.parallelism)))

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        chunk_size: int | None = None,
    ) -> list[R]:
        """Ordered map over ``items`` via :meth:`submit_chunks`."""
        items = list(items)
        if not items:
            return []
        size = self.resolve_chunk_size(len(items), chunk_size)
        chunks = [
            (start, items[start : start + size])
            for start in range(0, len(items), size)
        ]
        out: list[R] = []
        for chunk_results in self.submit_chunks(fn, chunks):
            out.extend(chunk_results)
        return out


class SerialBackend(Backend):
    """In-process, in-order evaluation — the bit-identity reference.

    ``map`` is the exact historical ``workers=1`` loop (no chunking, no
    pickling); ``submit_chunks`` evaluates chunks in submission order
    in the calling process.

    >>> SerialBackend().map(abs, [-2, -1, 3])
    [2, 1, 3]
    """

    name = "local"

    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> list[list[Any]]:
        return [_run_chunk(fn, start, items) for start, items in chunks]

    def map(
        self,
        fn: Callable[[T], R],
        items: Sequence[T],
        chunk_size: int | None = None,
    ) -> list[R]:
        # The historical serial loop: no chunk bookkeeping, and the
        # original exception stays attached as __cause__ (a worker
        # process can only ship it as text; in-process we keep it).
        out: list[R] = []
        for i, item in enumerate(items):
            try:
                out.append(fn(item))
            except TaskError:
                raise
            except Exception as exc:  # noqa: BLE001 - uniform contract
                raise TaskError(i, item, str(exc)) from exc
        return out


class ProcessPoolBackend(Backend):
    """Chunk fan-out over a local :class:`~concurrent.futures.ProcessPoolExecutor`.

    ``fn`` and every item must be picklable; ``mp_context`` selects the
    multiprocessing start method (``"fork"``, ``"spawn"``,
    ``"forkserver"``, or ``None`` for the platform default).  Results
    never depend on the choice.

    With ``keep_alive=True`` the pool is created lazily on first use
    and **reused across** ``submit_chunks`` calls instead of being
    rebuilt per call — the shape a long-lived owner like the serving
    layer wants, where per-request pool spin-up would dominate small
    requests.  Call :meth:`close` to shut the persistent pool down
    (the next use re-creates it).  Reuse changes wall time only, never
    results.

    >>> ProcessPoolBackend(workers=2).map(abs, [-2, -1, 3])
    [2, 1, 3]
    """

    name = "processes"

    def __init__(
        self,
        workers: int,
        mp_context: str | None = None,
        keep_alive: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.mp_context = mp_context
        self.keep_alive = bool(keep_alive)
        self._pool: Any = None

    @property
    def parallelism(self) -> int:
        return self.workers

    def _mp_ctx(self):
        import multiprocessing

        return (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else None
        )

    def _gather(self, pool: Any, fn: Callable[[Any], Any],
                chunks: Sequence[Chunk]) -> list[list[Any]]:
        futures = [
            pool.submit(_run_chunk, fn, start, chunk)
            for start, chunk in chunks
        ]
        results: list[list[Any]] = []
        try:
            for future in futures:
                results.append(future.result())
        except BaseException:
            for future in futures:
                future.cancel()
            raise
        return results

    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> list[list[Any]]:
        from concurrent.futures import ProcessPoolExecutor

        if not chunks:
            return []
        if self.keep_alive:
            if self._pool is None:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers, mp_context=self._mp_ctx()
                )
            return self._gather(self._pool, fn, chunks)
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)),
            mp_context=self._mp_ctx(),
        ) as pool:
            return self._gather(pool, fn, chunks)

    def close(self) -> None:
        """Shut down the persistent pool (no-op without ``keep_alive``)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_backend(
    spec: str,
    *,
    workers: int = 1,
    mp_context: str | None = None,
    addresses: Sequence[str] | None = None,
    keep_alive: bool = False,
) -> Backend:
    """Build a backend from a CLI-style spec.

    ``"local"`` ignores ``workers`` (always serial); ``"processes"``
    pools ``workers`` local processes; ``"socket"`` dispatches to the
    remote workers listed in ``addresses`` (``"host:port"`` strings —
    one ``python -m repro.cli worker --serve PORT`` process each).
    ``keep_alive`` asks for a backend meant to outlive one run
    (currently: a persistent process pool); backends without long-lived
    state ignore it.
    """
    if spec == "local":
        return SerialBackend()
    if spec == "processes":
        return ProcessPoolBackend(
            workers=workers, mp_context=mp_context, keep_alive=keep_alive
        )
    if spec == "socket":
        from .remote import SocketBackend

        if not addresses:
            raise ValueError(
                "socket backend needs at least one worker address "
                "(host:port); start workers with "
                "'python -m repro.cli worker --serve PORT'"
            )
        return SocketBackend(addresses)
    raise ValueError(f"backend must be one of {BACKEND_NAMES}, got {spec!r}")
