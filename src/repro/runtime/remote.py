"""Multi-host execution: a socket worker protocol + chunk dispatcher.

The shard/chunk seam of :mod:`repro.runtime` is host-agnostic — tasks
are pure picklable data and seeds travel as values inside them — so
chunks can run on any machine that can import :mod:`repro`.  This
module supplies the thin transport:

* :func:`serve_worker` — the worker side (``python -m repro.cli worker
  --serve PORT``).  It listens on a TCP port, accepts a dispatcher
  connection, evaluates the pickled task chunks it receives and
  streams each chunk's results back, tagged with the chunk id so the
  dispatcher can reassemble them in order.
* :class:`SocketBackend` — the dispatcher side, a
  :class:`~repro.runtime.backend.Backend` that connects to one or more
  workers (``host:port`` each), load-balances chunks across them
  (each connection pulls the next pending chunk as soon as it finishes
  the last — faster hosts simply take more chunks), and **re-queues**
  the in-flight chunk of any worker whose connection drops, so a lost
  host degrades capacity instead of the run.

Wire format
-----------
Length-prefixed pickle frames: 8 bytes big-endian payload length, then
the pickled message.  Messages are tuples ``(kind, *payload)``:

====================  ==========================  ======================
message               direction                   payload
====================  ==========================  ======================
``("hello", v)``      both, once after connect    protocol version
``("chunk", id,       dispatcher -> worker        module-level callable,
fn, start, items)``                               global start index,
                                                  item list
``("result", id,      worker -> dispatcher        per-item results, in
values)``                                         item order
``("error", id,       worker -> dispatcher        the raised
exc)``                                            :class:`TaskError`
====================  ==========================  ======================

A session ends when the dispatcher closes its end (EOF); the worker
then goes back to ``accept`` for the next dispatcher.

Determinism is inherited, not negotiated: chunk results are keyed by
chunk id and reassembled in submission order, and seeds are data inside
the items, so a socket run is bit-identical to
:class:`~repro.runtime.backend.SerialBackend` whatever the host count,
scheduling, or drop pattern.

.. warning::
   The protocol is **pickle over TCP with no authentication** — the
   same trust model as :mod:`multiprocessing` managers.  Only serve
   workers on localhost or inside a trusted cluster network.
"""

from __future__ import annotations

import pickle
import socket
import struct
import threading
from collections.abc import Callable, Sequence
from queue import Empty, Queue
from typing import Any

from .backend import Backend, Chunk
from .executor import TaskError, _run_chunk

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ConnectionClosed",
    "WorkerPoolError",
    "send_frame",
    "recv_frame",
    "parse_address",
    "serve_worker",
    "SocketBackend",
]

#: Bumped on any wire-format change; both ends refuse a mismatch.
PROTOCOL_VERSION = 1

_LENGTH = struct.Struct(">Q")


class ProtocolError(RuntimeError):
    """The peer sent a frame the protocol does not allow."""


class ConnectionClosed(ConnectionError):
    """The peer closed the connection (EOF mid-protocol)."""


class WorkerPoolError(RuntimeError):
    """Chunks remain but every connected worker has dropped."""


def send_frame(sock: socket.socket, message: Any) -> None:
    """Send one length-prefixed pickled message."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        data = sock.recv(min(remaining, 1 << 20))
        if not data:
            raise ConnectionClosed(
                f"peer closed with {remaining} of {n} bytes outstanding"
            )
        chunks.append(data)
        remaining -= len(data)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Receive one length-prefixed pickled message."""
    (length,) = _LENGTH.unpack(_recv_exact(sock, _LENGTH.size))
    return pickle.loads(_recv_exact(sock, length))


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``host:port`` worker address (host defaults to localhost).

    >>> parse_address("10.0.0.7:9000")
    ('10.0.0.7', 9000)
    >>> parse_address(":9000")
    ('127.0.0.1', 9000)
    """
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"worker address must be host:port, got {text!r}"
        ) from None
    if not 0 < port < 65536:
        raise ValueError(f"port must be in 1..65535, got {port}")
    return (host or "127.0.0.1", port)


def _handshake(sock: socket.socket) -> None:
    """Exchange hello frames; raise on a version/protocol mismatch."""
    send_frame(sock, ("hello", PROTOCOL_VERSION))
    message = recv_frame(sock)
    if (
        not isinstance(message, tuple)
        or len(message) != 2
        or message[0] != "hello"
    ):
        raise ProtocolError(f"expected hello frame, got {message!r}")
    if message[1] != PROTOCOL_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks {message[1]}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )


def _serve_connection(conn: socket.socket) -> int:
    """One dispatcher session: evaluate chunks until bye/EOF."""
    _handshake(conn)
    served = 0
    while True:
        try:
            message = recv_frame(conn)
        except ConnectionClosed:
            return served
        if not isinstance(message, tuple) or not message:
            raise ProtocolError(f"malformed frame: {message!r}")
        kind = message[0]
        if kind != "chunk":
            raise ProtocolError(f"unexpected frame kind {kind!r}")
        _, chunk_id, fn, start, items = message
        try:
            values = _run_chunk(fn, start, items)
        except TaskError as exc:
            send_frame(conn, ("error", chunk_id, exc))
        else:
            send_frame(conn, ("result", chunk_id, values))
            served += 1


def _announce_stdout(line: str) -> None:
    print(line, flush=True)  # scripts read the port through a pipe


def serve_worker(
    port: int,
    host: str = "127.0.0.1",
    *,
    max_sessions: int | None = None,
    announce: Callable[[str], None] | None = _announce_stdout,
) -> int:
    """Run a worker: accept dispatcher sessions and evaluate chunks.

    Binds ``host:port`` (``port=0`` picks a free port) and announces
    the bound address as ``repro worker listening on HOST:PORT`` — the
    line scripts and tests parse to learn an ephemeral port.  Each
    accepted connection is served to completion before the next is
    accepted; ``max_sessions`` bounds how many sessions to serve
    (``None`` serves forever).  Returns the number of chunks served.

    The evaluated callables arrive by pickle *reference*, so the worker
    process must be able to import them — run workers from a checkout
    with the same ``repro`` version as the dispatcher.
    """
    if max_sessions is not None and max_sessions < 1:
        raise ValueError(f"max_sessions must be >= 1, got {max_sessions}")
    served = 0
    with socket.create_server((host, port), backlog=8) as server:
        bound_host, bound_port = server.getsockname()[:2]
        if announce is not None:
            announce(f"repro worker listening on {bound_host}:{bound_port}")
        sessions = 0
        while max_sessions is None or sessions < max_sessions:
            conn, _addr = server.accept()
            sessions += 1
            with conn:
                try:
                    served += _serve_connection(conn)
                except Exception:  # noqa: BLE001
                    # One misbehaving client (dispatcher vanished,
                    # version mismatch, garbage frames, a chunk whose
                    # module this worker can't import) must not take
                    # the worker away from every other dispatcher;
                    # drop the session and re-accept.
                    continue
    return served


class _WorkerLink:
    """Dispatcher-side state for one connected worker."""

    def __init__(self, address: tuple[str, int], sock: socket.socket) -> None:
        self.address = address
        self.sock = sock

    def close(self) -> None:
        # shutdown() first: it unblocks a dispatcher thread parked in
        # recv on this socket (abort path) and sends FIN, which is the
        # protocol's session end.  Never write frames from here — the
        # owning thread may be mid-send.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class SocketBackend(Backend):
    """Dispatch chunks to remote socket workers, with drop re-queuing.

    Parameters
    ----------
    addresses:
        Worker endpoints — ``"host:port"`` strings (or ``(host, port)``
        tuples), one per ``python -m repro.cli worker --serve PORT``
        process.  To use several cores of one host, start one worker
        process per core (each on its own port) and list them all — a
        single worker serves one dispatcher session at a time.
    connect_timeout:
        Seconds to wait for each TCP connect + handshake (established
        connections then wait on results without a deadline —
        simulation chunks have no natural time bound).  A worker that
        is busy with another dispatcher fails the handshake deadline
        and is simply left out of this run's pool.

    Chunks are pulled from a shared queue by one dispatcher thread per
    worker connection, so load balances by completion speed.  If a
    connection drops mid-chunk, that chunk returns to the queue for the
    surviving workers; the run fails (:class:`WorkerPoolError`) only
    when *no* workers remain.  A remote :class:`TaskError` is re-raised
    in the caller with its global item index intact.
    """

    name = "socket"

    def __init__(
        self,
        addresses: Sequence[str | tuple[str, int]],
        connect_timeout: float = 10.0,
    ) -> None:
        if not addresses:
            raise ValueError("socket backend needs at least one address")
        self.addresses = [
            addr if isinstance(addr, tuple) else parse_address(addr)
            for addr in addresses
        ]
        self.connect_timeout = connect_timeout

    @property
    def parallelism(self) -> int:
        return len(self.addresses)

    def _connect(self) -> list[_WorkerLink]:
        links: list[_WorkerLink] = []
        failures: list[str] = []
        for address in self.addresses:
            sock = None
            try:
                sock = socket.create_connection(
                    address, timeout=self.connect_timeout
                )
                # Handshake under the connect deadline: a worker whose
                # accept queue holds us while it serves another
                # dispatcher would otherwise block this run forever.
                _handshake(sock)
                sock.settimeout(None)
            except (OSError, ProtocolError) as exc:
                if sock is not None:
                    sock.close()
                failures.append(f"{address[0]}:{address[1]}: {exc}")
                continue
            links.append(_WorkerLink(address, sock))
        if not links:
            raise WorkerPoolError(
                "could not connect to any worker: " + "; ".join(failures)
            )
        return links

    def submit_chunks(
        self, fn: Callable[[Any], Any], chunks: Sequence[Chunk]
    ) -> list[list[Any]]:
        chunks = list(chunks)
        if not chunks:
            return []
        links = self._connect()
        pending: Queue[tuple[int, int, Sequence[Any]]] = Queue()
        for chunk_id, (start, items) in enumerate(chunks):
            pending.put((chunk_id, start, items))
        results: list[list[Any] | None] = [None] * len(chunks)
        errors: list[BaseException] = []
        state_lock = threading.Lock()
        remaining = len(chunks)
        alive = len(links)
        done = threading.Event()  # all chunks answered, or fatal error

        def _abort(error: BaseException) -> None:
            with state_lock:
                errors.append(error)
            done.set()

        def _pump(link: _WorkerLink) -> None:
            nonlocal remaining, alive
            try:
                while not done.is_set():
                    try:
                        job = pending.get(timeout=0.05)
                    except Empty:
                        continue
                    chunk_id, start, items = job
                    try:
                        send_frame(
                            link.sock, ("chunk", chunk_id, fn, start, items)
                        )
                        reply = recv_frame(link.sock)
                    except (OSError, ConnectionError):
                        # The link died: hand the in-flight chunk to a
                        # surviving worker and retire this thread.
                        pending.put(job)
                        return
                    except BaseException as exc:  # noqa: BLE001
                        # Not a link failure — e.g. an unpicklable task
                        # item.  Retrying elsewhere can't help; surface
                        # the real cause instead of draining the pool.
                        pending.put(job)
                        _abort(exc)
                        return
                    if (
                        not isinstance(reply, tuple)
                        or len(reply) != 3
                        or reply[0] not in ("result", "error")
                        or reply[1] != chunk_id
                    ):
                        _abort(
                            ProtocolError(
                                f"worker {link.address} answered chunk "
                                f"{chunk_id} with {reply!r}"
                            )
                        )
                        return
                    if reply[0] == "error":
                        _abort(reply[2])
                        return
                    with state_lock:
                        results[chunk_id] = reply[2]
                        remaining -= 1
                        finished = remaining == 0
                    if finished:
                        done.set()
                        return
            finally:
                # Whatever path ended this thread, keep the accounting
                # exact — submit_chunks waits on `done`, and the last
                # thread out must set it or the call would hang.
                with state_lock:
                    alive -= 1
                    lost = alive == 0 and not done.is_set()
                    if lost:
                        errors.append(
                            WorkerPoolError(
                                f"{remaining} chunk(s) unfinished but "
                                f"every worker connection dropped "
                                f"({len(links)} started)"
                            )
                        )
                if lost:
                    done.set()

        threads = [
            threading.Thread(
                target=_pump, args=(link,), name=f"repro-dispatch-{i}"
            )
            for i, link in enumerate(links)
        ]
        for thread in threads:
            thread.start()
        done.wait()
        for link in links:
            link.close()  # unblocks threads still waiting in recv
        for thread in threads:
            thread.join()
        for error in errors:
            raise error
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
