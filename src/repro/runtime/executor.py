"""Process-pool execution of embarrassingly parallel task lists.

:class:`ParallelExecutor` is the single execution primitive the
experiment drivers share.  Its contract:

* **Ordered gathering** — ``map(fn, items)`` returns results in item
  order, whatever order the chunks finish in.
* **Serial fallback** — ``workers=1`` evaluates in-process, in order,
  with no pool, no pickling and no chunking, so it is bit-identical to
  the plain for-loops the drivers used before the runtime existed.
* **Chunked batching** — items are submitted in contiguous chunks to
  amortise per-task IPC; chunking never affects results, only wall
  time.
* **Spawn safety** — ``fn`` must be a module-level callable and every
  item picklable.  Seeds are data inside the items (see
  :mod:`repro.runtime.seeding`), never derived in the worker, so any
  start method ('fork', 'spawn', 'forkserver') gives the same results.

Failures are re-raised in the parent as :class:`TaskError` carrying the
offending item, mirroring the "which grid point broke" diagnostics of
the old serial sweeps.
"""

from __future__ import annotations

import math
import multiprocessing
import traceback
from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor
from typing import Any, TypeVar

__all__ = ["ParallelExecutor", "TaskError"]

T = TypeVar("T")
R = TypeVar("R")


class TaskError(RuntimeError):
    """One task of a parallel map failed.

    Attributes
    ----------
    index:
        Position of the failing item in the submitted sequence.
    item:
        The item itself (e.g. the sweep threshold).
    """

    def __init__(self, index: int, item: Any, message: str) -> None:
        super().__init__(
            f"parallel task {index} failed for item {item!r}: {message}"
        )
        self.index = index
        self.item = item
        self.message = message

    def __reduce__(self):
        # Exception.__reduce__ would replay args=(formatted,) into
        # __init__(index, item, message); rebuild from the real fields
        # so the error pickles cleanly across process boundaries.
        return (TaskError, (self.index, self.item, self.message))


def _run_chunk(
    fn: Callable[[Any], Any], start: int, items: Sequence[Any]
) -> list[Any]:
    """Worker-side chunk loop; failures carry the global item index."""
    out: list[Any] = []
    for offset, item in enumerate(items):
        try:
            out.append(fn(item))
        except TaskError:
            raise
        except Exception as exc:  # noqa: BLE001 - rewrap with provenance
            raise TaskError(
                start + offset, item, f"{exc}\n{traceback.format_exc()}"
            ) from None
    return out


class ParallelExecutor:
    """Ordered, chunked process-pool map with a serial fallback.

    Parameters
    ----------
    workers:
        Number of worker processes.  ``1`` (default) runs serially
        in-process.
    chunk_size:
        Items per submitted batch.  Defaults to
        ``ceil(len(items) / (4 * workers))`` — small enough to balance
        uneven task costs, large enough to amortise submission
        overhead.
    mp_context:
        Start-method name (``"fork"``, ``"spawn"``, ``"forkserver"``)
        or ``None`` for the platform default.  Results never depend on
        the choice.

    Example
    -------
    ``fn`` must be module-level (picklable) for ``workers > 1``; with
    the serial default any callable works:

    >>> from repro.runtime import ParallelExecutor
    >>> ParallelExecutor().map(abs, [-2, -1, 3])
    [2, 1, 3]
    >>> ParallelExecutor(workers=2, chunk_size=2).map(abs, [-2, -1, 3])
    [2, 1, 3]
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int | None = None,
        mp_context: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.mp_context = mp_context

    def _resolve_chunk_size(self, n_items: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_items / (4 * self.workers)))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Evaluate ``fn`` over ``items``, returning results in order."""
        items = list(items)
        if self.workers == 1 or len(items) <= 1:
            out: list[R] = []
            for i, item in enumerate(items):
                try:
                    out.append(fn(item))
                except TaskError:
                    raise
                except Exception as exc:  # noqa: BLE001 - uniform contract
                    raise TaskError(i, item, str(exc)) from exc
            return out

        size = self._resolve_chunk_size(len(items))
        chunks = [
            (start, items[start : start + size])
            for start in range(0, len(items), size)
        ]
        ctx = (
            multiprocessing.get_context(self.mp_context)
            if self.mp_context is not None
            else None
        )
        results: list[R] = []
        with ProcessPoolExecutor(
            max_workers=min(self.workers, len(chunks)), mp_context=ctx
        ) as pool:
            futures = [
                pool.submit(_run_chunk, fn, start, chunk)
                for start, chunk in chunks
            ]
            try:
                for future in futures:
                    results.extend(future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
        return results
