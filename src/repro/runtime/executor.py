"""Chunked, ordered execution of embarrassingly parallel task lists.

:class:`ParallelExecutor` is the single execution primitive the
experiment drivers share.  Its contract:

* **Ordered gathering** — ``map(fn, items)`` returns results in item
  order, whatever order the chunks finish in.
* **Serial fallback** — ``workers=1`` evaluates in-process, in order,
  with no pool, no pickling and no chunking, so it is bit-identical to
  the plain for-loops the drivers used before the runtime existed.
* **Chunked batching** — items are submitted in contiguous chunks to
  amortise per-task IPC; chunking never affects results, only wall
  time.
* **Spawn safety** — ``fn`` must be a module-level callable and every
  item picklable.  Seeds are data inside the items (see
  :mod:`repro.runtime.seeding`), never derived in the worker, so any
  start method ('fork', 'spawn', 'forkserver') gives the same results.

*Where* the chunks run is delegated to a pluggable
:class:`~repro.runtime.backend.Backend`: in-process
(:class:`~repro.runtime.backend.SerialBackend`), a local process pool
(:class:`~repro.runtime.backend.ProcessPoolBackend`, the historical
default for ``workers > 1``), or remote hosts over TCP
(:class:`~repro.runtime.remote.SocketBackend`).  Backends never change
results — only wall time.

Failures are re-raised in the parent as :class:`TaskError` carrying the
offending item, mirroring the "which grid point broke" diagnostics of
the old serial sweeps.
"""

from __future__ import annotations

import math
import traceback
from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING, Any, TypeVar

if TYPE_CHECKING:  # imported lazily at runtime (backend imports us)
    from .backend import Backend

__all__ = ["ParallelExecutor", "TaskError"]

T = TypeVar("T")
R = TypeVar("R")


class TaskError(RuntimeError):
    """One task of a parallel map failed.

    Attributes
    ----------
    index:
        Position of the failing item in the submitted sequence.
    item:
        The item itself (e.g. the sweep threshold).
    """

    def __init__(self, index: int, item: Any, message: str) -> None:
        super().__init__(
            f"parallel task {index} failed for item {item!r}: {message}"
        )
        self.index = index
        self.item = item
        self.message = message

    def __reduce__(self):
        # Exception.__reduce__ would replay args=(formatted,) into
        # __init__(index, item, message); rebuild from the real fields
        # so the error pickles cleanly across process boundaries.
        return (TaskError, (self.index, self.item, self.message))


def _run_chunk(
    fn: Callable[[Any], Any], start: int, items: Sequence[Any]
) -> list[Any]:
    """Worker-side chunk loop; failures carry the global item index."""
    out: list[Any] = []
    for offset, item in enumerate(items):
        try:
            out.append(fn(item))
        except TaskError:
            raise
        except Exception as exc:  # noqa: BLE001 - rewrap with provenance
            raise TaskError(
                start + offset, item, f"{exc}\n{traceback.format_exc()}"
            ) from None
    return out


class ParallelExecutor:
    """Ordered, chunked map over a pluggable execution backend.

    Parameters
    ----------
    workers:
        Number of local worker processes.  ``1`` (default) runs
        serially in-process.  Ignored when an explicit ``backend`` is
        given (the backend carries its own parallelism).
    chunk_size:
        Items per submitted batch.  Defaults to
        ``ceil(len(items) / (4 * slots))`` — small enough to balance
        uneven task costs, large enough to amortise submission
        overhead.
    mp_context:
        Start-method name (``"fork"``, ``"spawn"``, ``"forkserver"``)
        or ``None`` for the platform default.  Results never depend on
        the choice.
    backend:
        Explicit :class:`~repro.runtime.backend.Backend` instance to
        submit chunks through — e.g. a
        :class:`~repro.runtime.remote.SocketBackend` over remote
        worker processes.  ``None`` (default) selects the historical
        behaviour: serial for ``workers=1``, a local process pool
        otherwise.  Backends never change results.

    Example
    -------
    ``fn`` must be module-level (picklable) for ``workers > 1``; with
    the serial default any callable works:

    >>> from repro.runtime import ParallelExecutor
    >>> ParallelExecutor().map(abs, [-2, -1, 3])
    [2, 1, 3]
    >>> ParallelExecutor(workers=2, chunk_size=2).map(abs, [-2, -1, 3])
    [2, 1, 3]
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int | None = None,
        mp_context: str | None = None,
        backend: "Backend | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.workers = int(workers)
        self.chunk_size = chunk_size
        self.mp_context = mp_context
        self.backend = backend

    def _resolve_chunk_size(self, n_items: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, math.ceil(n_items / (4 * self.workers)))

    def map(self, fn: Callable[[T], R], items: Sequence[T]) -> list[R]:
        """Evaluate ``fn`` over ``items``, returning results in order."""
        from .backend import ProcessPoolBackend, SerialBackend

        items = list(items)
        if self.backend is not None:
            return self.backend.map(fn, items, chunk_size=self.chunk_size)
        if self.workers == 1 or len(items) <= 1:
            return SerialBackend().map(fn, items)
        pool = ProcessPoolBackend(self.workers, self.mp_context)
        size = self._resolve_chunk_size(len(items))
        return pool.map(fn, items, chunk_size=size)
