"""Content-addressed result store: memoize deterministic simulations.

Every ``(model config, seed plan entry, horizon, metric)`` task in this
repo is a pure function of its inputs — the seed plans make results
independent of workers/chunking/backends, and the vectorized engine is
bit-identical to the interpreted one.  This module exploits that:
results are stored on disk under a **canonical content hash of the task
spec**, so figure regenerations, repeated sweeps and adaptive top-ups
recompute only what has never been computed before.

The three layers:

* :func:`canonicalize` / :func:`task_key` — a canonical, content-based
  hash of an arbitrary task item (nested dataclasses, dicts, numpy
  scalars, callables).  Dict-key order never matters, numpy scalars
  hash like their Python values, and dataclass fields *at their
  declared default* are dropped — so adding a new defaulted config
  field does not invalidate existing entries, while any semantic change
  (horizon, seed entry, net structure, parameter value) does.
* :class:`ResultStore` — the on-disk store: one pickle payload per key
  under ``objects/<k[:2]>/<k>``, written atomically (temp file +
  ``os.replace``), self-checking on read (magic + SHA-256 over the
  payload; a corrupt or truncated entry warns, is deleted, and reads as
  a miss — **never** a crash or a silently-wrong hit), plus a
  ``manifest.json`` carrying schema/version stamps and persistent
  hit/miss counters.  A manifest from a different schema disables the
  store with a warning (every read misses, writes are skipped).
* :func:`cached_map` / :func:`cached_ensemble_map` — executor-level
  wrappers the sweep/adaptive/sharding layers use: consult the store in
  the *parent* process, submit only the misses through the
  :class:`~repro.runtime.ParallelExecutor` (so remote socket workers
  never need the store directory), and write freshly computed values
  back.

Engine-equivalence classes
--------------------------
Keys are always derived from the **interpreted-engine task shape**
(``task_key(fn, item)`` with the per-replication item), even when the
work is executed by the vectorized lockstep engine: PR 6's bit-identity
contract makes both engines one equivalence class, so a sweep run under
``engine="vectorized"`` warms the cache for ``engine="interpreted"``
and vice versa.  Execution knobs (workers, shards, chunking, backend)
are never part of a key — they never change results.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
import warnings
from collections.abc import Callable, Mapping, Sequence, Set
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "StoreWarning",
    "StoreStats",
    "ResultStore",
    "canonicalize",
    "canonical_json",
    "task_key",
    "request_key",
    "cached_map",
    "cached_ensemble_map",
]

#: Version stamp of the *key derivation* (canonicalization rules).  A
#: change to the rules must bump this so stale keys can never alias new
#: ones.
KEY_SCHEMA = 1

#: Version stamp of the on-disk layout (manifest + entry format).
STORE_SCHEMA = 1

#: Magic prefix of every entry file; encodes the entry-format version.
#: An entry written by a future format has a different magic and reads
#: as version skew (recompute), not as garbage.
ENTRY_MAGIC = b"RPRSTOR1"

_DIGEST_BYTES = 32  # SHA-256
_KEY_RE = re.compile(r"^[0-9a-f]{64}$")


class StoreWarning(UserWarning):
    """A store entry or manifest failed validation and was bypassed.

    Raised as a *warning*, never an exception: integrity failures
    (corruption, truncation, checksum mismatch, schema skew) degrade to
    a recompute, because a missing cache entry is always safe and a
    wrong one silently corrupts science.
    """


# ----------------------------------------------------------------------
# Canonical task hashing
# ----------------------------------------------------------------------


def _callable_id(fn: Callable[..., Any]) -> str:
    """Stable ``module:qualname`` identity of a module-level callable.

    Lambdas, closures and ``functools.partial`` objects have no stable
    content-addressable name — two different lambdas share the qualname
    ``<lambda>`` — so they are rejected loudly rather than hashed
    ambiguously (an ambiguous key risks a wrong cache hit).
    """
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<" in qualname:
        raise TypeError(
            f"cannot derive a stable store key for {fn!r}: only "
            "module-level callables are content-addressable (lambdas "
            "and closures have ambiguous names)"
        )
    return f"{module}:{qualname}"


def _class_id(cls: type) -> str:
    return f"{cls.__module__}.{cls.__qualname__}"


def _field_is_default(field: dataclasses.Field, value: Any) -> bool:
    """True when a dataclass field still carries its declared default.

    Comparison failures (exotic ``__eq__``) count as *not* default —
    keeping the field in the hash is always safe, dropping it is not.
    """
    try:
        if field.default is not dataclasses.MISSING:
            return bool(value == field.default)
        if field.default_factory is not dataclasses.MISSING:
            return bool(value == field.default_factory())
    except Exception:  # noqa: BLE001 - equality is caller-defined
        return False
    return False


def canonicalize(obj: Any) -> Any:
    """Lower an arbitrary task item to a canonical JSON-able structure.

    The canonical form is what gets hashed, so its rules *are* the
    cache-identity rules:

    * dict/mapping keys are sorted — insertion order never matters;
    * numpy scalars lower to their Python values (``np.float64(0.5)``
      and ``0.5`` are the same content); floats are tagged with their
      exact ``float.hex()`` — bit-exact, no repr rounding;
    * tuples and lists are both sequences (``(1, 2)`` ≡ ``[1, 2]``);
    * dataclass instances hash as (class identity, non-default fields):
      a field equal to its declared default is dropped, so *adding* a
      defaulted field to a config dataclass keeps old keys valid, while
      changing any field's value changes the key;
    * module-level callables hash by ``module:qualname``; lambdas and
      closures raise :class:`TypeError` (ambiguous identity);
    * anything else without a ``__dict__`` raises :class:`TypeError` —
      an item the canonicalizer does not understand must fail loudly,
      never hash by object identity.
    """
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        return ["f", float(obj).hex()]
    if isinstance(obj, (bytes, bytearray)):
        return ["b", bytes(obj).hex()]
    if isinstance(obj, np.ndarray):
        return ["nd", list(obj.shape), obj.dtype.str, obj.tobytes().hex()]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if not _field_is_default(f, getattr(obj, f.name))
        }
        return ["dc", _class_id(type(obj)), body]
    if isinstance(obj, Mapping):
        pairs = sorted(
            (
                (
                    json.dumps(canonicalize(k), sort_keys=True),
                    canonicalize(v),
                )
                for k, v in obj.items()
            ),
            key=lambda kv: kv[0],
        )
        return ["d", [[k, v] for k, v in pairs]]
    if isinstance(obj, Set):
        return [
            "s",
            sorted(json.dumps(canonicalize(v), sort_keys=True) for v in obj),
        ]
    if isinstance(obj, (list, tuple)):
        return ["l", [canonicalize(v) for v in obj]]
    if callable(obj):
        return ["fn", _callable_id(obj)]
    state = getattr(obj, "__dict__", None)
    if state is not None:
        return ["obj", _class_id(type(obj)), canonicalize(state)]
    raise TypeError(
        f"cannot canonicalize {type(obj).__qualname__} for a store key: "
        "use plain data, dataclasses, or module-level callables in task "
        "items"
    )


def canonical_json(obj: Any) -> str:
    """The canonical JSON text of an item (what :func:`task_key` hashes)."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def task_key(fn: Callable[..., Any], item: Any) -> str:
    """The store key of one task: SHA-256 of (key schema, fn, item).

    ``fn`` is the *interpreted-engine* task evaluator — the vectorized
    engine shares its keys (see the module docstring on equivalence
    classes).  Execution knobs must not appear in ``item``.
    """
    payload = json.dumps(
        ["repro-store", KEY_SCHEMA, _callable_id(fn), canonicalize(item)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def request_key(obj: Any) -> str:
    """A canonical SHA-256 over an arbitrary request payload.

    The serving layer's request digest: two requests that spell the
    same content (dict order, tuple-vs-list, numpy scalars) share a
    key, under the same :func:`canonicalize` rules as task hashing but
    in a distinct namespace — a request key can never alias a
    :func:`task_key` entry.  Used for idempotent job submission
    (``repro.serving`` coalesces identical in-flight requests), not for
    store addressing.

    >>> request_key({"a": 1, "b": 2.0}) == request_key({"b": 2.0, "a": 1})
    True
    """
    payload = json.dumps(
        ["repro-request", KEY_SCHEMA, canonicalize(obj)],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ----------------------------------------------------------------------
# The on-disk store
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StoreStats:
    """A snapshot of the store: contents plus lifetime counters.

    ``hits``/``misses``/``puts``/``corrupt`` include both the counters
    persisted by previous sessions (via
    :meth:`ResultStore.flush_counters`) and the current session's.
    """

    entries: int
    total_bytes: int
    hits: int
    misses: int
    puts: int
    corrupt: int

    def lines(self) -> list[str]:
        """Human-readable report rows (the CLI ``store stats`` output)."""
        return [
            f"entries : {self.entries}",
            f"bytes   : {self.total_bytes}",
            f"hits    : {self.hits}",
            f"misses  : {self.misses}",
            f"puts    : {self.puts}",
            f"corrupt : {self.corrupt}",
        ]


_COUNTER_NAMES = ("hits", "misses", "puts", "corrupt")


class ResultStore:
    """Content-addressed on-disk cache of per-replication results.

    Parameters
    ----------
    root:
        Store directory; created (with a fresh ``manifest.json``) if
        missing.

    Notes
    -----
    * **Atomic writes** — payloads land via temp file +
      :func:`os.replace`, so readers never observe a half-written
      entry, and concurrent writers of the same key are safe (the
      values are bit-identical by determinism; last rename wins).
    * **Verified reads** — every entry carries a magic/version prefix
      and a SHA-256 over its payload.  Any mismatch (truncation,
      garbage, bit flips, a future entry format) warns
      (:class:`StoreWarning`), deletes the bad entry, and reads as a
      miss, so the caller recomputes.
    * **Schema skew** — a manifest written by a different
      :data:`STORE_SCHEMA` disables the store for this session with a
      warning: reads miss, writes are skipped, nothing crashes.
    * The store is consulted in the parent process only (see
      :func:`cached_map`), so it is never pickled into worker tasks.

    Example
    -------
    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as d:
    ...     store = ResultStore(d)
    ...     key = task_key(canonical_json, {"horizon": 900.0, "seed": 7})
    ...     store.put(key, 42.0)
    ...     store.get(key)
    (True, 42.0)
    """

    def __init__(self, root: str | os.PathLike[str]) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0
        self._disabled = False
        self.root.mkdir(parents=True, exist_ok=True)
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(exist_ok=True)
        manifest = self._read_manifest()
        if manifest is None:
            self._write_manifest(self._fresh_manifest())
        elif (
            manifest.get("store_schema") != STORE_SCHEMA
            or manifest.get("key_schema") != KEY_SCHEMA
        ):
            warnings.warn(
                f"result store at {self.root} has schema "
                f"{manifest.get('store_schema')!r}/key schema "
                f"{manifest.get('key_schema')!r} (this build expects "
                f"{STORE_SCHEMA}/{KEY_SCHEMA}); store disabled for this "
                "run — everything will be recomputed",
                StoreWarning,
                stacklevel=2,
            )
            self._disabled = True

    # -- manifest ------------------------------------------------------

    @property
    def manifest_path(self) -> Path:
        return self.root / "manifest.json"

    @property
    def enabled(self) -> bool:
        """False when schema skew disabled the store for this session."""
        return not self._disabled

    @staticmethod
    def _fresh_manifest() -> dict[str, Any]:
        return {
            "format": "repro-result-store",
            "store_schema": STORE_SCHEMA,
            "key_schema": KEY_SCHEMA,
            "counters": {name: 0 for name in _COUNTER_NAMES},
        }

    def _read_manifest(self) -> dict[str, Any] | None:
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
            if not isinstance(manifest, dict):
                raise ValueError("manifest is not a JSON object")
            return manifest
        except FileNotFoundError:
            return None
        except (ValueError, OSError) as exc:
            warnings.warn(
                f"result store manifest at {self.manifest_path} is "
                f"unreadable ({exc}); rewriting a fresh one",
                StoreWarning,
                stacklevel=3,
            )
            return None

    def _write_manifest(self, manifest: dict[str, Any]) -> None:
        tmp = self.manifest_path.with_name(f".manifest.{os.getpid()}.tmp")
        tmp.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.manifest_path)

    def flush_counters(self) -> None:
        """Fold this session's hit/miss counters into the manifest.

        Makes cache effectiveness observable across processes — a warm
        CLI run flushes on exit, and ``repro.cli store stats`` (a fresh
        process) reports the accumulated totals.
        """
        if self._disabled:
            return
        if not any(getattr(self, name) for name in _COUNTER_NAMES):
            return
        manifest = self._read_manifest() or self._fresh_manifest()
        counters = manifest.setdefault("counters", {})
        for name in _COUNTER_NAMES:
            counters[name] = int(counters.get(name, 0)) + getattr(self, name)
            setattr(self, name, 0)
        self._write_manifest(manifest)

    # -- entries -------------------------------------------------------

    def _entry_path(self, key: str) -> Path:
        if not _KEY_RE.match(key):
            raise ValueError(
                f"store keys are 64-char lowercase hex digests, got {key!r}"
            )
        return self.objects_dir / key[:2] / key

    def get(self, key: str) -> tuple[bool, Any]:
        """Look up one key: ``(True, value)`` on a verified hit.

        Returns ``(False, None)`` on a miss *or* on any integrity
        failure — a corrupt, truncated or version-skewed entry warns,
        is deleted (so the recomputed value can heal it), and is
        treated as a miss.
        """
        if self._disabled:
            self.misses += 1
            return False, None
        path = self._entry_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            self.misses += 1
            return False, None
        except OSError as exc:
            self._quarantine(path, f"unreadable ({exc})")
            return False, None
        reason = _validate_entry(blob)
        if reason is not None:
            self._quarantine(path, reason)
            return False, None
        try:
            value = pickle.loads(blob[len(ENTRY_MAGIC) + _DIGEST_BYTES :])
        except Exception as exc:  # noqa: BLE001 - any unpickle failure
            self._quarantine(path, f"payload failed to unpickle ({exc})")
            return False, None
        self.hits += 1
        return True, value

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` — introspection only.

        A pure read-path probe: no counters move and the payload is not
        validated, so a corrupt entry still answers ``True`` here and
        only degrades to a miss (with a warning) when :meth:`get`
        actually reads it.  The serving layer uses this to report cache
        coverage without perturbing hit/miss accounting.
        """
        if self._disabled:
            return False
        return self._entry_path(key).is_file()

    def _quarantine(self, path: Path, reason: str) -> None:
        """Warn about a bad entry, drop it, count it as corrupt+miss."""
        warnings.warn(
            f"result store entry {path.name[:12]}… is invalid "
            f"({reason}); recomputing this task",
            StoreWarning,
            stacklevel=4,
        )
        self.corrupt += 1
        self.misses += 1
        try:
            path.unlink()
        except OSError:
            pass

    def put(self, key: str, value: Any) -> None:
        """Store one value under its key, atomically."""
        if self._disabled:
            return
        path = self._entry_path(key)
        path.parent.mkdir(exist_ok=True)
        payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        blob = ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload
        tmp = path.parent / f".{key}.{os.getpid()}.tmp"
        try:
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass
        self.puts += 1

    # -- maintenance ---------------------------------------------------

    def _entry_files(self) -> list[Path]:
        return sorted(
            p
            for p in self.objects_dir.glob("??/*")
            if p.is_file() and _KEY_RE.match(p.name)
        )

    def stats(self) -> StoreStats:
        """Contents + lifetime counters (persisted and this session)."""
        entries = self._entry_files()
        manifest = (self._read_manifest() or {}) if not self._disabled else {}
        persisted = manifest.get("counters", {})
        return StoreStats(
            entries=len(entries),
            total_bytes=sum(p.stat().st_size for p in entries),
            **{
                name: int(persisted.get(name, 0)) + getattr(self, name)
                for name in _COUNTER_NAMES
            },
        )

    def verify(self) -> tuple[int, list[Path]]:
        """Checksum every entry; returns ``(n_ok, corrupt_paths)``."""
        ok = 0
        bad: list[Path] = []
        for path in self._entry_files():
            if _validate_entry(path.read_bytes()) is None:
                ok += 1
            else:
                bad.append(path)
        return ok, bad

    def gc(self) -> tuple[int, int]:
        """Drop corrupt entries and stale temp files.

        Returns ``(files_removed, bytes_reclaimed)``.
        """
        removed = 0
        reclaimed = 0
        _ok, bad = self.verify()
        stale_tmp = [p for p in self.objects_dir.glob("**/.*.tmp") if p.is_file()]
        stale_tmp += [p for p in self.root.glob(".manifest.*.tmp") if p.is_file()]
        for path in bad + stale_tmp:
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                continue
            removed += 1
            reclaimed += size
        return removed, reclaimed


def _validate_entry(blob: bytes) -> str | None:
    """Why a raw entry blob is invalid, or ``None`` when it verifies."""
    header = len(ENTRY_MAGIC) + _DIGEST_BYTES
    if len(blob) < header:
        return f"truncated header ({len(blob)} bytes)"
    if blob[: len(ENTRY_MAGIC)] != ENTRY_MAGIC:
        return "entry format/version mismatch (bad magic)"
    digest = blob[len(ENTRY_MAGIC) : header]
    if hashlib.sha256(blob[header:]).digest() != digest:
        return "checksum mismatch (corrupt or truncated payload)"
    return None


# ----------------------------------------------------------------------
# Store-aware execution helpers
# ----------------------------------------------------------------------


def cached_map(
    pool: Any,
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    store: ResultStore | None,
) -> list[Any]:
    """``pool.map(fn, items)`` with per-item memoization.

    Keys are :func:`task_key(fn, item) <task_key>`; hits are served
    from the store in the parent process, only misses are submitted
    through ``pool``, and fresh results are written back.  With
    ``store=None`` this is exactly ``pool.map(fn, items)``.
    """
    items = list(items)
    if store is None:
        return pool.map(fn, items)
    keys = [task_key(fn, item) for item in items]
    out: list[Any] = [None] * len(items)
    missing: list[int] = []
    for i, key in enumerate(keys):
        hit, value = store.get(key)
        if hit:
            out[i] = value
        else:
            missing.append(i)
    if missing:
        computed = pool.map(fn, [items[i] for i in missing])
        for i, value in zip(missing, computed):
            store.put(keys[i], value)
            out[i] = value
    return out


def cached_ensemble_map(
    pool: Any,
    ensemble_fn: Callable[[Any], list[Any]],
    tasks: Sequence[Any],
    store: ResultStore | None,
    key_fn: Callable[..., Any],
    rep_items: Sequence[Sequence[Any]],
    rebuild_tail: Callable[[int, int], Any],
) -> list[list[Any]]:
    """One-ensemble-per-point map with per-replication memoization.

    The vectorized-engine counterpart of :func:`cached_map`: each entry
    of ``tasks`` evaluates all replications of one sweep point in
    lockstep, but the store works at *replication* granularity so the
    cache is shared with the interpreted engine (same keys: ``key_fn``
    is the interpreted task evaluator and ``rep_items[i][r]`` its item
    for point ``i``, replication ``r``).

    For every point, the cached replication *prefix* is served from the
    store and ``rebuild_tail(point, first_missing)`` builds the smaller
    ensemble task covering only the remaining replications — the
    incremental top-up path.  Points that are fully cached submit
    nothing.
    """
    tasks = list(tasks)
    if store is None:
        return pool.map(ensemble_fn, tasks)
    rep_keys = [[task_key(key_fn, item) for item in items] for items in rep_items]
    if len(rep_keys) != len(tasks):
        raise ValueError(
            f"rep_items covers {len(rep_keys)} points, got {len(tasks)} tasks"
        )
    prefixes: list[list[Any]] = []
    submit: list[tuple[int, int]] = []  # (point, first missing replication)
    for i, keys in enumerate(rep_keys):
        values: list[Any] = []
        for key in keys:
            hit, value = store.get(key)
            if not hit:
                break
            values.append(value)
        prefixes.append(values)
        if len(values) < len(keys):
            submit.append((i, len(values)))
    tails = pool.map(ensemble_fn, [rebuild_tail(i, start) for i, start in submit])
    out = [list(p) for p in prefixes]
    for (i, start), tail in zip(submit, tails):
        expected = len(rep_keys[i]) - start
        if len(tail) != expected:
            raise ValueError(
                f"ensemble task for point {i} returned {len(tail)} "
                f"values, expected {expected}"
            )
        for offset, value in enumerate(tail):
            store.put(rep_keys[i][start + offset], value)
        out[i].extend(tail)
    return out
