"""Adaptive replication control: run each point until its CI is tight.

A fixed ``--replications`` count spends the same effort on every sweep
point — wasteful on low-variance points, under-powered on noisy ones.
This module replaces the fixed count with a *sequential, rounds-based
stopping rule*: evaluate every still-open point a batch of replications
at a time through the shared :class:`~repro.runtime.ParallelExecutor`,
recompute each point's across-replication
:func:`~repro.core.statistics.replication_interval` after the round,
and close a point once ``relative_half_width() <= ci_target`` (or it
hits ``max_replications``).  Points stop independently, so
heterogeneous sweeps finish in the time of their noisiest point's need,
not ``n_points × max_replications``.

Reproducibility contract
------------------------
Per-point seed plans are fixed *before* any work runs and always cover
the full ``max_replications``; the controller merely consumes a prefix.
:meth:`numpy.random.SeedSequence.spawn` hands out the same first ``k``
children regardless of how many siblings are eventually spawned, so the
replications an adaptive run executes are a **bit-identical prefix** of
the fixed ``max_replications`` run at the same seed — for every
``workers`` setting, chunking and start method.  Convergence decisions
are made in the parent from the gathered values only, so they cannot
depend on execution order either.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from ..core.statistics import replication_interval
from .executor import ParallelExecutor
from .store import ResultStore, task_key

__all__ = ["AdaptiveSettings", "AdaptivePointRun", "run_adaptive_rounds"]


@dataclass(frozen=True)
class AdaptiveSettings:
    """Stopping rule of a sequential replication controller.

    Parameters
    ----------
    ci_target:
        Target relative CI half-width: a point is converged once
        ``interval.relative_half_width() <= ci_target`` for every
        tracked metric.
    min_replications:
        Replications every point runs before the rule is first checked
        (at least 2 — a single replication has an infinite half-width).
    max_replications:
        Hard cap per point; a point reaching it closes unconverged.
    batch_size:
        Replications added to every open point per subsequent round
        (default: ``min_replications``).
    confidence:
        Confidence level of the stopping intervals.
    """

    ci_target: float
    min_replications: int = 2
    max_replications: int = 64
    batch_size: int | None = None
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.ci_target <= 0:
            raise ValueError(f"ci_target must be > 0, got {self.ci_target}")
        if self.min_replications < 2:
            raise ValueError(
                "min_replications must be >= 2 (one replication has an "
                f"infinite half-width), got {self.min_replications}"
            )
        if self.max_replications < self.min_replications:
            raise ValueError(
                f"max_replications {self.max_replications} must be >= "
                f"min_replications {self.min_replications}"
            )
        if self.batch_size is not None and self.batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        if not 0 < self.confidence < 1:
            raise ValueError(
                f"confidence must be in (0, 1), got {self.confidence}"
            )

    @property
    def round_size(self) -> int:
        """Replications added per round after the first."""
        return self.batch_size if self.batch_size is not None else self.min_replications


@dataclass
class AdaptivePointRun:
    """One point's outcome under the adaptive controller.

    ``values`` holds the raw evaluation results in replication order —
    by the seed-plan contract, a bit-identical prefix of the fixed
    ``max_replications`` run.
    """

    values: list[Any]
    converged: bool

    @property
    def replications(self) -> int:
        """Replications actually executed for this point."""
        return len(self.values)


def _metric_values(
    metrics: Callable[[Any], float | Sequence[float]], value: Any
) -> tuple[float, ...]:
    out = metrics(value)
    if isinstance(out, (tuple, list)):
        return tuple(float(v) for v in out)
    return (float(out),)


def run_adaptive_rounds(
    fn: Callable[[Any], Any],
    task_for: Callable[[int, int], Any],
    n_points: int,
    settings: AdaptiveSettings,
    metrics: Callable[[Any], float | Sequence[float]] = float,
    executor: ParallelExecutor | None = None,
    backend: Any | None = None,
    ensemble_fn: Callable[[Any], list[Any]] | None = None,
    ensemble_task_for: Callable[[int, int, int], Any] | None = None,
    store: ResultStore | None = None,
    exec_cfg: Any | None = None,
) -> list[AdaptivePointRun]:
    """Drive ``fn`` over ``(point, replication)`` tasks until CIs close.

    Parameters
    ----------
    fn:
        The task evaluator (module-level/picklable when the executor
        runs with ``workers > 1``).
    task_for:
        ``(point_index, replication_index) -> item`` — called in the
        parent, so it may close over local state; the returned items
        must be picklable for a multi-process executor.  It must be a
        pure function of its indices: the controller relies on task
        ``(i, r)`` being identical whenever it is requested, which is
        what makes the executed replications a prefix of the fixed run.
    n_points:
        Number of independent design points.
    settings:
        The stopping rule (:class:`AdaptiveSettings`).
    metrics:
        Maps one evaluation result to the float (or several floats)
        whose interval must tighten; a point converges only when
        *every* metric meets ``ci_target``.  Applied in the parent.
    executor:
        The :class:`ParallelExecutor` each round's batch is submitted
        through (default: serial).
    backend:
        Shorthand for ``executor=ParallelExecutor(backend=...)`` — an
        explicit :class:`~repro.runtime.backend.Backend` the rounds run
        on (e.g. a socket backend over remote workers).  Ignored when
        ``executor`` is given; pass the backend on the executor then.
    ensemble_fn / ensemble_task_for:
        The ``engine="vectorized"`` round shape: when both are given,
        each round submits **one task per open point** covering all of
        that round's new replications — ``ensemble_task_for(point,
        first_replication, count)`` builds the item and
        ``ensemble_fn(item)`` returns the ``count`` per-replication
        values in seed-plan order.  Chunking thus batches sweep points,
        not replications; the stopping rule, seed-plan prefix contract
        and returned values are unchanged (the vectorized engine is
        bit-identical per replication).
    store:
        Optional :class:`~repro.runtime.store.ResultStore`.  Each
        round's new replications are keyed by
        ``task_key(fn, task_for(i, r))`` — always the *interpreted*
        task shape, so both engines share entries.  Cached values are
        served without submitting work (for the ensemble shape, the
        cached prefix is served and one smaller task covers only the
        tail) and computed values are written back.  Raising
        ``max_replications`` on a warmed store therefore schedules
        only the delta replications.
    exec_cfg:
        An :class:`~repro.runtime.config.ExecutionConfig` (or resolved
        :class:`~repro.runtime.config.ResolvedExecution`) supplying the
        executor (``workers``/``backend``) and ``store`` in one object.
        Mutually exclusive with ``executor``, ``backend`` and
        ``store``.

    Returns
    -------
    list[AdaptivePointRun]
        One entry per point, in point order.
    """
    if exec_cfg is not None:
        if executor is not None or backend is not None or store is not None:
            raise TypeError(
                "pass execution settings either via exec_cfg or via "
                "executor/backend/store, not both"
            )
        from .config import ExecutionConfig, ResolvedExecution

        if isinstance(exec_cfg, ExecutionConfig):
            exec_cfg = exec_cfg.resolve()
        if not isinstance(exec_cfg, ResolvedExecution):
            raise TypeError(
                "exec_cfg must be an ExecutionConfig or "
                f"ResolvedExecution, got {type(exec_cfg).__name__}"
            )
        executor = exec_cfg.executor()
        store = exec_cfg.store
    if n_points < 0:
        raise ValueError(f"n_points must be >= 0, got {n_points}")
    if (ensemble_fn is None) != (ensemble_task_for is None):
        raise ValueError(
            "ensemble_fn and ensemble_task_for must be given together"
        )
    if executor is not None:
        pool = executor
    else:
        pool = ParallelExecutor(backend=backend)
    runs = [AdaptivePointRun(values=[], converged=False) for _ in range(n_points)]
    open_points = list(range(n_points))
    while open_points:
        tasks: list[Any] = []
        # (point, new replication count, cached prefix / per-rep slots, keys)
        spans: list[tuple[int, int, list[Any], list[str]]] = []
        for i in open_points:
            done = len(runs[i].values)
            want = settings.min_replications if done == 0 else settings.round_size
            n_new = min(want, settings.max_replications - done)
            keys = (
                [task_key(fn, task_for(i, done + r)) for r in range(n_new)]
                if store is not None
                else []
            )
            if ensemble_task_for is not None:
                # Serve the cached *prefix* only: the ensemble task shape
                # covers one contiguous replication range per point.
                cached: list[Any] = []
                for key in keys:
                    hit, value = store.get(key)  # type: ignore[union-attr]
                    if not hit:
                        break
                    cached.append(value)
                if len(cached) < n_new:
                    tasks.append(
                        ensemble_task_for(i, done + len(cached), n_new - len(cached))
                    )
                spans.append((i, n_new, cached, keys))
            else:
                slots: list[Any] = []
                for r in range(n_new):
                    if store is not None:
                        hit, value = store.get(keys[r])
                        if hit:
                            slots.append((True, value))
                            continue
                    slots.append((False, None))
                    tasks.append(task_for(i, done + r))
                spans.append((i, n_new, slots, keys))
        if ensemble_fn is not None:
            batches = iter(pool.map(ensemble_fn, tasks))
            for i, n_new, cached, keys in spans:
                n_tail = n_new - len(cached)
                tail = list(next(batches)) if n_tail else []
                if len(tail) != n_tail:
                    raise ValueError(
                        f"ensemble_fn returned {len(tail)} values for "
                        f"point {i}, expected {n_tail}"
                    )
                if store is not None:
                    for offset, value in enumerate(tail):
                        store.put(keys[len(cached) + offset], value)
                runs[i].values.extend(cached)
                runs[i].values.extend(tail)
        else:
            flat = iter(pool.map(fn, tasks))
            for i, n_new, slots, keys in spans:
                for r, (hit, value) in enumerate(slots):
                    if not hit:
                        value = next(flat)
                        if store is not None:
                            store.put(keys[r], value)
                    runs[i].values.append(value)
        still_open: list[int] = []
        for i in open_points:
            run = runs[i]
            samples = [_metric_values(metrics, v) for v in run.values]
            run.converged = all(
                replication_interval(
                    [s[m] for s in samples], settings.confidence
                ).relative_half_width()
                <= settings.ci_target
                for m in range(len(samples[0]))
            )
            if not run.converged and run.replications < settings.max_replications:
                still_open.append(i)
        open_points = still_open
    return runs
