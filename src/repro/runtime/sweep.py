"""``map_sweep`` — the public parallel grid/replication API.

A sweep is a grid of design points, each evaluated ``replications``
times with independent seeds.  The seed plan is a two-level
:meth:`~numpy.random.SeedSequence.spawn` tree (root → point →
replication) computed up-front, so the result is a pure function of
``(seed, grid, replications)`` — independent of ``workers``, chunking
and the multiprocessing start method.

Example
-------
>>> from repro.runtime import map_sweep
>>> def noisy_square(x, seed):
...     import numpy as np
...     return x * x + np.random.default_rng(seed).normal(0.0, 0.1)
>>> points = map_sweep(noisy_square, [1.0, 2.0], seed=7, replications=8)
>>> points[0].value.interval().contains(1.0)
True

With ``workers > 1`` the evaluate callable must be defined at module
level (picklable); with the default ``workers=1`` any callable works.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

from ..core.statistics import ConfidenceInterval, replication_interval
from ..experiments.sweep import SweepPoint
from .adaptive import AdaptiveSettings, run_adaptive_rounds
from .executor import ParallelExecutor
from .seeding import sequence_to_seed
from .store import ResultStore, cached_ensemble_map, cached_map

__all__ = ["ReplicatedValue", "map_sweep"]

T = TypeVar("T")


@dataclass(frozen=True)
class ReplicatedValue:
    """Per-replication values of one sweep point plus their seeds.

    ``converged`` is ``None`` for fixed-count sweeps; under adaptive
    replication control (``ci_target=``) it records whether the point
    met the relative half-width target before ``max_replications``.
    """

    values: tuple[Any, ...]
    seeds: tuple[int, ...]
    converged: bool | None = None

    @property
    def replications(self) -> int:
        """Replications backing this point."""
        return len(self.values)

    def mean(self) -> float:
        """Across-replication mean (values must be numeric)."""
        return float(np.mean([float(v) for v in self.values]))

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Student-t confidence interval across replications."""
        return replication_interval(
            [float(v) for v in self.values], confidence
        )


def _evaluate_task(
    task: tuple[Callable[[float, int], Any], float, int],
) -> Any:
    evaluate, threshold, seed = task
    return evaluate(threshold, seed)


def _evaluate_ensemble_task(
    task: tuple[Callable[[float, tuple[int, ...]], list[Any]], float, tuple[int, ...]],
) -> list[Any]:
    """One vectorized sweep-point task: all its seeds in one call."""
    evaluate, threshold, seeds = task
    values = evaluate(threshold, seeds)
    if len(values) != len(seeds):
        raise ValueError(
            f"ensemble_evaluate returned {len(values)} values for "
            f"{len(seeds)} seeds at threshold {threshold!r}"
        )
    return list(values)


_ENGINES = ("interpreted", "vectorized")


def map_sweep(
    evaluate: Callable[[float, int], T],
    thresholds: Sequence[float],
    *,
    workers: int = 1,
    replications: int = 1,
    seed: int | None = None,
    chunk_size: int | None = None,
    mp_context: str | None = None,
    backend: Any | None = None,
    ci_target: float | None = None,
    max_replications: int = 64,
    min_replications: int = 2,
    confidence: float = 0.95,
    engine: str = "interpreted",
    ensemble_evaluate: Callable[[float, tuple[int, ...]], list[T]] | None = None,
    store: ResultStore | None = None,
    exec_cfg: Any | None = None,
) -> list[SweepPoint]:
    """Evaluate ``evaluate(threshold, seed)`` over a grid, in parallel.

    Parameters
    ----------
    evaluate:
        ``(threshold, seed) -> value``.  Must be module-level
        (picklable) when ``workers > 1``.
    thresholds:
        The design-point grid; result order matches it.
    workers / chunk_size / mp_context:
        Execution knobs (see :class:`~repro.runtime.ParallelExecutor`);
        they never affect the returned values.
    backend:
        Explicit :class:`~repro.runtime.backend.Backend` the tasks are
        submitted through (e.g. a
        :class:`~repro.runtime.remote.SocketBackend` over remote
        workers); ``None`` keeps the ``workers``-driven default.  Like
        every execution knob, it never affects the returned values.
    replications:
        Independent evaluations per point.  With ``replications == 1``
        each :class:`SweepPoint.value` is the bare evaluate result;
        otherwise it is a :class:`ReplicatedValue`.
    seed:
        Root of the seed spawn tree.  ``None`` draws fresh OS entropy
        (still collision-free, not reproducible across calls).
    ci_target:
        When set, switches to *adaptive replication control*
        (:mod:`repro.runtime.adaptive`): every point runs rounds of
        replications until its across-replication interval satisfies
        ``relative_half_width() <= ci_target`` or ``max_replications``
        is reached.  ``replications`` then acts as a floor on
        ``min_replications``, values must be float-convertible, and
        every :class:`SweepPoint.value` is a :class:`ReplicatedValue`
        whose ``converged`` flag and length report the outcome.  Seeds
        still come from the same two-level spawn tree, always sized at
        ``max_replications`` per point, so an adaptive run is a
        bit-identical prefix of ``map_sweep(...,
        replications=max_replications)`` at the same seed.
    max_replications / min_replications / confidence:
        Adaptive stopping-rule knobs; ignored unless ``ci_target`` is
        set.
    engine:
        ``"interpreted"`` (default) evaluates one ``(point,
        replication)`` task at a time through ``evaluate``;
        ``"vectorized"`` submits **one task per sweep point** that runs
        all the point's replications in lockstep through
        ``ensemble_evaluate`` (chunking then batches sweep points, not
        replications).  The seed plan is identical either way, so for a
        bit-identical ``ensemble_evaluate`` (e.g. one built on
        :func:`repro.core.fast.run_ensemble`) the returned points match
        the interpreted engine exactly.
    ensemble_evaluate:
        ``(threshold, seeds) -> [value, ...]`` in seed order; required
        for (and only used by) ``engine="vectorized"``.  Must be
        module-level (picklable) when ``workers > 1``.
    store:
        Optional :class:`~repro.runtime.store.ResultStore` memoizing
        per-replication values.  Keys are derived from the
        *interpreted* per-replication task ``(evaluate, threshold,
        seed)`` regardless of ``engine`` — the vectorized engine is
        bit-identical per replication, so both engines (and every
        backend; the store is consulted in the parent only) share one
        cache.  Execution knobs never enter the key.
    exec_cfg:
        An :class:`~repro.runtime.config.ExecutionConfig` (or resolved
        :class:`~repro.runtime.config.ResolvedExecution`) supplying
        ``workers`` / ``replications`` / ``backend`` / ``engine`` /
        ``store`` and the adaptive knobs in one object.  Mutually
        exclusive with passing those keywords individually.

    Returns
    -------
    list[SweepPoint]
        One point per threshold, in grid order.
    """
    if exec_cfg is not None:
        from .config import resolve_execution

        rx = resolve_execution(
            exec_cfg,
            workers=workers,
            replications=replications,
            backend=backend,
            ci_target=ci_target,
            max_replications=max_replications,
            min_replications=min_replications,
            engine=engine,
            store=store,
        )
        workers, replications = rx.workers, rx.replications
        backend, engine, store = rx.backend, rx.engine, rx.store
        ci_target = rx.ci_target
        max_replications = rx.max_replications
        min_replications = rx.min_replications
    if replications < 1:
        raise ValueError(f"replications must be >= 1, got {replications}")
    if engine not in _ENGINES:
        raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
    if engine == "vectorized" and ensemble_evaluate is None:
        raise ValueError("engine='vectorized' requires ensemble_evaluate")
    grid = [float(t) for t in thresholds]
    if ci_target is not None:
        return _adaptive_sweep(
            evaluate,
            grid,
            seed=seed,
            settings=AdaptiveSettings(
                ci_target=ci_target,
                min_replications=max(min_replications, replications),
                max_replications=max_replications,
                confidence=confidence,
            ),
            executor=ParallelExecutor(
                workers=workers,
                chunk_size=chunk_size,
                mp_context=mp_context,
                backend=backend,
            ),
            engine=engine,
            ensemble_evaluate=ensemble_evaluate,
            store=store,
        )
    point_seqs = np.random.SeedSequence(seed).spawn(len(grid))
    seeds = [
        [sequence_to_seed(s) for s in ps.spawn(replications)]
        for ps in point_seqs
    ]
    pool = ParallelExecutor(
        workers=workers,
        chunk_size=chunk_size,
        mp_context=mp_context,
        backend=backend,
    )
    if engine == "vectorized":
        point_tasks = [
            (ensemble_evaluate, t, tuple(seeds[i])) for i, t in enumerate(grid)
        ]
        per_point = cached_ensemble_map(
            pool,
            _evaluate_ensemble_task,
            point_tasks,
            store,
            key_fn=_evaluate_task,
            rep_items=[
                [(evaluate, t, s) for s in seeds[i]] for i, t in enumerate(grid)
            ],
            rebuild_tail=lambda i, start: (
                ensemble_evaluate,
                grid[i],
                tuple(seeds[i][start:]),
            ),
        )
        flat = [v for values in per_point for v in values]
    else:
        tasks = [
            (evaluate, t, seeds[i][r])
            for i, t in enumerate(grid)
            for r in range(replications)
        ]
        flat = cached_map(pool, _evaluate_task, tasks, store)
    out: list[SweepPoint] = []
    for i, t in enumerate(grid):
        reps = flat[i * replications : (i + 1) * replications]
        if replications == 1:
            out.append(SweepPoint(t, reps[0]))
        else:
            out.append(
                SweepPoint(
                    t,
                    ReplicatedValue(tuple(reps), tuple(seeds[i])),
                )
            )
    return out


def _adaptive_sweep(
    evaluate: Callable[[float, int], T],
    grid: list[float],
    seed: int | None,
    settings: AdaptiveSettings,
    executor: ParallelExecutor,
    engine: str = "interpreted",
    ensemble_evaluate: Callable[[float, tuple[int, ...]], list[T]] | None = None,
    store: ResultStore | None = None,
) -> list[SweepPoint]:
    """The ``ci_target`` path of :func:`map_sweep`.

    The seed plan is the *same* two-level spawn tree as the fixed-count
    path, always spanning ``max_replications`` per point; the
    controller consumes a prefix of it, which is what makes a converged
    run a reproducible prefix of the fixed run.  Under
    ``engine="vectorized"`` each round runs one lockstep ensemble per
    open point over that round's slice of the plan — same seeds, same
    prefix contract.
    """
    point_seqs = np.random.SeedSequence(seed).spawn(len(grid))
    seeds = [
        [sequence_to_seed(s) for s in ps.spawn(settings.max_replications)]
        for ps in point_seqs
    ]
    ensemble_kwargs: dict[str, Any] = {}
    if engine == "vectorized":
        ensemble_kwargs = {
            "ensemble_fn": _evaluate_ensemble_task,
            "ensemble_task_for": lambda i, start, n: (
                ensemble_evaluate,
                grid[i],
                tuple(seeds[i][start : start + n]),
            ),
        }
    runs = run_adaptive_rounds(
        _evaluate_task,
        lambda i, r: (evaluate, grid[i], seeds[i][r]),
        len(grid),
        settings,
        executor=executor,
        store=store,
        **ensemble_kwargs,
    )
    return [
        SweepPoint(
            t,
            ReplicatedValue(
                tuple(run.values),
                tuple(seeds[i][: run.replications]),
                converged=run.converged,
            ),
        )
        for i, (t, run) in enumerate(zip(grid, runs))
    ]
