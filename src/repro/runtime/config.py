"""One execution-configuration object for every driver and the CLI.

Every capability the runtime has grown — worker pools (PR 1), shards
(PR 2), adaptive replication (PR 3), pluggable backends (PR 4), the
vectorized engine (PR 6), the result store (PR 7) — added a keyword
that had to be threaded through all five experiment drivers and every
CLI subcommand.  :class:`ExecutionConfig` collapses that plumbing into
a single frozen, serialisable value:

* **declarative** — plain data (strings, ints, paths), so it can live
  in a scenario file, an environment, or a test parametrisation;
* **validated** — every field is checked on construction with an error
  that names the field, so schema fuzzing gets precise rejections;
* **resolvable** — :meth:`ExecutionConfig.resolve` builds the live
  :class:`~repro.runtime.backend.Backend` /
  :class:`~repro.runtime.store.ResultStore` objects exactly once,
  yielding a :class:`ResolvedExecution` the drivers consume.

Execution settings never change reported numbers (the repo's standing
bit-identity invariant), so an ``ExecutionConfig`` is *how* to run,
never *what* to run — it deliberately carries no model parameters and
contributes nothing to :func:`~repro.runtime.store.task_key`.

Drivers accept ``exec_cfg=`` (an :class:`ExecutionConfig` or an
already-resolved :class:`ResolvedExecution`); the historical loose
keywords (``workers=``, ``backend=``, ``store=``, ...) remain as a
thin deprecation shim via :func:`resolve_execution` for one release.
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from dataclasses import dataclass, fields, replace
from typing import Any

from .backend import BACKEND_NAMES, Backend, make_backend
from .executor import ParallelExecutor
from .sharding import SEED_MODES, SHARD_STRATEGIES
from .store import ResultStore

__all__ = [
    "ENGINE_NAMES",
    "ExecutionConfig",
    "ResolvedExecution",
    "resolve_execution",
]

#: Simulation engines understood by every driver (see repro.core.fast).
ENGINE_NAMES = ("interpreted", "vectorized")


def _check_positive_int(name: str, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name} must be an integer, got {value!r}")
    if value < 1:
        raise ValueError(f"{name} must be >= 1, got {value}")


def _check_choice(name: str, value: Any, choices: tuple[str, ...]) -> None:
    if value not in choices:
        raise ValueError(f"{name} must be one of {choices}, got {value!r}")


@dataclass(frozen=True)
class ExecutionConfig:
    """*How* to execute a run: workers, backend, engine, store, adaptive.

    All fields are plain data with the historical defaults, so
    ``ExecutionConfig()`` reproduces every driver's legacy behaviour
    bit for bit.  Instances are frozen (safe to share and to use as
    defaults) and JSON-serialisable via :meth:`to_dict` /
    :meth:`from_dict`.
    """

    #: Process-pool size for grid points / replications / shard tasks.
    workers: int = 1
    #: Independent replications per stochastic point (the adaptive
    #: floor when ``ci_target`` is set).
    replications: int = 1
    #: Backend spec (one of :data:`~repro.runtime.backend.BACKEND_NAMES`)
    #: or ``None`` for the historical default: processes when
    #: ``workers > 1``, else in-process.
    backend: str | None = None
    #: ``host:port`` worker addresses for ``backend="socket"``.
    connect: tuple[str, ...] = ()
    #: Simulation engine, one of :data:`ENGINE_NAMES`.
    engine: str = "interpreted"
    #: Result-store directory (``None`` disables memoization).
    store_dir: str | None = None
    #: Per-item seed derivation for sharded node sets (see
    #: :func:`~repro.runtime.sharding.shard_node_seeds`).
    seed_mode: str = "legacy"
    #: Worker-group shards over a network's node set.
    shards: int = 1
    #: Node partition strategy for ``shards > 1``.
    shard_strategy: str = "contiguous"
    #: Adaptive replication: target relative CI half-width (``None``
    #: keeps the fixed ``replications`` count).
    ci_target: float | None = None
    #: Per-point replication cap under ``ci_target``.
    max_replications: int = 64
    #: Per-point replication floor under ``ci_target``.
    min_replications: int = 2

    def __post_init__(self) -> None:
        if isinstance(self.connect, (list, str)):
            # Tolerate list input (JSON has no tuples); reject a bare
            # string, which would silently iterate per character.
            if isinstance(self.connect, str):
                raise ValueError(
                    "connect must be a sequence of 'host:port' strings, "
                    f"got the bare string {self.connect!r}"
                )
            object.__setattr__(self, "connect", tuple(self.connect))
        for name in (
            "workers",
            "replications",
            "shards",
            "max_replications",
            "min_replications",
        ):
            _check_positive_int(name, getattr(self, name))
        _check_choice("engine", self.engine, ENGINE_NAMES)
        if self.backend is not None:
            _check_choice("backend", self.backend, BACKEND_NAMES)
        _check_choice("seed_mode", self.seed_mode, SEED_MODES)
        _check_choice("shard_strategy", self.shard_strategy, SHARD_STRATEGIES)
        if not all(isinstance(a, str) for a in self.connect):
            raise ValueError(
                f"connect entries must be 'host:port' strings, "
                f"got {self.connect!r}"
            )
        if self.connect and self.backend != "socket":
            raise ValueError(
                "connect only applies with backend='socket', "
                f"got backend={self.backend!r}"
            )
        if self.backend == "socket" and not self.connect:
            raise ValueError(
                "backend='socket' requires at least one connect "
                "'host:port' address"
            )
        if self.store_dir is not None and not isinstance(
            self.store_dir, (str, os.PathLike)
        ):
            raise ValueError(
                f"store_dir must be a path or None, got {self.store_dir!r}"
            )
        if self.ci_target is not None:
            if isinstance(self.ci_target, bool) or not isinstance(
                self.ci_target, (int, float)
            ):
                raise ValueError(
                    f"ci_target must be a number or None, got {self.ci_target!r}"
                )
            if self.ci_target <= 0:
                raise ValueError(
                    f"ci_target must be > 0, got {self.ci_target}"
                )
            if self.replications > self.max_replications:
                raise ValueError(
                    f"replications {self.replications} is the per-point "
                    f"floor under ci_target and must be <= "
                    f"max_replications {self.max_replications}"
                )

    @classmethod
    def from_env(
        cls, environ: Mapping[str, str] | None = None, **overrides: Any
    ) -> "ExecutionConfig":
        """Build a config from the environment plus explicit overrides.

        Recognised variables: ``REPRO_STORE`` (store directory, the
        historical CLI variable), ``REPRO_WORKERS`` (pool size) and
        ``REPRO_ENGINE``.  Keyword overrides win over the environment.
        """
        env = os.environ if environ is None else environ
        values: dict[str, Any] = {}
        if env.get("REPRO_STORE"):
            values["store_dir"] = env["REPRO_STORE"]
        if env.get("REPRO_WORKERS"):
            try:
                values["workers"] = int(env["REPRO_WORKERS"])
            except ValueError:
                raise ValueError(
                    f"$REPRO_WORKERS must be an integer, "
                    f"got {env['REPRO_WORKERS']!r}"
                ) from None
        if env.get("REPRO_ENGINE"):
            values["engine"] = env["REPRO_ENGINE"]
        values.update(overrides)
        return cls(**values)

    def to_dict(self) -> dict[str, Any]:
        """Plain JSON-serialisable mapping of every field."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            out[f.name] = list(value) if f.name == "connect" else value
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExecutionConfig":
        """Inverse of :meth:`to_dict`; unknown keys are an error.

        Every rejection names the offending key (either here or from
        ``__post_init__``'s per-field checks), which is what the
        scenario-schema fuzzer asserts on.
        """
        if not isinstance(data, Mapping):
            raise ValueError(
                f"execution must be a mapping of settings, got {data!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown execution key {unknown[0]!r} "
                f"(known keys: {', '.join(sorted(known))})"
            )
        return cls(**dict(data))

    def with_overrides(self, **changes: Any) -> "ExecutionConfig":
        """A copy with the given fields replaced (re-validated)."""
        return replace(self, **changes)

    def resolve(self, *, keep_alive: bool = False) -> "ResolvedExecution":
        """Build the live backend/store once; return the driver view.

        ``keep_alive=True`` builds backends meant to outlive a single
        run (a persistent process pool) — what a long-lived owner like
        :class:`repro.serving.SweepService` wants, resolving once and
        reusing the same backend and store across every request.  Call
        ``backend.close()`` when done.  Reuse never changes results.
        """
        backend: Backend | None = None
        if self.backend is not None:
            backend = make_backend(
                self.backend,
                workers=self.workers,
                addresses=list(self.connect) or None,
                keep_alive=keep_alive,
            )
        store = ResultStore(self.store_dir) if self.store_dir else None
        return ResolvedExecution(
            workers=self.workers,
            replications=self.replications,
            engine=self.engine,
            seed_mode=self.seed_mode,
            shards=self.shards,
            shard_strategy=self.shard_strategy,
            ci_target=self.ci_target,
            max_replications=self.max_replications,
            min_replications=self.min_replications,
            backend=backend,
            store=store,
        )


@dataclass
class ResolvedExecution:
    """An :class:`ExecutionConfig` with its live objects constructed.

    This is what drivers consume: the scalar knobs plus an instantiated
    :class:`~repro.runtime.backend.Backend` and
    :class:`~repro.runtime.store.ResultStore` (both optional).  Resolve
    once per run so store hit/miss counters accumulate across every
    driver call of that run.
    """

    workers: int = 1
    replications: int = 1
    engine: str = "interpreted"
    seed_mode: str = "legacy"
    shards: int = 1
    shard_strategy: str = "contiguous"
    ci_target: float | None = None
    max_replications: int = 64
    min_replications: int = 2
    backend: Backend | None = None
    store: ResultStore | None = None

    def executor(
        self,
        chunk_size: int | None = None,
        mp_context: str | None = None,
    ) -> ParallelExecutor:
        """A :class:`ParallelExecutor` over this config's placement."""
        return ParallelExecutor(
            workers=self.workers,
            chunk_size=chunk_size,
            mp_context=mp_context,
            backend=self.backend,
        )


#: The historical loose-keyword bundle and its defaults — the shim
#: contract :func:`resolve_execution` keeps alive for one release.
_LEGACY_DEFAULTS: dict[str, Any] = {
    "workers": 1,
    "replications": 1,
    "ci_target": None,
    "max_replications": 64,
    "min_replications": 2,
    "backend": None,
    "engine": "interpreted",
    "store": None,
    "shards": 1,
    "shard_strategy": "contiguous",
    "seed_mode": "legacy",
}


def resolve_execution(
    exec_cfg: "ExecutionConfig | ResolvedExecution | None" = None,
    **legacy: Any,
) -> ResolvedExecution:
    """Merge the ``exec_cfg`` seam with the legacy keyword bundle.

    Drivers call this with their historical keywords passed through
    verbatim: with ``exec_cfg=None`` the keywords behave exactly as
    before (the deprecation-shim path); with an ``exec_cfg`` given, any
    legacy keyword still at its default is ignored and any *non*-default
    one is a :class:`TypeError` — mixing the two styles silently would
    make it ambiguous which setting wins.
    """
    unknown = sorted(set(legacy) - set(_LEGACY_DEFAULTS))
    if unknown:
        raise TypeError(f"unknown execution keyword {unknown[0]!r}")
    if exec_cfg is None:
        merged = dict(_LEGACY_DEFAULTS)
        merged.update(legacy)
        backend = merged.pop("backend")
        store = merged.pop("store")
        return ResolvedExecution(backend=backend, store=store, **merged)
    overridden = sorted(
        name
        for name, value in legacy.items()
        if value != _LEGACY_DEFAULTS[name]
    )
    if overridden:
        raise TypeError(
            "pass execution settings either via exec_cfg or via the "
            f"legacy keywords, not both (got exec_cfg plus {overridden})"
        )
    if isinstance(exec_cfg, ResolvedExecution):
        return exec_cfg
    if isinstance(exec_cfg, ExecutionConfig):
        return exec_cfg.resolve()
    raise TypeError(
        "exec_cfg must be an ExecutionConfig or ResolvedExecution, "
        f"got {type(exec_cfg).__name__}"
    )
