"""Energy accounting: turning state-time ledgers into Joules.

Implements the paper's Eq. (7) (CPU) and Eq. (8) (simple node), plus a
multi-component account for the full node (CPU + radio) whose
per-component, per-state breakdown feeds the Fig. 14/15 stacked series.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field

from .power import PowerStateTable

__all__ = ["EnergyAccount", "ComponentEnergy", "NodeEnergyAccount"]


@dataclass
class EnergyAccount:
    """Single-component energy ledger.

    Parameters
    ----------
    table:
        The component's power-state table.
    dwell_s:
        State → seconds.  May be filled incrementally with :meth:`credit`.
    """

    table: PowerStateTable
    dwell_s: dict[str, float] = field(default_factory=dict)

    def credit(self, state: str, seconds: float) -> None:
        """Add ``seconds`` of dwell in ``state``."""
        if seconds < 0:
            raise ValueError(f"seconds must be >= 0, got {seconds}")
        if not self.table.has_state(state):
            raise KeyError(
                f"state {state!r} not in power table {self.table.name!r}"
            )
        self.dwell_s[state] = self.dwell_s.get(state, 0.0) + seconds

    def credit_all(self, dwell: Mapping[str, float]) -> None:
        """Merge a dwell dict."""
        for state, seconds in dwell.items():
            self.credit(state, seconds)

    # ------------------------------------------------------------------
    def total_time(self) -> float:
        """Total credited seconds."""
        return sum(self.dwell_s.values())

    def energy_j(self) -> float:
        """Total energy in Joules (Eq. 7 with measured dwell times)."""
        return self.table.energy_from_dwell_j(self.dwell_s)

    def energy_by_state_j(self) -> dict[str, float]:
        """Energy per state in Joules."""
        return {
            state: self.table.rate_mw(state) * t / 1000.0
            for state, t in self.dwell_s.items()
        }

    def mean_power_mw(self) -> float:
        """Average power over the credited time."""
        t = self.total_time()
        return (self.energy_j() * 1000.0 / t) if t > 0 else 0.0

    def fractions(self) -> dict[str, float]:
        """State-time fractions."""
        t = self.total_time()
        if t <= 0:
            return {}
        return {state: s / t for state, s in self.dwell_s.items()}


@dataclass(frozen=True)
class ComponentEnergy:
    """Immutable per-component result row."""

    component: str
    energy_j: float
    energy_by_state_j: dict[str, float]
    dwell_s: dict[str, float]


class NodeEnergyAccount:
    """Multi-component account (CPU + radio for the Figs. 12–15 node).

    Each component has its own power table and dwell ledger; totals and
    per-state breakdowns aggregate across components.
    """

    def __init__(self) -> None:
        self._accounts: dict[str, EnergyAccount] = {}

    def add_component(self, name: str, table: PowerStateTable) -> EnergyAccount:
        """Register a component; returns its (mutable) account."""
        if name in self._accounts:
            raise ValueError(f"component {name!r} already registered")
        account = EnergyAccount(table)
        self._accounts[name] = account
        return account

    def account(self, name: str) -> EnergyAccount:
        """The account of component ``name``."""
        return self._accounts[name]

    @property
    def components(self) -> tuple[str, ...]:
        """Registered component names."""
        return tuple(self._accounts)

    def total_energy_j(self) -> float:
        """Node-level total energy in Joules."""
        return sum(acc.energy_j() for acc in self._accounts.values())

    def component_results(self) -> list[ComponentEnergy]:
        """Immutable per-component rows."""
        return [
            ComponentEnergy(
                component=name,
                energy_j=acc.energy_j(),
                energy_by_state_j=acc.energy_by_state_j(),
                dwell_s=dict(acc.dwell_s),
            )
            for name, acc in self._accounts.items()
        ]

    def breakdown_j(self) -> dict[str, dict[str, float]]:
        """``{component: {state: Joules}}`` nested breakdown."""
        return {
            name: acc.energy_by_state_j()
            for name, acc in self._accounts.items()
        }
