"""The Fig. 14/15 energy-component breakdown.

Figures 14 and 15 stack eight energy series per
``Power_Down_Threshold`` point:

1. Radio Wake Up Transitional Energy
2. CPU Wake Up Transitional Energy
3. CPU Active Energy
4. CPU Idle Energy
5. CPU Sleep Energy
6. Radio Active Energy
7. Radio Idle Energy
8. Radio Sleep Energy

This module fixes that category vocabulary, maps (component, state)
pairs onto it, and renders sweep results as the stacked rows the
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BREAKDOWN_CATEGORIES", "EnergyBreakdown", "categorize"]


#: Canonical category order, top-of-stack first (matches the legends).
BREAKDOWN_CATEGORIES: tuple[str, ...] = (
    "radio_wakeup",
    "cpu_wakeup",
    "cpu_active",
    "cpu_idle",
    "cpu_sleep",
    "radio_active",
    "radio_idle",
    "radio_sleep",
)

#: Human-readable labels exactly as the figure legends print them.
CATEGORY_LABELS: dict[str, str] = {
    "radio_wakeup": "Radio Wake Up Transitional Energy",
    "cpu_wakeup": "CPU Wake Up Transitional Energy",
    "cpu_active": "CPU Active Energy",
    "cpu_idle": "CPU Idle Energy",
    "cpu_sleep": "CPU Sleep Energy",
    "radio_active": "Radio Active Energy",
    "radio_idle": "Radio Idle Energy",
    "radio_sleep": "Radio Sleep Energy",
}

_STATE_TO_SUFFIX = {
    "powerup": "wakeup",
    "active": "active",
    "idle": "idle",
    "standby": "sleep",
}


def categorize(component: str, state: str) -> str:
    """Map a (component, power-state) pair to its figure category.

    ``component`` is ``"cpu"`` or ``"radio"``; ``state`` is one of the
    Table III states (``standby``/``idle``/``powerup``/``active``).
    """
    comp = component.lower()
    if comp not in ("cpu", "radio"):
        raise ValueError(f"unknown component {component!r}")
    suffix = _STATE_TO_SUFFIX.get(state.lower())
    if suffix is None:
        raise ValueError(f"unknown power state {state!r}")
    return f"{comp}_{suffix}"


@dataclass
class EnergyBreakdown:
    """Energy (J) per figure category for one sweep point."""

    energy_j: dict[str, float]

    def __post_init__(self) -> None:
        unknown = set(self.energy_j) - set(BREAKDOWN_CATEGORIES)
        if unknown:
            raise ValueError(f"unknown categories: {sorted(unknown)}")
        for cat in BREAKDOWN_CATEGORIES:
            self.energy_j.setdefault(cat, 0.0)

    @classmethod
    def from_component_states(
        cls, nested: dict[str, dict[str, float]]
    ) -> "EnergyBreakdown":
        """Build from ``{component: {state: Joules}}``."""
        out: dict[str, float] = {}
        for component, per_state in nested.items():
            for state, joules in per_state.items():
                cat = categorize(component, state)
                out[cat] = out.get(cat, 0.0) + joules
        return cls(out)

    def total_j(self) -> float:
        """Total node energy across categories."""
        return sum(self.energy_j.values())

    def get(self, category: str) -> float:
        """Energy of one category (KeyError on typos)."""
        return self.energy_j[category]

    def transitional_j(self) -> float:
        """Wake-up (transitional) energy: CPU + radio."""
        return self.energy_j["cpu_wakeup"] + self.energy_j["radio_wakeup"]

    def cpu_j(self) -> float:
        """All CPU categories."""
        return sum(
            v for k, v in self.energy_j.items() if k.startswith("cpu_")
        )

    def radio_j(self) -> float:
        """All radio categories."""
        return sum(
            v for k, v in self.energy_j.items() if k.startswith("radio_")
        )

    def as_row(self) -> tuple[float, ...]:
        """Values in canonical category order (for table rendering)."""
        return tuple(self.energy_j[c] for c in BREAKDOWN_CATEGORIES)

    def __str__(self) -> str:
        parts = ", ".join(
            f"{c}={self.energy_j[c]:.4g}J" for c in BREAKDOWN_CATEGORIES
        )
        return f"EnergyBreakdown(total={self.total_j():.4g}J; {parts})"
