"""Power-state tables: the paper's Table III and Table VII verbatim.

Two parameter sets drive every experiment:

* **Table III** — PXA271 CPU and CC2420 radio power rates (mW), taken
  by the paper from Jung et al. [12]; used by the Section IV CPU
  comparison and the Section VI/VII node models.
* **Table VII** — the authors' own measured IMote2 state powers (mW)
  for the Section V validation (note the counter-intuitive fact the
  paper highlights: transmission draws *less* than idle because the
  idle radio is actively listening).

:class:`PowerStateTable` is the shared abstraction: named states with
power rates in mW, unit conversion helpers, and energy evaluation given
either dwell times or state probabilities + duration (Eqs. 6–8).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

__all__ = [
    "PowerStateTable",
    "PXA271_CPU_POWER_MW",
    "CC2420_RADIO_POWER_MW",
    "IMOTE2_MEASURED_POWER_MW",
    "cpu_power_table",
    "radio_power_table",
    "imote2_power_table",
]


#: Table III, CPU rows (mW): Intel PXA271 processor.
PXA271_CPU_POWER_MW: dict[str, float] = {
    "standby": 17.0,
    "idle": 88.0,
    "powerup": 192.976,
    "active": 193.0,
}

#: Table III, radio rows (mW): CC2420-class radio.
CC2420_RADIO_POWER_MW: dict[str, float] = {
    "standby": 1.44e-4,
    "idle": 0.712,
    "powerup": 0.034175,
    "active": 78.0,
}

#: Table VII (mW): measured IMote2 state powers.
IMOTE2_MEASURED_POWER_MW: dict[str, float] = {
    "wait": 1.216,          # paper calls this state Idle
    "receiving": 1.213,
    "computation": 1.253,
    "transmitting": 1.028,
}


@dataclass(frozen=True)
class PowerStateTable:
    """Named power states with rates in milliwatts.

    Parameters
    ----------
    name:
        Table identifier for reports.
    rates_mw:
        State → power (mW).
    """

    name: str
    rates_mw: Mapping[str, float]

    def __post_init__(self) -> None:
        for state, rate in self.rates_mw.items():
            if rate < 0:
                raise ValueError(
                    f"power rate for state {state!r} must be >= 0, got {rate}"
                )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def states(self) -> tuple[str, ...]:
        """All state names."""
        return tuple(self.rates_mw)

    def rate_mw(self, state: str) -> float:
        """Power of ``state`` in mW (KeyError on unknown state)."""
        return float(self.rates_mw[state])

    def rate_w(self, state: str) -> float:
        """Power of ``state`` in W."""
        return self.rate_mw(state) / 1000.0

    def has_state(self, state: str) -> bool:
        """True when the table defines ``state``."""
        return state in self.rates_mw

    # ------------------------------------------------------------------
    # Energy evaluation (Eqs. 6–8)
    # ------------------------------------------------------------------
    def energy_from_dwell_j(self, dwell_s: Mapping[str, float]) -> float:
        """Σ P(state)·t(state): energy in Joules from dwell seconds.

        States absent from the table raise ``KeyError`` — silently
        zero-powered states hide model/table mismatches.
        """
        total_mj = 0.0
        for state, t in dwell_s.items():
            if t < 0:
                raise ValueError(f"negative dwell for {state!r}: {t}")
            total_mj += self.rate_mw(state) * t
        return total_mj / 1000.0

    def energy_from_probabilities_j(
        self, probabilities: Mapping[str, float], duration_s: float
    ) -> float:
        """Eq. (7)/(8): (Σ P(state)·p(state)) × Time, in Joules."""
        if duration_s < 0:
            raise ValueError(f"duration must be >= 0, got {duration_s}")
        mean_mw = 0.0
        for state, p in probabilities.items():
            if not -1e-9 <= p <= 1.0 + 1e-9:
                raise ValueError(
                    f"probability of {state!r} out of [0, 1]: {p}"
                )
            mean_mw += self.rate_mw(state) * p
        return mean_mw * duration_s / 1000.0

    def mean_power_mw(self, probabilities: Mapping[str, float]) -> float:
        """State-probability-weighted mean power in mW."""
        return sum(
            self.rate_mw(state) * p for state, p in probabilities.items()
        )

    def scaled(self, factor: float, name: str | None = None) -> "PowerStateTable":
        """A copy with every rate multiplied by ``factor`` (what-ifs)."""
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        return PowerStateTable(
            name or f"{self.name}*{factor:g}",
            {s: r * factor for s, r in self.rates_mw.items()},
        )

    def __str__(self) -> str:
        rows = ", ".join(f"{s}={r:g}mW" for s, r in self.rates_mw.items())
        return f"PowerStateTable({self.name}: {rows})"


def cpu_power_table() -> PowerStateTable:
    """Table III CPU rows as a :class:`PowerStateTable`."""
    return PowerStateTable("PXA271-CPU", dict(PXA271_CPU_POWER_MW))


def radio_power_table() -> PowerStateTable:
    """Table III radio rows as a :class:`PowerStateTable`."""
    return PowerStateTable("CC2420-Radio", dict(CC2420_RADIO_POWER_MW))


def imote2_power_table() -> PowerStateTable:
    """Table VII measured IMote2 powers as a :class:`PowerStateTable`."""
    return PowerStateTable("IMote2-measured", dict(IMOTE2_MEASURED_POWER_MW))
