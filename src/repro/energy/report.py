"""Plain-text rendering of energy results (paper-style tables and series).

The benchmark harness prints rows with these helpers so that every
regenerated table and figure is directly comparable to the paper's.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .breakdown import BREAKDOWN_CATEGORIES, CATEGORY_LABELS, EnergyBreakdown

__all__ = [
    "format_table",
    "format_state_percentages",
    "format_energy_series",
    "format_breakdown_sweep",
]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
    precision: int = 4,
) -> str:
    """Render an aligned plain-text table."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return f"{cell:.{precision}g}"
        return str(cell)

    text_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def format_state_percentages(
    thresholds: Sequence[float],
    series: Mapping[str, Sequence[float]],
    title: str,
) -> str:
    """Figs. 4–6 style: % of time per state across a threshold sweep.

    ``series`` maps state name → list of fractions (0..1) aligned with
    ``thresholds``.
    """
    headers = ["PDT (s)"] + [f"{name} %" for name in series]
    rows = []
    for i, t in enumerate(thresholds):
        rows.append(
            [t] + [100.0 * series[name][i] for name in series]
        )
    return format_table(headers, rows, title=title)


def format_energy_series(
    thresholds: Sequence[float],
    estimates: Mapping[str, Sequence[float]],
    title: str,
) -> str:
    """Figs. 7–9 style: energy (J) per estimator across a threshold sweep."""
    headers = ["PDT (s)"] + [f"{name} (J)" for name in estimates]
    rows = []
    for i, t in enumerate(thresholds):
        rows.append([t] + [estimates[name][i] for name in estimates])
    return format_table(headers, rows, title=title)


def format_breakdown_sweep(
    thresholds: Sequence[float],
    breakdowns: Sequence[EnergyBreakdown],
    title: str,
) -> str:
    """Figs. 14–15 style: stacked component energies per threshold."""
    if len(thresholds) != len(breakdowns):
        raise ValueError("thresholds and breakdowns must be equal length")
    headers = ["PDT (s)"] + [
        CATEGORY_LABELS[c].replace(" Energy", "") for c in BREAKDOWN_CATEGORIES
    ] + ["Total (J)"]
    rows = []
    for t, b in zip(thresholds, breakdowns):
        rows.append([t, *b.as_row(), b.total_j()])
    return format_table(headers, rows, title=title, precision=5)
