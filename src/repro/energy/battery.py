"""Battery and node-lifetime models.

The paper's motivation is battery lifetime ("there is a pressing need
to have the sensor nodes operate for as long as possible"), and its
related work (Jung et al. [12]) evaluates node lifetimes directly.
This module closes that loop: given a node's mean power draw (from any
of the models) and a battery, estimate the lifetime.

Two discharge models:

* :class:`LinearBattery` — ideal coulomb counting: lifetime =
  capacity / current.  Adequate at the µA–mA draws of sensor nodes.
* :class:`PeukertBattery` — Peukert's law correction
  ``t = H (C / (I H))^k`` for draws above the rated current, where
  ``k`` is the Peukert exponent (≈ 1.0–1.3 for lithium cells).

A :class:`NodeLifetimeEstimator` combines a battery with a
:class:`~repro.models.wsn_node.WSNNodeResult` (or any mean power) and
converts the Figs. 14/15 energy sweeps into the quantity a deployment
actually cares about: days of operation per threshold setting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "LinearBattery",
    "PeukertBattery",
    "NodeLifetimeEstimator",
    "IMOTE2_3xAAA",
]

_SECONDS_PER_HOUR = 3600.0
_SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class LinearBattery:
    """Ideal battery: constant usable charge regardless of draw.

    Parameters
    ----------
    capacity_mah:
        Rated capacity in milliamp-hours.
    voltage_v:
        Nominal terminal voltage (energy = capacity × voltage).
    usable_fraction:
        Fraction of rated capacity actually deliverable before the
        node's brown-out voltage (typically 0.8–0.9).
    """

    capacity_mah: float
    voltage_v: float
    usable_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ValueError("capacity and voltage must be > 0")
        if not 0 < self.usable_fraction <= 1:
            raise ValueError("usable_fraction must be in (0, 1]")

    def usable_energy_j(self) -> float:
        """Deliverable energy in Joules."""
        return (
            self.capacity_mah
            * self.usable_fraction
            * self.voltage_v
            * _SECONDS_PER_HOUR
            / 1000.0
        )

    def lifetime_s(self, mean_power_mw: float) -> float:
        """Seconds of operation at a constant ``mean_power_mw`` draw."""
        if mean_power_mw <= 0:
            return math.inf
        return self.usable_energy_j() / (mean_power_mw / 1000.0)


@dataclass(frozen=True)
class PeukertBattery:
    """Peukert-corrected battery: capacity shrinks at high draw.

    Parameters
    ----------
    capacity_mah:
        Rated capacity at the rated discharge time ``rated_hours``.
    voltage_v:
        Nominal voltage.
    peukert_exponent:
        k ≥ 1; 1.0 reduces to the linear model.
    rated_hours:
        Hour rating of the capacity figure (H in Peukert's law;
        typically 20 h for primary cells).
    """

    capacity_mah: float
    voltage_v: float
    peukert_exponent: float = 1.1
    rated_hours: float = 20.0

    def __post_init__(self) -> None:
        if self.capacity_mah <= 0 or self.voltage_v <= 0:
            raise ValueError("capacity and voltage must be > 0")
        if self.peukert_exponent < 1.0:
            raise ValueError("peukert_exponent must be >= 1")
        if self.rated_hours <= 0:
            raise ValueError("rated_hours must be > 0")

    def lifetime_s(self, mean_power_mw: float) -> float:
        """Peukert's law lifetime at a constant power draw.

        ``t = H · (C / (I·H))^k`` with I in the same amp units as C/H.
        """
        if mean_power_mw <= 0:
            return math.inf
        current_ma = mean_power_mw / self.voltage_v
        rated_current_ma = self.capacity_mah / self.rated_hours
        hours = self.rated_hours * (rated_current_ma / current_ma) ** (
            self.peukert_exponent
        )
        return hours * _SECONDS_PER_HOUR

    def usable_energy_j(self, mean_power_mw: float) -> float:
        """Energy actually delivered at this draw (draw-dependent)."""
        return self.lifetime_s(mean_power_mw) * mean_power_mw / 1000.0


#: Three AAA cells (the IMote2's standard supply): ~1000 mAh at 4.5 V.
IMOTE2_3xAAA = LinearBattery(capacity_mah=1000.0, voltage_v=4.5, usable_fraction=0.85)


class NodeLifetimeEstimator:
    """Turns node energy results into deployment lifetimes.

    Parameters
    ----------
    battery:
        A :class:`LinearBattery` or :class:`PeukertBattery`.
    """

    def __init__(self, battery: LinearBattery | PeukertBattery) -> None:
        self.battery = battery

    def lifetime_s(self, mean_power_mw: float) -> float:
        """Seconds of operation at a constant mean draw."""
        return self.battery.lifetime_s(mean_power_mw)

    def lifetime_days(self, mean_power_mw: float) -> float:
        """Days of operation at a constant mean draw."""
        return self.lifetime_s(mean_power_mw) / _SECONDS_PER_DAY

    def lifetime_from_energy(self, energy_j: float, duration_s: float) -> float:
        """Days of operation given energy over an observation window."""
        if duration_s <= 0:
            raise ValueError("duration_s must be > 0")
        mean_power_mw = energy_j / duration_s * 1000.0
        return self.lifetime_days(mean_power_mw)

    def lifetime_table_days(
        self,
        thresholds: list[float] | tuple[float, ...],
        energies_j: list[float],
        duration_s: float,
    ) -> list[tuple[float, float]]:
        """(threshold, lifetime days) rows from a Figs. 14/15 sweep."""
        if len(thresholds) != len(energies_j):
            raise ValueError("thresholds and energies must be equal length")
        return [
            (t, self.lifetime_from_energy(e, duration_s))
            for t, e in zip(thresholds, energies_j)
        ]
