"""``repro.energy`` — power tables and energy accounting.

* :mod:`repro.energy.power` — the paper's Table III (PXA271 CPU,
  CC2420 radio) and Table VII (measured IMote2) as
  :class:`PowerStateTable` objects;
* :mod:`repro.energy.accounting` — Eqs. (6)–(8): dwell times /
  state probabilities → Joules, per component and per node;
* :mod:`repro.energy.breakdown` — the eight stacked categories of
  Figs. 14–15;
* :mod:`repro.energy.report` — paper-style plain-text rendering.
"""

from .accounting import ComponentEnergy, EnergyAccount, NodeEnergyAccount
from .battery import (
    IMOTE2_3xAAA,
    LinearBattery,
    NodeLifetimeEstimator,
    PeukertBattery,
)
from .breakdown import (
    BREAKDOWN_CATEGORIES,
    CATEGORY_LABELS,
    EnergyBreakdown,
    categorize,
)
from .power import (
    CC2420_RADIO_POWER_MW,
    IMOTE2_MEASURED_POWER_MW,
    PXA271_CPU_POWER_MW,
    PowerStateTable,
    cpu_power_table,
    imote2_power_table,
    radio_power_table,
)
from .report import (
    format_breakdown_sweep,
    format_energy_series,
    format_state_percentages,
    format_table,
)

__all__ = [
    "LinearBattery",
    "PeukertBattery",
    "NodeLifetimeEstimator",
    "IMOTE2_3xAAA",
    "PowerStateTable",
    "PXA271_CPU_POWER_MW",
    "CC2420_RADIO_POWER_MW",
    "IMOTE2_MEASURED_POWER_MW",
    "cpu_power_table",
    "radio_power_table",
    "imote2_power_table",
    "EnergyAccount",
    "NodeEnergyAccount",
    "ComponentEnergy",
    "EnergyBreakdown",
    "BREAKDOWN_CATEGORIES",
    "CATEGORY_LABELS",
    "categorize",
    "format_table",
    "format_state_percentages",
    "format_energy_series",
    "format_breakdown_sweep",
]
