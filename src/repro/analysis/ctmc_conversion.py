"""Conversion of an exponential-only stochastic Petri net to a CTMC.

For nets whose timed transitions are all exponential (plus any number
of immediate transitions), the underlying marking process is a
continuous-time Markov chain, and steady-state probabilities can be
solved exactly instead of estimated by simulation.  This is the
classical SPN→CTMC pipeline (the route TimeNET's numerical analysis
takes), and it powers the A2 ablation: *exact CTMC vs simulation* on
the exponential approximation of the paper's CPU model.

Pipeline:

1. explore the marking space (tangible = no immediates enabled,
   vanishing = some immediate enabled);
2. eliminate vanishing markings by following immediate firings —
   weighted by transition weights among maximal-priority candidates —
   until tangible markings are hit (vanishing loops are rejected);
3. emit the tangible generator matrix ``Q`` with
   ``Q[i, j] = Σ rate(t)·P(firing t in i resolves to j)``.

Exponential rates are taken per enabled *server*: a transition with
enabling degree ``d`` and ``servers = k`` contributes rate
``rate · min(d, k)`` (infinite-server: ``rate · d``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.errors import NotExponentialError, UnboundedNetError
from ..core.marking import Marking
from ..core.net import PetriNet
from ..core.transitions import INFINITE_SERVERS, Transition
from .reachability import _enabled_untimed, _fire_untimed

__all__ = ["TangibleCTMC", "spn_to_ctmc"]


@dataclass
class TangibleCTMC:
    """The tangible-marking CTMC of an exponential SPN.

    Attributes
    ----------
    states:
        Tangible marking signatures, index-aligned with ``Q``.
    counts:
        Per-state token-count dicts.
    Q:
        Generator matrix (rows sum to zero).
    initial_index:
        Index of the (tangibly resolved) initial state distribution —
        stored as a probability vector because a vanishing initial
        marking may resolve stochastically.
    initial_distribution:
        Probability vector over tangible states at time zero.
    """

    states: list[tuple]
    counts: list[dict[str, int]]
    Q: np.ndarray
    initial_distribution: np.ndarray

    @property
    def n_states(self) -> int:
        """Number of tangible states."""
        return len(self.states)

    def place_marginal(self, pi: np.ndarray, place: str) -> float:
        """P(#place ≥ 1) under state distribution ``pi``."""
        return float(
            sum(
                p
                for p, c in zip(pi, self.counts)
                if c.get(place, 0) >= 1
            )
        )

    def expected_tokens(self, pi: np.ndarray, place: str) -> float:
        """E[#place] under state distribution ``pi``."""
        return float(
            sum(p * c.get(place, 0) for p, c in zip(pi, self.counts))
        )


def _immediate_candidates(
    net: PetriNet, marking: Marking
) -> list[Transition]:
    enabled = _enabled_untimed(net, marking)
    return [t for t in enabled if t.is_immediate]


def _enabled_exponentials(
    net: PetriNet, marking: Marking
) -> list[Transition]:
    enabled = _enabled_untimed(net, marking)
    timed = [t for t in enabled if t.is_timed]
    for t in timed:
        if not t.is_exponential:
            raise NotExponentialError(t.name, t.distribution.kind)
    return timed


def _enabling_degree(marking: Marking, t: Transition) -> int:
    if not t.inputs:
        return 1
    degree: int | None = None
    for arc in t.inputs:
        d = marking.bag(arc.place).count(arc.token_filter) // arc.multiplicity
        degree = d if degree is None else min(degree, d)
    return int(degree or 0)


def _resolve_vanishing(
    net: PetriNet,
    marking: Marking,
    cache: dict[tuple, dict[tuple, float]],
    markings_by_sig: dict[tuple, Marking],
    depth: int = 0,
    max_depth: int = 10_000,
) -> dict[tuple, float]:
    """Distribution over tangible signatures reached from ``marking``."""
    if depth > max_depth:
        raise UnboundedNetError(max_depth)
    sig = marking.signature()
    if sig in cache:
        return cache[sig]
    immediates = _immediate_candidates(net, marking)
    if not immediates:
        markings_by_sig.setdefault(sig, marking)
        result = {sig: 1.0}
        cache[sig] = result
        return result
    total_weight = sum(t.weight for t in immediates)
    result: dict[tuple, float] = {}
    # Temporarily mark in-progress to detect vanishing cycles.
    cache[sig] = {}
    for t in immediates:
        p = t.weight / total_weight
        successor = _fire_untimed(net, marking, t)
        succ_sig = successor.signature()
        if succ_sig == sig:
            raise UnboundedNetError(max_depth)  # self-looping immediate
        sub = _resolve_vanishing(
            net, successor, cache, markings_by_sig, depth + 1, max_depth
        )
        for tang_sig, q in sub.items():
            result[tang_sig] = result.get(tang_sig, 0.0) + p * q
    cache[sig] = result
    return result


def spn_to_ctmc(
    net: PetriNet,
    max_states: int = 50_000,
) -> TangibleCTMC:
    """Build the tangible CTMC of an exponential-only SPN.

    Raises
    ------
    NotExponentialError
        If any timed transition has a non-exponential distribution.
    UnboundedNetError
        If exploration exceeds ``max_states`` tangible states or a
        vanishing loop is found.
    """
    vanishing_cache: dict[tuple, dict[tuple, float]] = {}
    markings_by_sig: dict[tuple, Marking] = {}

    initial = net.initial_marking()
    init_dist = _resolve_vanishing(
        net, initial, vanishing_cache, markings_by_sig
    )

    index: dict[tuple, int] = {}
    order: list[tuple] = []
    frontier: deque[tuple] = deque()

    def intern(sig: tuple) -> int:
        if sig not in index:
            if len(order) >= max_states:
                raise UnboundedNetError(max_states)
            index[sig] = len(order)
            order.append(sig)
            frontier.append(sig)
        return index[sig]

    for sig in init_dist:
        intern(sig)

    rows: list[dict[int, float]] = []

    while frontier:
        sig = frontier.popleft()
        marking = markings_by_sig[sig]
        exits: dict[int, float] = {}
        for t in _enabled_exponentials(net, marking):
            degree = _enabling_degree(marking, t)
            if t.servers == INFINITE_SERVERS:
                servers = degree
            else:
                servers = min(degree, t.servers)
            rate = t.distribution.rate * servers  # type: ignore[attr-defined]
            successor = _fire_untimed(net, marking, t)
            dist = _resolve_vanishing(
                net, successor, vanishing_cache, markings_by_sig
            )
            for tang_sig, p in dist.items():
                j = intern(tang_sig)
                exits[j] = exits.get(j, 0.0) + rate * p
        rows.append(exits)
        # rows is index-aligned with order: every signature is appended
        # to both order and the FIFO frontier exactly once, so pops
        # happen in interning order.

    n = len(order)
    Q = np.zeros((n, n))
    for i, exits in enumerate(rows):
        for j, rate in exits.items():
            if i == j:
                continue  # self-loops cancel in a generator
            Q[i, j] += rate
    np.fill_diagonal(Q, 0.0)
    np.fill_diagonal(Q, -Q.sum(axis=1))

    init_vec = np.zeros(n)
    for sig, p in init_dist.items():
        init_vec[index[sig]] = p

    return TangibleCTMC(
        states=order,
        counts=[markings_by_sig[s].counts() for s in order],
        Q=Q,
        initial_distribution=init_vec,
    )
