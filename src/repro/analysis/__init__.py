"""``repro.analysis`` — structural and numerical Petri-net analysis.

The reproduction's stand-in for TimeNET's analysis panel:

* :mod:`repro.analysis.reachability` — explicit reachability graphs for
  bounded nets (deadlock census, bounds, home states);
* :mod:`repro.analysis.invariants` — minimal P/T-invariants via the
  Farkas algorithm plus fast rational null-space checks;
* :mod:`repro.analysis.structural` — boundedness / conservativeness /
  liveness verdicts and declared-invariant assertions used by the model
  builders;
* :mod:`repro.analysis.ctmc_conversion` — exponential-SPN → CTMC
  conversion with vanishing-marking elimination (exact steady state via
  :mod:`repro.markov.ctmc`).
"""

from .ctmc_conversion import TangibleCTMC, spn_to_ctmc
from .invariants import (
    Invariant,
    conserved_token_sum,
    nullspace_invariants,
    p_invariants,
    t_invariants,
)
from .reachability import ReachabilityGraph, build_reachability_graph
from .structural import (
    BoundednessReport,
    LivenessReport,
    boundedness,
    check_model_invariants,
    is_conservative,
    liveness_summary,
)

__all__ = [
    "ReachabilityGraph",
    "build_reachability_graph",
    "Invariant",
    "p_invariants",
    "t_invariants",
    "nullspace_invariants",
    "conserved_token_sum",
    "BoundednessReport",
    "LivenessReport",
    "boundedness",
    "is_conservative",
    "liveness_summary",
    "check_model_invariants",
    "TangibleCTMC",
    "spn_to_ctmc",
]
