"""Higher-level structural properties built on reachability + invariants.

These are the sanity instruments a modeller points at a net before
trusting its simulation numbers — the reproduction's stand-in for
TimeNET's "structural analysis" panel:

* :func:`boundedness` — per-place bounds via reachability.
* :func:`is_conservative` — a strictly positive P-invariant covers all
  places (total weighted token count constant).
* :func:`liveness_summary` — which transitions ever fire (L1-liveness
  on the reachability graph) and which are structurally dead.
* :func:`check_model_invariants` — assert a list of expected
  conservation laws, raising with a readable message otherwise (model
  builders call this).
"""

from __future__ import annotations

from dataclasses import dataclass


from ..core.net import PetriNet
from .invariants import conserved_token_sum, p_invariants
from .reachability import ReachabilityGraph, build_reachability_graph

__all__ = [
    "BoundednessReport",
    "LivenessReport",
    "boundedness",
    "is_conservative",
    "liveness_summary",
    "check_model_invariants",
]


@dataclass(frozen=True)
class BoundednessReport:
    """Per-place bounds and the global verdict."""

    bounds: dict[str, int]
    k: int
    n_states: int

    @property
    def is_safe(self) -> bool:
        """1-bounded (every place holds at most one token)."""
        return self.k <= 1

    def __str__(self) -> str:
        return (
            f"{self.k}-bounded over {self.n_states} reachable markings; "
            f"bounds: {self.bounds}"
        )


@dataclass(frozen=True)
class LivenessReport:
    """Which transitions can fire at all (L1) and which states deadlock."""

    live: frozenset[str]
    dead: frozenset[str]
    deadlock_markings: int

    @property
    def deadlock_free(self) -> bool:
        """No reachable marking disables everything."""
        return self.deadlock_markings == 0

    def __str__(self) -> str:
        return (
            f"live: {sorted(self.live)}; dead: {sorted(self.dead)}; "
            f"deadlock markings: {self.deadlock_markings}"
        )


def boundedness(
    net: PetriNet,
    max_states: int = 100_000,
    rg: ReachabilityGraph | None = None,
) -> BoundednessReport:
    """Compute per-place bounds by exhaustive reachability."""
    rg = rg if rg is not None else build_reachability_graph(net, max_states)
    bounds = rg.bound_vector()
    for p in net.place_names:
        bounds.setdefault(p, 0)
    k = max(bounds.values(), default=0)
    return BoundednessReport(bounds=bounds, k=k, n_states=rg.n_states)


def is_conservative(net: PetriNet) -> bool:
    """True when some strictly positive P-invariant covers every place."""
    invariants = p_invariants(net)
    if not invariants:
        return False
    # Sum of all generators is a non-negative invariant; conservative
    # iff that sum can be made strictly positive, i.e. every place is in
    # the union of supports.
    covered: set[str] = set()
    for inv in invariants:
        covered |= inv.support
    return covered >= set(net.place_names)


def liveness_summary(
    net: PetriNet,
    max_states: int = 100_000,
    rg: ReachabilityGraph | None = None,
) -> LivenessReport:
    """L1-liveness per transition and deadlock census."""
    rg = rg if rg is not None else build_reachability_graph(net, max_states)
    fired = {
        data["transition"]
        for _, _, data in rg.graph.edges(data=True)
        if "transition" in data
    }
    all_names = set(net.transition_names)
    return LivenessReport(
        live=frozenset(fired),
        dead=frozenset(all_names - fired),
        deadlock_markings=len(rg.deadlock_states()),
    )


def check_model_invariants(
    net: PetriNet,
    conservation_sets: list[tuple[str, list[str]]],
) -> None:
    """Assert expected conservation laws; raise ``ValueError`` otherwise.

    Parameters
    ----------
    net:
        The net to check.
    conservation_sets:
        ``(label, [place, ...])`` pairs.  For each, the plain token sum
        over the places must be invariant under every transition.

    Model builders (e.g. :mod:`repro.models.wsn_node`) call this so that
    a mis-wired arc is caught at construction time with a message naming
    the violated law instead of surfacing as a slow statistical drift.
    """
    failures: list[str] = []
    for label, places in conservation_sets:
        if not conserved_token_sum(net, places):
            failures.append(
                f"{label}: token sum over {places} is not conserved"
            )
    if failures:
        raise ValueError(
            f"net {net.name!r} violates declared invariants: "
            + "; ".join(failures)
        )
