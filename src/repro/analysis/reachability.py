"""Explicit reachability-graph construction for bounded nets.

TimeNET's numerical analysis pipeline starts by building the reduced
reachability graph; we reproduce the untimed core of that pipeline:

* :func:`build_reachability_graph` explores the marking space ignoring
  time (every enabled transition is a successor edge) with a state
  budget so unbounded nets fail loudly instead of looping.
* The result is a :class:`ReachabilityGraph` wrapping a
  :class:`networkx.DiGraph` whose nodes are canonical marking
  signatures, enriched with per-node token-count dicts.

Timing is deliberately ignored here: reachability is a structural
notion.  The timed analysis path for exponential nets lives in
:mod:`repro.analysis.ctmc_conversion`, which reuses this exploration
with immediate-transition (vanishing-marking) elimination.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import networkx as nx

from ..core.errors import UnboundedNetError
from ..core.marking import Marking
from ..core.net import PetriNet
from ..core.tokens import Token
from ..core.transitions import Transition

__all__ = ["ReachabilityGraph", "build_reachability_graph"]


Signature = tuple


@dataclass
class ReachabilityGraph:
    """The explored marking space of a bounded net.

    Attributes
    ----------
    graph:
        ``networkx.DiGraph``; node keys are marking signatures, node
        attribute ``counts`` holds the token-count dict, edge attribute
        ``transition`` names the firing.
    initial:
        Signature of the initial marking.
    """

    graph: nx.DiGraph
    initial: Signature

    @property
    def n_states(self) -> int:
        """Number of distinct reachable markings."""
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        """Number of firing edges."""
        return self.graph.number_of_edges()

    def counts_of(self, signature: Signature) -> dict[str, int]:
        """Token counts of a state."""
        return self.graph.nodes[signature]["counts"]

    def deadlock_states(self) -> list[Signature]:
        """States with no outgoing firing."""
        return [n for n in self.graph.nodes if self.graph.out_degree(n) == 0]

    def max_tokens(self, place: str) -> int:
        """Bound of ``place`` over the reachable space."""
        return max(
            data["counts"].get(place, 0)
            for _, data in self.graph.nodes(data=True)
        )

    def bound_vector(self) -> dict[str, int]:
        """Per-place bounds (the k-boundedness certificate)."""
        bounds: dict[str, int] = {}
        for _, data in self.graph.nodes(data=True):
            for place, count in data["counts"].items():
                if count > bounds.get(place, 0):
                    bounds[place] = count
        return bounds

    def is_live_transition(self, transition: str) -> bool:
        """L1-liveness: the transition labels at least one edge."""
        return any(
            data.get("transition") == transition
            for _, _, data in self.graph.edges(data=True)
        )

    def strongly_connected(self) -> bool:
        """True when every state can reach every other (ergodic skeleton)."""
        return nx.is_strongly_connected(self.graph)

    def home_states(self) -> list[Signature]:
        """States reachable from every reachable state."""
        condensation = nx.condensation(self.graph)
        # A home state lives in the unique terminal SCC (out-degree 0 in
        # the condensation) reachable from all components.
        terminal = [
            n for n in condensation.nodes if condensation.out_degree(n) == 0
        ]
        if len(terminal) != 1:
            return []
        members = condensation.nodes[terminal[0]]["members"]
        return sorted(members)


def _fire_untimed(
    net: PetriNet, marking: Marking, transition: Transition, now: float = 0.0
) -> Marking:
    """Fire ``transition`` on a copy of ``marking`` (untimed token game)."""
    from ..core.arcs import FiringContext

    new = marking.copy()
    consumed: dict[str, list[Token]] = {}
    for arc in transition.inputs:
        consumed.setdefault(arc.place, []).extend(
            new.withdraw(arc.place, arc.multiplicity, arc.token_filter)
        )
    for reset in transition.resets:
        flushed = new.bag(reset.place).clear()
        if flushed:
            consumed.setdefault(reset.place, []).extend(flushed)
    import numpy as np

    ctx = FiringContext(
        time=now,
        consumed=consumed,
        marking=new.view(),
        rng=np.random.default_rng(0),
        transition=transition.name,
    )
    for arc in transition.outputs:
        new.deposit(arc.place, arc.make_tokens(ctx))
    return new


def _enabled_untimed(net: PetriNet, marking: Marking) -> list[Transition]:
    """Transitions enabled in ``marking`` honouring immediate priority.

    If any immediate transition is enabled, only the maximal-priority
    immediates count (the vanishing-marking rule); otherwise all enabled
    timed transitions do.
    """
    view = marking.view()

    def enabled(t: Transition) -> bool:
        for inh in t.inhibitors:
            if marking.count(inh.place) >= inh.multiplicity:
                return False
        if not t.guard(view):
            return False
        for arc in t.inputs:
            if marking.bag(arc.place).count(arc.token_filter) < arc.multiplicity:
                return False
        return True

    immediates = [t for t in net.transitions if t.is_immediate and enabled(t)]
    if immediates:
        top = max(t.priority for t in immediates)
        return [t for t in immediates if t.priority == top]
    return [t for t in net.transitions if t.is_timed and enabled(t)]


def build_reachability_graph(
    net: PetriNet,
    max_states: int = 100_000,
    initial_marking: Marking | None = None,
) -> ReachabilityGraph:
    """Breadth-first exploration of the reachable marking space.

    Raises
    ------
    UnboundedNetError
        When more than ``max_states`` distinct markings are found.

    Notes
    -----
    Output-arc *producers* (dynamic colour functions) are evaluated with
    a fixed dummy RNG; nets whose colour production is genuinely random
    have an approximate graph.  The paper's models only forward or fix
    colours, so their graphs are exact.
    """
    marking0 = initial_marking if initial_marking is not None else net.initial_marking()
    graph = nx.DiGraph()
    initial_sig = marking0.signature()
    graph.add_node(initial_sig, counts=marking0.counts())
    frontier: deque[tuple[Signature, Marking]] = deque([(initial_sig, marking0)])
    seen: set[Signature] = {initial_sig}
    while frontier:
        sig, marking = frontier.popleft()
        for transition in _enabled_untimed(net, marking):
            successor = _fire_untimed(net, marking, transition)
            succ_sig = successor.signature()
            if succ_sig not in seen:
                if len(seen) >= max_states:
                    raise UnboundedNetError(max_states)
                seen.add(succ_sig)
                graph.add_node(succ_sig, counts=successor.counts())
                frontier.append((succ_sig, successor))
            if not graph.has_edge(sig, succ_sig):
                graph.add_edge(sig, succ_sig, transition=transition.name)
    return ReachabilityGraph(graph=graph, initial=initial_sig)
