"""P- and T-invariant computation.

A *P-invariant* (place invariant) is a non-negative integer vector
``y`` with ``yᵀ·C = 0`` (C the incidence matrix): the weighted token
sum ``yᵀ·M`` is conserved by every firing.  The paper's node models are
covered by P-invariants — e.g. the CPU state places
``{Stand_By, Power_Up, Idle, Active}`` always hold exactly one token —
and our tests verify those conservation laws both structurally (here)
and dynamically (during simulation).

A *T-invariant* is ``x ≥ 0`` with ``C·x = 0``: a firing-count vector
returning the net to its starting marking (one full duty cycle of the
sensor node is a T-invariant).

Exact integer invariants are computed with the classical
Farkas/Fourier–Motzkin elimination algorithm, which yields a generating
set of minimal-support non-negative invariants.  A fast floating-point
null-space check (:func:`nullspace_invariants`) backs the property
tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.net import PetriNet

__all__ = [
    "Invariant",
    "p_invariants",
    "t_invariants",
    "nullspace_invariants",
    "conserved_token_sum",
]


@dataclass(frozen=True)
class Invariant:
    """A non-negative integer invariant with named support.

    Attributes
    ----------
    weights:
        Mapping element name → positive integer weight (support only).
    kind:
        ``"P"`` or ``"T"``.
    """

    weights: tuple[tuple[str, int], ...]
    kind: str

    @property
    def support(self) -> frozenset[str]:
        """Element names with non-zero weight."""
        return frozenset(name for name, _ in self.weights)

    def weight_of(self, name: str) -> int:
        """Weight of ``name`` (0 when outside the support)."""
        for n, w in self.weights:
            if n == name:
                return w
        return 0

    def evaluate(self, counts: dict[str, int]) -> int:
        """Weighted sum over a token-count dict (P-invariants)."""
        return sum(w * counts.get(n, 0) for n, w in self.weights)

    def __str__(self) -> str:
        terms = " + ".join(
            (f"{w}*{n}" if w != 1 else n) for n, w in self.weights
        )
        return f"{self.kind}-invariant: {terms}"


def _farkas(matrix: np.ndarray) -> np.ndarray:
    """Generating set of minimal non-negative integer solutions of
    ``yᵀ·A = 0`` (rows of the returned array are the invariants).

    Classical Farkas algorithm: append an identity, then eliminate each
    column of A by taking non-negative combinations of rows with
    opposite signs.
    """
    n_rows, n_cols = matrix.shape
    # Working table [A | I]
    table = np.hstack(
        [matrix.astype(np.int64), np.eye(n_rows, dtype=np.int64)]
    )
    for col in range(n_cols):
        positive = [r for r in table if r[col] > 0]
        negative = [r for r in table if r[col] < 0]
        zero = [r for r in table if r[col] == 0]
        combos: list[np.ndarray] = []
        for rp in positive:
            for rn in negative:
                # Combine to cancel the column: |rn[col]|*rp + rp[col]*rn
                new = abs(rn[col]) * rp + rp[col] * rn
                g = np.gcd.reduce(new[new != 0]) if np.any(new != 0) else 1
                if g > 1:
                    new = new // g
                combos.append(new)
        rows = zero + combos
        table = (
            np.array(rows, dtype=np.int64)
            if rows
            else np.zeros((0, table.shape[1]), dtype=np.int64)
        )
        table = _drop_non_minimal(table, n_cols)
    return table[:, n_cols:]


def _drop_non_minimal(table: np.ndarray, n_cols: int) -> np.ndarray:
    """Remove rows whose invariant-part support includes another row's."""
    if len(table) <= 1:
        return table
    inv = table[:, n_cols:] != 0
    keep: list[int] = []
    for i in range(len(table)):
        minimal = True
        for j in range(len(table)):
            if i == j:
                continue
            # j's support strictly inside i's support => i not minimal
            if np.all(inv[j] <= inv[i]) and np.any(inv[j] != inv[i]):
                minimal = False
                break
            if (
                np.array_equal(inv[j], inv[i])
                and j < i
            ):
                minimal = False  # duplicate support, keep first
                break
        if minimal:
            keep.append(i)
    return table[keep]


def p_invariants(net: PetriNet) -> list[Invariant]:
    """Minimal-support non-negative P-invariants of ``net``.

    Colour filters are ignored (invariants concern the uncoloured
    skeleton).
    """
    pnames, _tnames, C = net.incidence_matrix()
    if C.size == 0:
        return []
    generators = _farkas(C)  # yT C = 0 with C as (P x T): eliminate T columns
    out: list[Invariant] = []
    for row in generators:
        if not np.any(row):
            continue
        weights = tuple(
            (pnames[i], int(w)) for i, w in enumerate(row) if w != 0
        )
        out.append(Invariant(weights, "P"))
    return out


def t_invariants(net: PetriNet) -> list[Invariant]:
    """Minimal-support non-negative T-invariants of ``net``."""
    pnames, tnames, C = net.incidence_matrix()
    if C.size == 0:
        return []
    generators = _farkas(C.T)  # xT CT = 0  <=>  C x = 0
    out: list[Invariant] = []
    for row in generators:
        if not np.any(row):
            continue
        weights = tuple(
            (tnames[i], int(w)) for i, w in enumerate(row) if w != 0
        )
        out.append(Invariant(weights, "T"))
    return out


def nullspace_invariants(net: PetriNet, tol: float = 1e-9) -> np.ndarray:
    """Orthonormal basis of the left null space of C (floating point).

    Faster than Farkas for large nets; rows may be negative, so this is
    a *rational* invariant basis useful for dimension checks
    (``rank deficiency = number of independent P-invariants``), not for
    token-conservation certificates.
    """
    _p, _t, C = net.incidence_matrix()
    if C.size == 0:
        return np.zeros((0, 0))
    u, s, _vt = np.linalg.svd(C.astype(float).T)
    rank = int(np.sum(s > tol))
    return u[:, rank:].T  # rows span {y : yT C = 0}


def conserved_token_sum(
    net: PetriNet, places: list[str] | tuple[str, ...]
) -> bool:
    """True when Σ tokens over ``places`` is provably constant.

    Checks that the 0/1 indicator vector of ``places`` is a P-invariant
    (every transition consumes from the set exactly as much as it
    produces into it).
    """
    pnames, _t, C = net.incidence_matrix()
    index = {n: i for i, n in enumerate(pnames)}
    y = np.zeros(len(pnames), dtype=np.int64)
    for p in places:
        y[index[p]] = 1
    return bool(np.all(y @ C == 0))
