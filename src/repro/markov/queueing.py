"""Reference queueing formulas.

Closed-form results used as oracles in the cross-validation tests: the
Petri-net engine and the DES must reproduce them on matched workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "MM1Metrics",
    "mm1_metrics",
    "mg1_mean_queue_length",
    "md1_mean_queue_length",
    "erlang_b",
    "erlang_c",
]


@dataclass(frozen=True)
class MM1Metrics:
    """Steady-state metrics of the M/M/1 queue."""

    rho: float
    utilization: float
    mean_number_in_system: float
    mean_number_in_queue: float
    mean_time_in_system: float
    mean_waiting_time: float
    p_empty: float


def mm1_metrics(lam: float, mu: float) -> MM1Metrics:
    """All standard M/M/1 steady-state metrics (requires ρ < 1)."""
    if lam <= 0 or mu <= 0:
        raise ValueError("need lam > 0 and mu > 0")
    rho = lam / mu
    if rho >= 1:
        raise ValueError(f"unstable queue: rho = {rho} >= 1")
    L = rho / (1 - rho)
    Lq = rho * rho / (1 - rho)
    return MM1Metrics(
        rho=rho,
        utilization=rho,
        mean_number_in_system=L,
        mean_number_in_queue=Lq,
        mean_time_in_system=L / lam,
        mean_waiting_time=Lq / lam,
        p_empty=1 - rho,
    )


def mg1_mean_queue_length(lam: float, mean_s: float, var_s: float) -> float:
    """Pollaczek–Khinchine mean number in system for M/G/1.

    ``mean_s``/``var_s`` are the service-time mean and variance.
    """
    if lam <= 0 or mean_s <= 0 or var_s < 0:
        raise ValueError("need lam > 0, mean_s > 0, var_s >= 0")
    rho = lam * mean_s
    if rho >= 1:
        raise ValueError(f"unstable queue: rho = {rho} >= 1")
    cs2 = var_s / (mean_s * mean_s)
    lq = rho * rho * (1 + cs2) / (2 * (1 - rho))
    return rho + lq


def md1_mean_queue_length(lam: float, d: float) -> float:
    """M/D/1 mean number in system (P-K with zero service variance)."""
    return mg1_mean_queue_length(lam, d, 0.0)


def erlang_b(offered_load: float, servers: int) -> float:
    """Erlang-B blocking probability for M/M/c/c.

    Computed with the numerically stable recurrence
    ``B(0) = 1; B(k) = a·B(k-1) / (k + a·B(k-1))``.
    """
    if offered_load < 0 or servers < 0:
        raise ValueError("need offered_load >= 0 and servers >= 0")
    b = 1.0
    for k in range(1, servers + 1):
        b = offered_load * b / (k + offered_load * b)
    return b


def erlang_c(offered_load: float, servers: int) -> float:
    """Erlang-C waiting probability for M/M/c (requires a < c)."""
    if servers <= 0:
        raise ValueError("need servers >= 1")
    a = offered_load
    if a >= servers:
        raise ValueError(f"unstable system: load {a} >= servers {servers}")
    b = erlang_b(a, servers)
    return servers * b / (servers - a * (1 - b))
