"""``repro.markov`` — the Markov-model substrate.

* :class:`~repro.markov.ctmc.CTMC` / :class:`~repro.markov.dtmc.DTMC`
  — general finite-chain solvers (steady state, transients via
  uniformization, absorption analysis);
* :class:`~repro.markov.birthdeath.BirthDeathChain` — product-form
  birth–death chains (the paper's Fig. 2 skeleton);
* :mod:`repro.markov.queueing` — M/M/1, M/G/1, Erlang-B/C oracles for
  the cross-validation tests;
* :class:`~repro.markov.supplementary.SupplementaryVariableCPUModel`
  — the paper's closed-form CPU model, Eqs. (1)–(6).
"""

from .birthdeath import BirthDeathChain, mm1_steady_state
from .ctmc import CTMC
from .dtmc import DTMC
from .fitting import (
    fit_best,
    fit_deterministic,
    fit_erlang,
    fit_exponential,
    fit_lognormal,
)
from .queueing import (
    MM1Metrics,
    erlang_b,
    erlang_c,
    md1_mean_queue_length,
    mg1_mean_queue_length,
    mm1_metrics,
)
from .supplementary import MarkovCPUSteadyState, SupplementaryVariableCPUModel

__all__ = [
    "CTMC",
    "DTMC",
    "BirthDeathChain",
    "mm1_steady_state",
    "MM1Metrics",
    "mm1_metrics",
    "mg1_mean_queue_length",
    "md1_mean_queue_length",
    "erlang_b",
    "erlang_c",
    "SupplementaryVariableCPUModel",
    "MarkovCPUSteadyState",
    "fit_exponential",
    "fit_deterministic",
    "fit_erlang",
    "fit_lognormal",
    "fit_best",
]
