"""Birth–death chains.

The paper's Fig. 2 is a birth–death process over CPU job counts with
extra deterministic excursions (idle→standby→power-up).  The pure
birth–death core (no deterministic transitions) is analytically
solvable and anchors our cross-validation tests: the Petri-net engine,
the DES and these formulas must all agree on M/M/1-type workloads.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .ctmc import CTMC

__all__ = ["BirthDeathChain", "mm1_steady_state"]


class BirthDeathChain:
    """A finite birth–death chain on states 0..K.

    Parameters
    ----------
    birth_rates:
        ``birth_rates[i]`` = rate i → i+1, length K.
    death_rates:
        ``death_rates[i]`` = rate i+1 → i, length K.
    """

    def __init__(
        self, birth_rates: Sequence[float], death_rates: Sequence[float]
    ) -> None:
        if len(birth_rates) != len(death_rates):
            raise ValueError(
                "birth_rates and death_rates must have equal length"
            )
        if any(b < 0 for b in birth_rates) or any(d <= 0 for d in death_rates):
            raise ValueError("need birth rates >= 0 and death rates > 0")
        self.birth = np.asarray(birth_rates, dtype=float)
        self.death = np.asarray(death_rates, dtype=float)
        self.K = len(birth_rates)

    def steady_state(self) -> np.ndarray:
        """Stationary distribution via the product-form detailed balance."""
        n = self.K + 1
        log_pi = np.zeros(n)
        for i in range(self.K):
            if self.birth[i] == 0:
                log_pi[i + 1 :] = -np.inf
                break
            log_pi[i + 1] = log_pi[i] + np.log(self.birth[i]) - np.log(self.death[i])
        log_pi -= log_pi[np.isfinite(log_pi)].max()
        pi = np.where(np.isfinite(log_pi), np.exp(log_pi), 0.0)
        return pi / pi.sum()

    def to_ctmc(self) -> CTMC:
        """The equivalent dense CTMC (for cross-checks)."""
        n = self.K + 1
        Q = np.zeros((n, n))
        for i in range(self.K):
            Q[i, i + 1] = self.birth[i]
            Q[i + 1, i] = self.death[i]
        np.fill_diagonal(Q, 0.0)
        np.fill_diagonal(Q, -Q.sum(axis=1))
        return CTMC(Q, labels=list(range(n)))

    def mean_population(self) -> float:
        """E[state] under the stationary distribution."""
        pi = self.steady_state()
        return float(np.dot(np.arange(self.K + 1), pi))

    @classmethod
    def mm1k(cls, lam: float, mu: float, K: int) -> "BirthDeathChain":
        """The M/M/1/K queue as a birth–death chain."""
        if lam <= 0 or mu <= 0 or K < 1:
            raise ValueError("need lam > 0, mu > 0, K >= 1")
        return cls([lam] * K, [mu] * K)


def mm1_steady_state(lam: float, mu: float, n_max: int) -> np.ndarray:
    """Truncated M/M/1 stationary distribution π_n = (1-ρ)ρⁿ.

    Requires ρ = λ/μ < 1; returned vector covers n = 0..n_max and is
    renormalised over the truncation.
    """
    if lam <= 0 or mu <= 0:
        raise ValueError("need lam > 0 and mu > 0")
    rho = lam / mu
    if rho >= 1:
        raise ValueError(f"unstable queue: rho = {rho} >= 1")
    n = np.arange(n_max + 1)
    pi = (1 - rho) * rho**n
    return pi / pi.sum()
