"""Fitting firing distributions to measured traces.

The paper's models take their delays from measurements (Table VII's
state powers, Table VIII's stage durations).  A user with their own
traces needs the inverse tool: given observed durations, pick and
parameterise a :class:`~repro.core.distributions.FiringDistribution`.

Estimators:

* :func:`fit_exponential` — maximum likelihood (rate = 1/mean).
* :func:`fit_deterministic` — the sample mean (for near-constant data).
* :func:`fit_erlang` — moment matching: ``k = round(1/cv²)`` clamped to
  ≥ 1, rate = k/mean.
* :func:`fit_lognormal` — moment matching via mean and cv.
* :func:`fit_best` — model selection across the above by
  log-likelihood with a small complexity penalty (AIC); near-constant
  samples short-circuit to Deterministic.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np
from scipy import stats as sps

from ..core.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    FiringDistribution,
    LogNormal,
)

__all__ = [
    "fit_exponential",
    "fit_deterministic",
    "fit_erlang",
    "fit_lognormal",
    "fit_best",
]


def _validate(samples: Sequence[float]) -> np.ndarray:
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1 or arr.size < 2:
        raise ValueError("need a 1-D sample of at least 2 observations")
    if np.any(arr < 0):
        raise ValueError("durations must be non-negative")
    return arr


def fit_exponential(samples: Sequence[float]) -> Exponential:
    """MLE exponential fit: rate = 1 / sample mean."""
    arr = _validate(samples)
    mean = float(arr.mean())
    if mean <= 0:
        raise ValueError("cannot fit an exponential to all-zero durations")
    return Exponential(1.0 / mean)


def fit_deterministic(samples: Sequence[float]) -> Deterministic:
    """Constant-delay fit: the sample mean."""
    arr = _validate(samples)
    return Deterministic(float(arr.mean()))


def fit_erlang(samples: Sequence[float], max_k: int = 500) -> Erlang:
    """Moment-matched Erlang: shape from the coefficient of variation.

    ``cv² = 1/k`` for Erlang-k, so ``k = round(1/cv²)`` clamped to
    [1, max_k]; the rate then matches the mean.
    """
    arr = _validate(samples)
    mean = float(arr.mean())
    var = float(arr.var(ddof=1))
    if mean <= 0:
        raise ValueError("cannot fit an Erlang to all-zero durations")
    if var <= 0:
        return Erlang.from_mean(max_k, mean)
    cv2 = var / (mean * mean)
    k = int(np.clip(round(1.0 / cv2), 1, max_k))
    return Erlang.from_mean(k, mean)


def fit_lognormal(samples: Sequence[float]) -> LogNormal:
    """Moment-matched log-normal (mean and coefficient of variation)."""
    arr = _validate(samples)
    mean = float(arr.mean())
    var = float(arr.var(ddof=1))
    if mean <= 0 or var <= 0:
        raise ValueError("log-normal fit needs positive mean and variance")
    cv = math.sqrt(var) / mean
    return LogNormal.from_mean_cv(mean, cv)


def _log_likelihood(dist: FiringDistribution, arr: np.ndarray) -> float:
    if isinstance(dist, Exponential):
        return float(np.sum(sps.expon.logpdf(arr, scale=1.0 / dist.rate)))
    if isinstance(dist, Erlang):
        return float(
            np.sum(sps.gamma.logpdf(arr, a=dist.k, scale=1.0 / dist.rate))
        )
    if isinstance(dist, LogNormal):
        positive = arr[arr > 0]
        if positive.size != arr.size:
            return -math.inf
        return float(
            np.sum(
                sps.lognorm.logpdf(
                    positive, s=dist.sigma, scale=math.exp(dist.mu)
                )
            )
        )
    raise TypeError(f"no likelihood for {type(dist).__name__}")


#: Relative spread below which a sample is treated as constant.
_CONSTANT_CV = 1e-3


def fit_best(samples: Sequence[float]) -> FiringDistribution:
    """Pick the best of {Deterministic, Exponential, Erlang, LogNormal}.

    Near-constant samples (cv < 0.1 %) short-circuit to Deterministic;
    the continuous candidates compete by AIC (2·params − 2·logL).
    """
    arr = _validate(samples)
    mean = float(arr.mean())
    if mean <= 0:
        return Deterministic(0.0)
    cv = float(arr.std(ddof=1)) / mean
    if cv < _CONSTANT_CV:
        return fit_deterministic(arr)

    candidates: list[tuple[float, FiringDistribution]] = []
    fitters = (
        (fit_exponential, 1),
        (fit_erlang, 2),
        (fit_lognormal, 2),
    )
    for fitter, n_params in fitters:
        try:
            dist = fitter(arr)
        except ValueError:
            continue
        ll = _log_likelihood(dist, arr)
        if math.isfinite(ll):
            candidates.append((2.0 * n_params - 2.0 * ll, dist))
    if not candidates:
        return fit_deterministic(arr)
    candidates.sort(key=lambda pair: pair[0])
    return candidates[0][1]
