"""Discrete-time Markov chains.

Companion to :mod:`repro.markov.ctmc`; used for embedded jump chains
and for the DTMC view of slotted sensor protocols in the examples.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DTMC"]


class DTMC:
    """A finite discrete-time Markov chain.

    Parameters
    ----------
    P:
        Row-stochastic transition matrix.
    labels:
        Optional state labels, index-aligned.
    """

    def __init__(
        self, P: np.ndarray, labels: list | None = None, atol: float = 1e-9
    ) -> None:
        P = np.asarray(P, dtype=float)
        if P.ndim != 2 or P.shape[0] != P.shape[1]:
            raise ValueError(f"P must be square, got shape {P.shape}")
        if np.any(P < -atol):
            raise ValueError("transition probabilities must be >= 0")
        if np.any(np.abs(P.sum(axis=1) - 1.0) > atol):
            raise ValueError("transition matrix rows must sum to 1")
        self.P = P
        self.n = P.shape[0]
        self.labels = list(labels) if labels is not None else list(range(self.n))
        if len(self.labels) != self.n:
            raise ValueError("labels length mismatch")
        self._index = {lab: i for i, lab in enumerate(self.labels)}

    def index_of(self, label) -> int:
        """State index of ``label``."""
        return self._index[label]

    # ------------------------------------------------------------------
    # Stationary behaviour
    # ------------------------------------------------------------------
    def stationary(self) -> np.ndarray:
        """Stationary distribution π = πP (linear solve, eig fallback)."""
        A = (self.P.T - np.eye(self.n)).copy()
        A[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            w, v = np.linalg.eig(self.P.T)
            i = int(np.argmin(np.abs(w - 1.0)))
            pi = np.real(v[:, i])
        pi = np.clip(pi, 0.0, None)
        s = pi.sum()
        if s <= 0:
            raise ValueError("could not normalise stationary distribution")
        return pi / s

    def step(self, p: np.ndarray, k: int = 1) -> np.ndarray:
        """Distribution after ``k`` steps from ``p``."""
        p = np.asarray(p, dtype=float)
        out = p.copy()
        for _ in range(k):
            out = out @ self.P
        return out

    # ------------------------------------------------------------------
    # Absorption analysis
    # ------------------------------------------------------------------
    def absorbing_states(self, atol: float = 1e-12) -> list[int]:
        """Indices with P[i, i] = 1."""
        return [
            i for i in range(self.n) if abs(self.P[i, i] - 1.0) <= atol
        ]

    def absorption_times(self) -> np.ndarray:
        """Expected steps to absorption from each transient state.

        Returns the fundamental-matrix solution ``t = (I - T)^-1 1``
        aligned with the full state vector (absorbing entries are 0).
        Raises ``ValueError`` if the chain has no absorbing states.
        """
        absorbing = set(self.absorbing_states())
        if not absorbing:
            raise ValueError("chain has no absorbing states")
        transient = [i for i in range(self.n) if i not in absorbing]
        if not transient:
            return np.zeros(self.n)
        T = self.P[np.ix_(transient, transient)]
        t = np.linalg.solve(np.eye(len(transient)) - T, np.ones(len(transient)))
        out = np.zeros(self.n)
        for pos, i in enumerate(transient):
            out[i] = t[pos]
        return out

    def absorption_probabilities(self) -> np.ndarray:
        """B[i, j] = P(absorbed in absorbing state j | start transient i).

        Returned over the full index grid: rows = all states (absorbing
        rows are unit vectors onto themselves), columns = absorbing
        states in index order.
        """
        absorbing = self.absorbing_states()
        if not absorbing:
            raise ValueError("chain has no absorbing states")
        transient = [i for i in range(self.n) if i not in set(absorbing)]
        R = self.P[np.ix_(transient, absorbing)]
        T = self.P[np.ix_(transient, transient)]
        B_t = np.linalg.solve(np.eye(len(transient)) - T, R)
        B = np.zeros((self.n, len(absorbing)))
        for pos, i in enumerate(transient):
            B[i, :] = B_t[pos, :]
        for col, j in enumerate(absorbing):
            B[j, col] = 1.0
        return B

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DTMC(n={self.n})"
