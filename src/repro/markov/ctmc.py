"""Continuous-time Markov chains: steady state and transient analysis.

The Markov side of the paper's comparison.  Provides:

* :class:`CTMC` — wraps a generator matrix ``Q`` with validation;
* :meth:`CTMC.steady_state` — exact stationary distribution via a
  replaced-normalisation linear solve (with an eigenvector fallback for
  reducible chains);
* :meth:`CTMC.transient` — transient distribution by uniformization
  (Jensen's method) with adaptive truncation;
* :meth:`CTMC.mean_first_passage` — expected hitting times;
* :meth:`CTMC.embedded_dtmc` — the jump chain.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import linalg as sla

__all__ = ["CTMC"]


class CTMC:
    """A finite continuous-time Markov chain.

    Parameters
    ----------
    Q:
        Generator matrix: off-diagonal ≥ 0, rows sum to 0.
    labels:
        Optional state labels (any hashables), index-aligned.
    atol:
        Validation tolerance.
    """

    def __init__(
        self,
        Q: np.ndarray,
        labels: list | None = None,
        atol: float = 1e-9,
    ) -> None:
        Q = np.asarray(Q, dtype=float)
        if Q.ndim != 2 or Q.shape[0] != Q.shape[1]:
            raise ValueError(f"Q must be square, got shape {Q.shape}")
        off = Q.copy()
        np.fill_diagonal(off, 0.0)
        if np.any(off < -atol):
            raise ValueError("off-diagonal generator entries must be >= 0")
        if np.any(np.abs(Q.sum(axis=1)) > max(atol, atol * np.abs(Q).max())):
            raise ValueError("generator rows must sum to zero")
        self.Q = Q
        self.n = Q.shape[0]
        if labels is not None and len(labels) != self.n:
            raise ValueError(
                f"labels length {len(labels)} != number of states {self.n}"
            )
        self.labels = list(labels) if labels is not None else list(range(self.n))
        self._index = {lab: i for i, lab in enumerate(self.labels)}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_rates(
        cls, rates: dict[tuple, float], labels: list | None = None
    ) -> "CTMC":
        """Build from a ``{(from_label, to_label): rate}`` dict."""
        if labels is None:
            seen: list = []
            for (a, b) in rates:
                for lab in (a, b):
                    if lab not in seen:
                        seen.append(lab)
            labels = seen
        index = {lab: i for i, lab in enumerate(labels)}
        n = len(labels)
        Q = np.zeros((n, n))
        for (a, b), rate in rates.items():
            if rate < 0:
                raise ValueError(f"rate {a}->{b} must be >= 0, got {rate}")
            if a == b:
                continue
            Q[index[a], index[b]] += rate
        np.fill_diagonal(Q, -Q.sum(axis=1))
        return cls(Q, labels)

    def index_of(self, label) -> int:
        """State index of ``label``."""
        return self._index[label]

    # ------------------------------------------------------------------
    # Steady state
    # ------------------------------------------------------------------
    def steady_state(self) -> np.ndarray:
        """Stationary distribution π with πQ = 0, Σπ = 1.

        Solves the linear system with one balance equation replaced by
        the normalisation; falls back to the null-space eigenvector for
        singular systems (reducible chains pick the terminal class
        reachable mass — callers with reducible chains should restrict
        to a recurrent class first).
        """
        A = self.Q.T.copy()
        A[-1, :] = 1.0
        b = np.zeros(self.n)
        b[-1] = 1.0
        try:
            pi = np.linalg.solve(A, b)
        except np.linalg.LinAlgError:
            pi = self._nullspace_pi()
        if np.any(pi < -1e-8):
            pi = self._nullspace_pi()
        pi = np.clip(pi, 0.0, None)
        total = pi.sum()
        if total <= 0:
            raise ValueError("could not normalise stationary distribution")
        return pi / total

    def _nullspace_pi(self) -> np.ndarray:
        w, v = sla.eig(self.Q.T)
        i = int(np.argmin(np.abs(w)))
        pi = np.real(v[:, i])
        if pi.sum() < 0:
            pi = -pi
        return pi

    def probability(self, pi: np.ndarray, label) -> float:
        """π[label]."""
        return float(pi[self._index[label]])

    # ------------------------------------------------------------------
    # Transient analysis (uniformization)
    # ------------------------------------------------------------------
    def transient(
        self,
        p0: np.ndarray,
        t: float,
        epsilon: float = 1e-10,
    ) -> np.ndarray:
        """Distribution at time ``t`` from initial distribution ``p0``.

        Uses Jensen's uniformization: ``P(t) = Σ_k Poisson(Λt; k)·Pᵏ``
        with ``P = I + Q/Λ``; the series is truncated once the Poisson
        tail mass drops below ``epsilon``.
        """
        p0 = np.asarray(p0, dtype=float)
        if p0.shape != (self.n,):
            raise ValueError(f"p0 must have shape ({self.n},), got {p0.shape}")
        if not math.isclose(float(p0.sum()), 1.0, rel_tol=1e-8, abs_tol=1e-10):
            raise ValueError("p0 must sum to 1")
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        if t == 0:
            return p0.copy()
        lam = float(np.max(-np.diag(self.Q)))
        if lam <= 0:
            return p0.copy()  # absorbing-everything chain
        lam *= 1.02  # mild inflation for numerical headroom
        P = np.eye(self.n) + self.Q / lam
        x = lam * t
        # Poisson weights, built iteratively to avoid overflow.
        k = 0
        log_w = -x  # log Poisson(x; 0)
        w = math.exp(log_w) if log_w > -700 else 0.0
        term = p0.copy()
        acc = w * term
        cum = w
        while cum < 1.0 - epsilon:
            k += 1
            term = term @ P
            log_w += math.log(x) - math.log(k)
            w = math.exp(log_w) if log_w > -700 else 0.0
            acc += w * term
            cum += w
            if k > 100 * (x + 10):
                break  # defensive truncation
        return np.clip(acc, 0.0, None) / max(acc.sum(), 1e-300)

    def integrated_transient(
        self,
        p0: np.ndarray,
        t: float,
        epsilon: float = 1e-10,
    ) -> np.ndarray:
        """``∫₀ᵗ p(s) ds`` — expected time in each state over [0, t].

        Uniformization identity: with ``P = I + Q/Λ`` and
        ``v_k = p0·Pᵏ``,

        .. math::

            \\int_0^t p(s)\\,ds = \\frac{1}{\\Lambda}
                \\sum_{k \\ge 0} v_k \\; P(N_{\\Lambda t} > k)

        because ``∫₀ᵗ e^{-Λs}(Λs)^k/k!\\,ds = P(N_{Λt} ≥ k+1)/Λ``.
        The entries sum to ``t`` (total time is conserved).
        """
        p0 = np.asarray(p0, dtype=float)
        if p0.shape != (self.n,):
            raise ValueError(f"p0 must have shape ({self.n},), got {p0.shape}")
        if t < 0:
            raise ValueError(f"t must be >= 0, got {t}")
        if t == 0:
            return np.zeros(self.n)
        lam = float(np.max(-np.diag(self.Q)))
        if lam <= 0:
            return p0 * t  # no transitions ever happen
        lam *= 1.02
        P = np.eye(self.n) + self.Q / lam
        x = lam * t
        k = 0
        log_w = -x
        w = math.exp(log_w) if log_w > -700 else 0.0
        cdf = w  # P(N <= k)
        term = p0.copy()
        acc = term * (1.0 - cdf)
        while (1.0 - cdf) * max(x - k, 1.0) > epsilon and k < 100 * (x + 10):
            k += 1
            term = term @ P
            log_w += math.log(x) - math.log(k)
            w = math.exp(log_w) if log_w > -700 else 0.0
            cdf += w
            acc += term * (1.0 - cdf)
        result = acc / lam
        # Normalise tiny truncation error so entries sum to exactly t.
        total = result.sum()
        if total > 0:
            result *= t / total
        return np.clip(result, 0.0, None)

    def accumulated_reward(
        self,
        p0: np.ndarray,
        t: float,
        rewards: dict,
        epsilon: float = 1e-10,
    ) -> float:
        """Expected accumulated reward ``E[∫₀ᵗ r(X_s) ds]``.

        With rewards = power draws this is the *transient* energy over
        [0, t] — the Markov-reward counterpart of Eq. (7), exact rather
        than steady-state-approximate.  Missing labels count as zero.
        """
        occupancy = self.integrated_transient(p0, t, epsilon)
        total = 0.0
        for lab, r in rewards.items():
            total += float(occupancy[self._index[lab]]) * float(r)
        return total

    # ------------------------------------------------------------------
    # Derived chains and metrics
    # ------------------------------------------------------------------
    def embedded_dtmc(self) -> np.ndarray:
        """Jump-chain transition matrix (absorbing states self-loop)."""
        P = np.zeros_like(self.Q)
        for i in range(self.n):
            out = -self.Q[i, i]
            if out <= 0:
                P[i, i] = 1.0
            else:
                P[i, :] = self.Q[i, :] / out
                P[i, i] = 0.0
        return P

    def holding_times(self) -> np.ndarray:
        """Expected sojourn time per state (inf for absorbing states)."""
        d = -np.diag(self.Q)
        with np.errstate(divide="ignore"):
            return np.where(d > 0, 1.0 / d, np.inf)

    def mean_first_passage(self, target) -> np.ndarray:
        """Expected time to hit ``target`` from every state.

        Solves ``Q_B h = -1`` over the non-target states B.
        """
        j = self._index[target]
        keep = [i for i in range(self.n) if i != j]
        QB = self.Q[np.ix_(keep, keep)]
        h = np.linalg.solve(QB, -np.ones(len(keep)))
        out = np.zeros(self.n)
        for pos, i in enumerate(keep):
            out[i] = h[pos]
        return out

    def expected_reward_rate(self, pi: np.ndarray, rewards: dict) -> float:
        """Long-run reward rate Σ π_s · reward(s).

        ``rewards`` maps labels to rates; missing labels count as zero.
        This is exactly the paper's Eq. (6)/(7) energy computation with
        rewards = power draws.
        """
        total = 0.0
        for lab, r in rewards.items():
            total += float(pi[self._index[lab]]) * float(r)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CTMC(n={self.n})"
