"""The paper's supplementary-variable Markov CPU model (Eqs. 1–6).

Section III-A models a CPU with Poisson arrivals (rate λ), exponential
service (rate μ), a deterministic idle timeout *T*
(``Power_Down_Threshold``) and a deterministic power-up delay *D*
(``Power_Up_Delay``).  The deterministic transitions break the Markov
property; Cox's method of supplementary variables (the paper's
reference [15]) yields the stationary equations the paper prints:

.. math::

    Z        &= e^{\\lambda T} + (1-\\rho)(1 - e^{-\\lambda D})
                + \\rho\\lambda D \\\\
    p_s      &= (1-\\rho) / Z \\\\
    p_i      &= (1-\\rho)(e^{\\lambda T} - 1) / Z \\\\
    p_u      &= (1-\\rho)(1 - e^{-\\lambda D}) / Z \\\\
    G_0(1)   &= \\rho (e^{\\lambda T} + \\lambda D) / Z \\\\
    L(1)     &= \\frac{\\rho}{1-\\rho}\\,
                \\frac{e^{\\lambda T} + \\tfrac12 (1-\\rho)\\lambda^2 D^2
                + (2-\\rho)\\lambda D}{Z}

with ρ = λ/μ.  The four probabilities sum to one (verified by a
property test), and the total-energy formula (Eq. 6) multiplies the
state-weighted power by the effective horizon ``(N + L(1)/2)/λ`` for
``N`` jobs.

This model is *exact* for its own assumptions but, as Section IV shows,
deviates from the event-driven ground truth when the deterministic
power-up delay dominates (Fig. 6/9: D = 10 s) — reproducing that
failure is experiment E3/E6/E9.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["MarkovCPUSteadyState", "SupplementaryVariableCPUModel"]


@dataclass(frozen=True)
class MarkovCPUSteadyState:
    """Steady-state probabilities of the four CPU power states.

    Attributes mirror the paper's symbols: ``standby`` = p_s,
    ``idle`` = p_i, ``powerup`` = p_u, ``active`` = G₀(1), and
    ``mean_jobs`` = L(1).
    """

    standby: float
    idle: float
    powerup: float
    active: float
    mean_jobs: float

    def as_dict(self) -> dict[str, float]:
        """The four state probabilities keyed by canonical state name."""
        return {
            "standby": self.standby,
            "idle": self.idle,
            "powerup": self.powerup,
            "active": self.active,
        }

    def total(self) -> float:
        """Σ of the four probabilities (≡ 1 up to float error)."""
        return self.standby + self.idle + self.powerup + self.active


class SupplementaryVariableCPUModel:
    """Closed-form CPU energy model of Section III-A.

    Parameters
    ----------
    arrival_rate:
        λ, jobs per second (Poisson).
    service_rate:
        μ, jobs per second (exponential service, mean 1/μ).  Must give
        ρ = λ/μ < 1.
    power_down_threshold:
        T ≥ 0, seconds of continuous idleness before standby.
    power_up_delay:
        D ≥ 0, seconds of deterministic wake-up.
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        power_down_threshold: float,
        power_up_delay: float,
    ) -> None:
        if arrival_rate <= 0 or service_rate <= 0:
            raise ValueError("arrival_rate and service_rate must be > 0")
        if power_down_threshold < 0 or power_up_delay < 0:
            raise ValueError("threshold and delay must be >= 0")
        rho = arrival_rate / service_rate
        if rho >= 1:
            raise ValueError(f"unstable system: rho = {rho} >= 1")
        self.lam = float(arrival_rate)
        self.mu = float(service_rate)
        self.T = float(power_down_threshold)
        self.D = float(power_up_delay)
        self.rho = rho

    # ------------------------------------------------------------------
    # Eqs. (1)–(5)
    # ------------------------------------------------------------------
    def _denominator(self) -> float:
        lam, T, D, rho = self.lam, self.T, self.D, self.rho
        return (
            math.exp(lam * T)
            + (1.0 - rho) * (1.0 - math.exp(-lam * D))
            + rho * lam * D
        )

    def steady_state(self) -> MarkovCPUSteadyState:
        """Evaluate Eqs. (1)–(5)."""
        lam, T, D, rho = self.lam, self.T, self.D, self.rho
        Z = self._denominator()
        ps = (1.0 - rho) / Z
        pi = (1.0 - rho) * (math.exp(lam * T) - 1.0) / Z
        pu = (1.0 - rho) * (1.0 - math.exp(-lam * D)) / Z
        g0 = rho * (math.exp(lam * T) + lam * D) / Z
        l1 = (
            rho
            / (1.0 - rho)
            * (
                math.exp(lam * T)
                + 0.5 * (1.0 - rho) * (lam * D) ** 2
                + (2.0 - rho) * lam * D
            )
            / Z
        )
        return MarkovCPUSteadyState(
            standby=ps, idle=pi, powerup=pu, active=g0, mean_jobs=l1
        )

    # ------------------------------------------------------------------
    # Eq. (6)
    # ------------------------------------------------------------------
    def effective_horizon(self, n_jobs: float) -> float:
        """The Eq. (6) time factor ``(N + L(1)/2)/λ`` for ``N`` jobs."""
        ss = self.steady_state()
        return (n_jobs + ss.mean_jobs / 2.0) / self.lam

    def mean_power(self, powers: dict[str, float]) -> float:
        """State-probability-weighted power (W or mW, caller's units).

        ``powers`` maps ``{"standby", "idle", "powerup", "active"}`` to
        power draws; missing states default to 0.
        """
        ss = self.steady_state()
        return (
            ss.standby * powers.get("standby", 0.0)
            + ss.idle * powers.get("idle", 0.0)
            + ss.powerup * powers.get("powerup", 0.0)
            + ss.active * powers.get("active", 0.0)
        )

    def energy(self, powers: dict[str, float], n_jobs: float) -> float:
        """Eq. (6): total energy for ``n_jobs`` arrivals.

        Units follow ``powers``: mW inputs give mJ out, W give J.
        """
        if n_jobs < 0:
            raise ValueError(f"n_jobs must be >= 0, got {n_jobs}")
        return self.mean_power(powers) * self.effective_horizon(n_jobs)

    def energy_over_time(self, powers: dict[str, float], duration: float) -> float:
        """Energy over a fixed wall-clock ``duration`` (the figures' usage).

        The figures plot energy for a 1000 s run at λ = 1/s; the natural
        reading is mean power × duration, equivalent to Eq. (6) with
        ``N = λ·duration`` up to the (tiny) L(1)/2 end-correction.
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        return self.mean_power(powers) * duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SupplementaryVariableCPUModel(lam={self.lam}, mu={self.mu}, "
            f"T={self.T}, D={self.D})"
        )
