"""Precision-driven simulation: run until the answer is tight enough.

The paper closes on the method's main cost: "one drawback of Petri net
models is the relatively long simulation time to achieve steady state
probabilities ... Depending on the desired accuracy, the simulation
time can be even longer."  This module makes that trade explicit: ask
for a relative confidence-interval half-width and let the runner pick
the horizon, doubling until the batch-means interval is tight enough.

Replications are sequential with increasing horizons (not averaged
across runs): batch means over one long run converge faster per event
than many short runs because each short run re-pays the warm-up.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from .marking import MarkingView
from .net import PetriNet
from .simulator import Simulation, SimulationResult
from .statistics import ConfidenceInterval

__all__ = ["PrecisionResult", "simulate_to_precision"]


@dataclass
class PrecisionResult:
    """Outcome of an adaptive-precision run.

    Attributes
    ----------
    result:
        The final (longest) run's :class:`SimulationResult`.
    interval:
        The batch-means confidence interval of the tracked signal.
    horizon:
        The horizon of the final run.
    attempts:
        Number of runs executed (horizon doubled between them).
    achieved:
        Whether the requested precision was met (False = gave up at
        ``max_horizon``; the best interval is still returned).
    """

    result: SimulationResult
    interval: ConfidenceInterval
    horizon: float
    attempts: int
    achieved: bool

    @property
    def estimate(self) -> float:
        """Point estimate of the tracked signal."""
        return self.interval.mean


def simulate_to_precision(
    net: PetriNet,
    signal: Callable[[MarkingView], float],
    rel_half_width: float = 0.05,
    confidence: float = 0.95,
    initial_horizon: float = 1_000.0,
    max_horizon: float = 1_000_000.0,
    warmup_fraction: float = 0.1,
    n_batches: int = 20,
    seed: int | None = None,
    initial_marking: Mapping[str, Any] | None = None,
) -> PrecisionResult:
    """Simulate ``net`` until ``signal``'s CI is relatively tight.

    Parameters
    ----------
    net:
        The net to simulate (not mutated; fresh runs per attempt).
    signal:
        Marking functional whose long-run mean is wanted (e.g.
        ``lambda v: float(v.count("CPU_Buffer"))``).
    rel_half_width:
        Target |half-width / mean| of the batch-means interval.
    initial_horizon / max_horizon:
        First horizon and give-up bound; horizons double in between.
    warmup_fraction:
        Fraction of each horizon discarded as warm-up.
    seed:
        Seed of the *first* attempt; attempt ``i`` uses ``seed + i`` so
        successive runs are independent.

    Returns
    -------
    PrecisionResult
        With ``achieved=False`` when ``max_horizon`` was reached first.
    """
    if not 0 < rel_half_width < 1:
        raise ValueError("rel_half_width must be in (0, 1)")
    if initial_horizon <= 0 or max_horizon < initial_horizon:
        raise ValueError("need 0 < initial_horizon <= max_horizon")
    if not 0 <= warmup_fraction < 1:
        raise ValueError("warmup_fraction must be in [0, 1)")

    horizon = float(initial_horizon)
    attempts = 0
    best: PrecisionResult | None = None
    while True:
        attempts += 1
        warmup = horizon * warmup_fraction
        sim = Simulation(
            net,
            seed=None if seed is None else seed + attempts - 1,
            warmup=warmup,
            initial_marking=initial_marking,
        )
        sim.track_signal("target", signal, horizon=horizon, n_batches=n_batches)
        result = sim.run(horizon)
        interval = result.batch_means["target"].interval(confidence)
        achieved = interval.relative_half_width() <= rel_half_width
        best = PrecisionResult(
            result=result,
            interval=interval,
            horizon=horizon,
            attempts=attempts,
            achieved=achieved,
        )
        if achieved:
            return best
        if horizon >= max_horizon:
            return best
        horizon = min(horizon * 2.0, max_horizon)
