"""Observers: firing traces and state-dwell recording.

Observers plug into :meth:`repro.core.simulator.Simulation.add_observer`
and receive ``(time, transition, consumed, produced)`` for every firing.

:class:`StateDwellRecorder` is the bridge to energy accounting: it maps
the marking to a named *power state* after every firing and accumulates
the dwell time per state — the Eq. (7)/(8) state-time ledger.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

from .marking import MarkingView
from .tokens import Token

__all__ = ["FiringRecord", "FiringTrace", "StateDwellRecorder", "TokenFlowCounter"]


@dataclass(frozen=True)
class FiringRecord:
    """One firing, as recorded by :class:`FiringTrace`."""

    time: float
    transition: str
    consumed: dict[str, int]
    produced: int


class FiringTrace:
    """Keeps an in-memory log of firings (optionally bounded).

    Parameters
    ----------
    max_records:
        Oldest records are dropped beyond this bound (``None`` keeps all;
        beware long runs).
    transitions:
        Only record these transitions (``None`` records everything).
    """

    def __init__(
        self,
        max_records: int | None = None,
        transitions: Sequence[str] | None = None,
    ) -> None:
        self.max_records = max_records
        self._filter = frozenset(transitions) if transitions is not None else None
        self.records: list[FiringRecord] = []

    def __call__(
        self,
        time: float,
        transition: str,
        consumed: dict[str, list[Token]],
        produced: list[Token],
    ) -> None:
        if self._filter is not None and transition not in self._filter:
            return
        self.records.append(
            FiringRecord(
                time,
                transition,
                {place: len(toks) for place, toks in consumed.items()},
                len(produced),
            )
        )
        if self.max_records is not None and len(self.records) > self.max_records:
            del self.records[0 : len(self.records) - self.max_records]

    def count(self, transition: str) -> int:
        """Number of recorded firings of ``transition``."""
        return sum(1 for r in self.records if r.transition == transition)

    def times(self, transition: str) -> list[float]:
        """Firing times of ``transition``."""
        return [r.time for r in self.records if r.transition == transition]

    def interfiring_times(self, transition: str) -> list[float]:
        """Gaps between consecutive firings of ``transition``."""
        ts = self.times(transition)
        return [b - a for a, b in zip(ts, ts[1:])]


class StateDwellRecorder:
    """Accumulates time per named state, where the state is derived from
    the marking by a classifier function.

    The classifier is evaluated after every firing; between firings the
    state is constant, so dwell times are exact.  Used by the energy
    layer: ``classifier`` maps markings to power-state names and the
    recorded dwell ledger feeds
    :class:`repro.energy.accounting.EnergyAccount`.

    The recorder needs to see marking changes, so it is attached to a
    simulation with :meth:`attach`.
    """

    def __init__(
        self,
        classifier: Callable[[MarkingView], str],
        warmup: float = 0.0,
    ) -> None:
        self.classifier = classifier
        self.warmup = float(warmup)
        self.dwell: dict[str, float] = {}
        self.visits: dict[str, int] = {}
        self._last_time = 0.0
        self._last_state: str | None = None
        self._view: MarkingView | None = None

    def attach(self, sim: "Any") -> None:
        """Register on ``sim`` (a :class:`repro.core.simulator.Simulation`)."""
        self._view = sim._view
        self._last_state = self.classifier(self._view)
        self.visits[self._last_state] = 1
        sim.add_observer(self._on_fire)

    def _on_fire(
        self,
        time: float,
        transition: str,
        consumed: dict[str, list[Token]],
        produced: list[Token],
    ) -> None:
        assert self._view is not None, "attach() must be called first"
        self._credit(time)
        new_state = self.classifier(self._view)
        if new_state != self._last_state:
            self.visits[new_state] = self.visits.get(new_state, 0) + 1
            self._last_state = new_state

    def _credit(self, now: float) -> None:
        lo = max(self._last_time, self.warmup)
        if now > lo and self._last_state is not None:
            self.dwell[self._last_state] = (
                self.dwell.get(self._last_state, 0.0) + (now - lo)
            )
        self._last_time = max(self._last_time, now)

    def finalize(self, end_time: float) -> None:
        """Credit the final dwell interval up to ``end_time``."""
        self._credit(end_time)

    def fractions(self) -> dict[str, float]:
        """Dwell time per state normalised to sum to 1."""
        total = sum(self.dwell.values())
        if total <= 0:
            return {}
        return {state: t / total for state, t in self.dwell.items()}

    def total_time(self) -> float:
        """Total credited (post-warm-up) time."""
        return sum(self.dwell.values())


class TokenFlowCounter:
    """Counts tokens flowing into selected places (event/job counters)."""

    def __init__(self, places: Sequence[str]) -> None:
        self.counts: dict[str, int] = {p: 0 for p in places}

    def __call__(
        self,
        time: float,
        transition: str,
        consumed: dict[str, list[Token]],
        produced: list[Token],
    ) -> None:
        # Produced tokens do not carry their destination here; flows are
        # counted from the consumed side of downstream transitions, so
        # count consumption per place instead.
        for place, tokens in consumed.items():
            if place in self.counts:
                self.counts[place] += len(tokens)
