"""Composable guard algebra for global (marking) and local (token) guards.

Table XI of the paper writes global guards as marking predicates such as
``(#Buffer == 0) && (#Idle > 0)``.  This module gives those expressions a
first-class, composable representation::

    from repro.core.guards import tokens_eq, tokens_gt

    guard = tokens_eq("Buffer", 0) & tokens_gt("Idle", 0)

Guards support ``&``, ``|`` and ``~`` and render back to the paper's
syntax via ``str()``, which makes model dumps directly comparable with
Table XI.

Local guards filter individual tokens by colour (the paper's
``dvs1 == 1.0`` style conditions); see :func:`color_eq` and friends.

Guards are evaluated against a :class:`~repro.core.marking.Marking`
through the tiny protocol ``marking.count(place_name)``, so they are
decoupled from the engine internals and trivially testable.
"""

from __future__ import annotations

import operator
from collections.abc import Callable
from typing import Any

from .errors import GuardError
from .tokens import Token

__all__ = [
    "Guard",
    "MarkingPredicate",
    "TrueGuard",
    "FalseGuard",
    "And",
    "Or",
    "Not",
    "TokenCountGuard",
    "FunctionGuard",
    "TRUE",
    "FALSE",
    "tokens_eq",
    "tokens_ne",
    "tokens_gt",
    "tokens_ge",
    "tokens_lt",
    "tokens_le",
    "tokens_between",
    "color_eq",
    "color_in",
    "color_pred",
]


class Guard:
    """Abstract boolean predicate over a marking."""

    def evaluate(self, marking: "MarkingLike") -> bool:
        """Evaluate against ``marking``; must return a ``bool``."""
        raise NotImplementedError

    def __call__(self, marking: "MarkingLike") -> bool:
        result = self.evaluate(marking)
        if not isinstance(result, (bool,)):
            raise GuardError(
                f"guard {self!s} returned non-boolean {result!r}"
            )
        return result

    # Composition -------------------------------------------------------
    def __and__(self, other: "Guard") -> "Guard":
        return And(self, other)

    def __or__(self, other: "Guard") -> "Guard":
        return Or(self, other)

    def __invert__(self) -> "Guard":
        return Not(self)

    def places(self) -> frozenset[str]:
        """Names of places this guard depends on (for change tracking)."""
        return frozenset()

    def dependencies(self) -> frozenset[str] | None:
        """Exhaustive dependency set, or ``None`` when unknown.

        ``None`` tells the engine the guard may read *any* place, so
        the transition must be re-evaluated after every firing.  Only
        guards whose reads are fully introspectable (the built-in
        token-count guards and their compositions) return a set; the
        default is the conservative ``None`` so user-defined guards can
        never be starved of re-evaluation.
        """
        return None


class MarkingLike:
    """Protocol stub: anything with ``count(place_name) -> int``."""

    def count(self, place: str) -> int:  # pragma: no cover - protocol
        raise NotImplementedError


class TrueGuard(Guard):
    """Always true (the default guard)."""

    def evaluate(self, marking: MarkingLike) -> bool:
        return True

    def dependencies(self) -> frozenset[str] | None:
        return frozenset()

    def __str__(self) -> str:
        return "true"


class FalseGuard(Guard):
    """Always false (useful to disable a transition in ablations)."""

    def evaluate(self, marking: MarkingLike) -> bool:
        return False

    def dependencies(self) -> frozenset[str] | None:
        return frozenset()

    def __str__(self) -> str:
        return "false"


TRUE = TrueGuard()
FALSE = FalseGuard()


def _combine_dependencies(
    left: Guard, right: Guard
) -> frozenset[str] | None:
    """Union of two dependency sets; unknown on either side wins."""
    a, b = left.dependencies(), right.dependencies()
    if a is None or b is None:
        return None
    return a | b


class And(Guard):
    """Conjunction of two guards (short-circuiting)."""

    def __init__(self, left: Guard, right: Guard) -> None:
        self.left = left
        self.right = right

    def evaluate(self, marking: MarkingLike) -> bool:
        return self.left(marking) and self.right(marking)

    def places(self) -> frozenset[str]:
        return self.left.places() | self.right.places()

    def dependencies(self) -> frozenset[str] | None:
        return _combine_dependencies(self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} && {self.right})"


class Or(Guard):
    """Disjunction of two guards (short-circuiting)."""

    def __init__(self, left: Guard, right: Guard) -> None:
        self.left = left
        self.right = right

    def evaluate(self, marking: MarkingLike) -> bool:
        return self.left(marking) or self.right(marking)

    def places(self) -> frozenset[str]:
        return self.left.places() | self.right.places()

    def dependencies(self) -> frozenset[str] | None:
        return _combine_dependencies(self.left, self.right)

    def __str__(self) -> str:
        return f"({self.left} || {self.right})"


class Not(Guard):
    """Negation of a guard."""

    def __init__(self, inner: Guard) -> None:
        self.inner = inner

    def evaluate(self, marking: MarkingLike) -> bool:
        return not self.inner(marking)

    def places(self) -> frozenset[str]:
        return self.inner.places()

    def dependencies(self) -> frozenset[str] | None:
        return self.inner.dependencies()

    def __str__(self) -> str:
        return f"!({self.inner})"


_OP_SYMBOL = {
    operator.eq: "==",
    operator.ne: "!=",
    operator.gt: ">",
    operator.ge: ">=",
    operator.lt: "<",
    operator.le: "<=",
}


class TokenCountGuard(Guard):
    """Compare ``#place`` against a constant with a comparison operator."""

    def __init__(
        self,
        place: str,
        op: Callable[[int, int], bool],
        threshold: int,
    ) -> None:
        self.place = place
        self.op = op
        self.threshold = int(threshold)

    def evaluate(self, marking: MarkingLike) -> bool:
        return bool(self.op(marking.count(self.place), self.threshold))

    def places(self) -> frozenset[str]:
        return frozenset({self.place})

    def dependencies(self) -> frozenset[str] | None:
        return frozenset({self.place})

    def __str__(self) -> str:
        sym = _OP_SYMBOL.get(self.op, repr(self.op))
        return f"(#{self.place} {sym} {self.threshold})"


class FunctionGuard(Guard):
    """Wrap an arbitrary ``marking -> bool`` callable.

    ``depends_on`` should list every place the callable reads; it is
    used only for introspection/debugging.  Correctness never depends
    on it: :meth:`dependencies` reports *unknown* for function guards,
    so the engine re-evaluates the owning transition after every
    firing instead of trusting the declared list.
    """

    def __init__(
        self,
        fn: Callable[[MarkingLike], bool],
        description: str = "<fn>",
        depends_on: frozenset[str] = frozenset(),
    ) -> None:
        self.fn = fn
        self.description = description
        self._depends_on = frozenset(depends_on)

    def evaluate(self, marking: MarkingLike) -> bool:
        try:
            return bool(self.fn(marking))
        except Exception as exc:  # noqa: BLE001 - rewrap with context
            raise GuardError(
                f"guard {self.description!r} raised: {exc!r}"
            ) from exc

    def places(self) -> frozenset[str]:
        return self._depends_on

    def __str__(self) -> str:
        return self.description


# ----------------------------------------------------------------------
# Global-guard constructors (the Table XI vocabulary)
# ----------------------------------------------------------------------

def tokens_eq(place: str, n: int) -> Guard:
    """``#place == n``"""
    return TokenCountGuard(place, operator.eq, n)


def tokens_ne(place: str, n: int) -> Guard:
    """``#place != n``"""
    return TokenCountGuard(place, operator.ne, n)


def tokens_gt(place: str, n: int) -> Guard:
    """``#place > n``"""
    return TokenCountGuard(place, operator.gt, n)


def tokens_ge(place: str, n: int) -> Guard:
    """``#place >= n``"""
    return TokenCountGuard(place, operator.ge, n)


def tokens_lt(place: str, n: int) -> Guard:
    """``#place < n``"""
    return TokenCountGuard(place, operator.lt, n)


def tokens_le(place: str, n: int) -> Guard:
    """``#place <= n``"""
    return TokenCountGuard(place, operator.le, n)


def tokens_between(place: str, lo: int, hi: int) -> Guard:
    """``lo <= #place <= hi``"""
    if lo > hi:
        raise ValueError(f"need lo <= hi, got {lo} > {hi}")
    return tokens_ge(place, lo) & tokens_le(place, hi)


# ----------------------------------------------------------------------
# Local-guard (token filter) constructors
# ----------------------------------------------------------------------

def color_eq(value: Any) -> Callable[[Token], bool]:
    """Token filter: colour equals ``value`` (the paper's ``dvs1 == 1.0``)."""

    def _filter(token: Token) -> bool:
        return token.color == value

    _filter.__name__ = f"color_eq_{value!r}"
    # Introspection hook: lets static compilers (repro.core.fast) see
    # the accepted colour set instead of treating the closure as opaque.
    _filter.accepted_colors = frozenset({value})
    return _filter


def color_in(
    values: set[Any] | frozenset[Any] | tuple[Any, ...],
) -> Callable[[Token], bool]:
    """Token filter: colour is a member of ``values``."""
    frozen = frozenset(values)

    def _filter(token: Token) -> bool:
        return token.color in frozen

    _filter.__name__ = f"color_in_{sorted(map(repr, frozen))}"
    _filter.accepted_colors = frozen
    return _filter


def color_pred(fn: Callable[[Any], bool]) -> Callable[[Token], bool]:
    """Token filter from a predicate over the colour value."""

    def _filter(token: Token) -> bool:
        return bool(fn(token.color))

    _filter.__name__ = f"color_pred_{getattr(fn, '__name__', 'fn')}"
    return _filter
