"""Transitions: the active elements of the net.

Follows TimeNET's EDSPN/SCPN transition taxonomy, which the paper relies
on (Table I lists ``Instantaneous``, ``Deterministic`` and
``Exponential`` transitions with priorities):

* **Immediate** transitions fire in zero time.  When several immediates
  are enabled the highest ``priority`` fires first; ties are broken by a
  weighted random choice over ``weight``.
* **Timed** transitions sample a firing delay from their
  :class:`~repro.core.distributions.FiringDistribution` and race.
  Their clock behaviour under disabling is governed by the
  :class:`MemoryPolicy`:

  - ``ENABLING`` (TimeNET "race enabling", the default): the timer is
    sampled on enabling and *cancelled* when the transition is disabled.
    This is what the paper's `Power_Down_Threshold` timer needs — an
    arriving job disables the timer and idling must restart from zero.
  - ``AGE``: the remaining time is frozen on disabling and resumes on
    re-enabling (preemptive-resume).
  - ``RESAMPLE``: the timer is redrawn after *every* firing of *any*
    transition (TimeNET "race resampling"); rarely wanted, provided for
    the memory-policy ablation (bench A1).

* ``servers`` controls concurrency: ``1`` (default) is single-server —
  at most one scheduled firing even if the transition is multiply
  enabled (a CPU serving one job at a time); ``INFINITE_SERVERS`` gives
  one clock per enabling degree (a delay stage).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence

from .arcs import InhibitorArc, InputArc, OutputArc, ResetArc
from .distributions import FiringDistribution, Immediate
from .errors import ArcError
from .guards import TRUE, Guard

__all__ = ["MemoryPolicy", "Transition", "INFINITE_SERVERS"]

#: Sentinel for an unbounded number of servers.
INFINITE_SERVERS: int = -1


class MemoryPolicy(enum.Enum):
    """Clock behaviour of a timed transition across disabling periods."""

    ENABLING = "enabling"
    AGE = "age"
    RESAMPLE = "resample"


class Transition:
    """A transition of a stochastic colored Petri net.

    Parameters
    ----------
    name:
        Unique identifier within the net.
    distribution:
        Firing-time distribution.  :class:`~repro.core.distributions.Immediate`
        makes this an immediate transition (fires in zero time).
    inputs / outputs / inhibitors:
        Arc lists.  May also be wired afterwards through the
        :class:`~repro.core.net.PetriNet` builder API.
    guard:
        Global (marking) guard; the transition is enabled only while the
        guard holds.  Defaults to always-true.
    priority:
        Only meaningful for immediate transitions: higher fires first.
        The paper's Table I uses priorities 1–4.
    weight:
        Tie-break weight among equal-priority immediates (> 0).
    memory:
        Clock policy for timed transitions (see :class:`MemoryPolicy`).
    servers:
        ``1`` for single-server (default), ``INFINITE_SERVERS`` for one
        concurrent clock per enabling degree, or any positive k.
    description:
        Free-text annotation.
    """

    __slots__ = (
        "name",
        "distribution",
        "inputs",
        "outputs",
        "inhibitors",
        "resets",
        "guard",
        "priority",
        "weight",
        "memory",
        "servers",
        "description",
    )

    def __init__(
        self,
        name: str,
        distribution: FiringDistribution | None = None,
        inputs: Sequence[InputArc] = (),
        outputs: Sequence[OutputArc] = (),
        inhibitors: Sequence[InhibitorArc] = (),
        resets: Sequence[ResetArc] = (),
        guard: Guard = TRUE,
        priority: int = 1,
        weight: float = 1.0,
        memory: MemoryPolicy = MemoryPolicy.ENABLING,
        servers: int = 1,
        description: str = "",
    ) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(
                f"transition name must be a non-empty string, got {name!r}"
            )
        if weight <= 0:
            raise ValueError(f"transition {name!r}: weight must be > 0, got {weight}")
        if servers != INFINITE_SERVERS and servers < 1:
            raise ValueError(
                f"transition {name!r}: servers must be >= 1 or INFINITE_SERVERS, "
                f"got {servers}"
            )
        self.name = name
        self.distribution: FiringDistribution = (
            distribution if distribution is not None else Immediate()
        )
        self.inputs: list[InputArc] = list(inputs)
        self.outputs: list[OutputArc] = list(outputs)
        self.inhibitors: list[InhibitorArc] = list(inhibitors)
        self.resets: list[ResetArc] = list(resets)
        self.guard = guard
        self.priority = int(priority)
        self.weight = float(weight)
        self.memory = memory
        self.servers = int(servers)
        self.description = description

    # ------------------------------------------------------------------
    # Classification helpers
    # ------------------------------------------------------------------
    @property
    def is_immediate(self) -> bool:
        """True when this transition fires in zero time."""
        return self.distribution.is_immediate

    @property
    def is_timed(self) -> bool:
        """True when this transition has a (possibly zero-variance) delay."""
        return not self.distribution.is_immediate

    @property
    def is_deterministic(self) -> bool:
        """True for fixed-delay transitions."""
        return self.distribution.is_deterministic

    @property
    def is_exponential(self) -> bool:
        """True for memoryless transitions."""
        return self.distribution.is_exponential

    # ------------------------------------------------------------------
    # Wiring helpers (used by the net builder)
    # ------------------------------------------------------------------
    def add_input(self, arc: InputArc) -> None:
        """Attach an input arc; rejects duplicate (place, filter-less) wiring."""
        if arc.token_filter is None and any(
            a.place == arc.place and a.token_filter is None for a in self.inputs
        ):
            raise ArcError(
                f"transition {self.name!r} already has an unfiltered input "
                f"arc from {arc.place!r}; raise the multiplicity instead"
            )
        self.inputs.append(arc)

    def add_output(self, arc: OutputArc) -> None:
        """Attach an output arc."""
        self.outputs.append(arc)

    def add_inhibitor(self, arc: InhibitorArc) -> None:
        """Attach an inhibitor arc; one per place."""
        if any(a.place == arc.place for a in self.inhibitors):
            raise ArcError(
                f"transition {self.name!r} already has an inhibitor arc "
                f"from {arc.place!r}"
            )
        self.inhibitors.append(arc)

    def add_reset(self, arc: ResetArc) -> None:
        """Attach a reset arc; one per place."""
        if any(a.place == arc.place for a in self.resets):
            raise ArcError(
                f"transition {self.name!r} already has a reset arc "
                f"for {arc.place!r}"
            )
        self.resets.append(arc)

    def input_places(self) -> frozenset[str]:
        """Names of all places feeding this transition."""
        return frozenset(a.place for a in self.inputs)

    def output_places(self) -> frozenset[str]:
        """Names of all places this transition feeds."""
        return frozenset(a.place for a in self.outputs)

    def dependent_places(self) -> frozenset[str]:
        """All places whose marking can affect this transition's enabling."""
        return (
            self.input_places()
            | frozenset(a.place for a in self.inhibitors)
            | self.guard.places()
        )

    def enabling_dependencies(self) -> frozenset[str] | None:
        """Exhaustive enabling dependency set, or ``None`` when unknown.

        Unlike :meth:`dependent_places` (which trusts the guard's
        *declared* ``places()``), this returns ``None`` whenever the
        guard's reads cannot be introspected exhaustively, so the
        engine's enabled-candidate cache can fall back to re-checking
        the transition after every firing.  Output places are included
        because bounded-capacity output places participate in enabling
        (TimeNET semantics).
        """
        guard_deps = self.guard.dependencies()
        if guard_deps is None:
            return None
        return (
            self.input_places()
            | frozenset(a.place for a in self.inhibitors)
            | self.output_places()
            | guard_deps
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Transition({self.name!r}, {self.distribution!r}, "
            f"prio={self.priority})"
        )
