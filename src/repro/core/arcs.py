"""Arcs: the wiring between places and transitions.

Three kinds (TimeNET vocabulary):

* :class:`InputArc` — place → transition.  Enabledness requires at least
  ``multiplicity`` tokens in the place that satisfy the optional
  ``token_filter`` (the Colored-net "local guard").  Firing removes the
  ``multiplicity`` oldest matching tokens.
* :class:`OutputArc` — transition → place.  Firing deposits
  ``multiplicity`` tokens; their colours come from ``producer`` (see
  below) or default to plain black tokens.
* :class:`InhibitorArc` — place ⊸ transition.  Enabledness requires the
  place to hold *fewer than* ``multiplicity`` tokens (classic inhibitor
  semantics; ``multiplicity=1`` means "place empty").

Output colour production, in priority order:

1. ``producer(context)`` — a callable receiving a :class:`FiringContext`
   (consumed tokens, marking view, current time, rng) and returning the
   colour for each deposited token (called once per token).
2. ``color`` — a fixed colour for all deposited tokens.
3. If neither is given and exactly one token was consumed with a
   non-``None`` colour and ``multiplicity == 1``, the colour is
   *forwarded* (the common "token moves through" case of colored nets).
4. Otherwise plain black tokens.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

import numpy as np

from .errors import ArcError
from .tokens import Token

__all__ = ["InputArc", "OutputArc", "InhibitorArc", "ResetArc", "FiringContext"]


@dataclass
class FiringContext:
    """Everything an output-arc producer may inspect when a transition fires.

    Attributes
    ----------
    time:
        Simulation time of the firing.
    consumed:
        Mapping ``place name -> list of tokens`` removed by the input arcs
        of this firing.
    marking:
        Read-only view of the marking *after* token removal, *before*
        deposits (exposes ``count(place)``).
    rng:
        The engine's random generator (for randomized colour choices).
    transition:
        Name of the firing transition.
    """

    time: float
    consumed: dict[str, list[Token]]
    marking: Any
    rng: np.random.Generator
    transition: str = ""

    def consumed_colors(self) -> list[Any]:
        """Colours of all consumed tokens, input-arc order preserved."""
        out: list[Any] = []
        for tokens in self.consumed.values():
            out.extend(tok.color for tok in tokens)
        return out

    def first_color(self, default: Any = None) -> Any:
        """Colour of the first consumed token, or ``default`` if none."""
        for tokens in self.consumed.values():
            for tok in tokens:
                return tok.color
        return default


class InputArc:
    """place → transition arc.

    Parameters
    ----------
    place:
        Source place name.
    multiplicity:
        Number of tokens required/consumed (≥ 1).
    token_filter:
        Optional per-token predicate (local guard): only matching tokens
        count towards enabling and only matching tokens are consumed.
    """

    __slots__ = ("place", "multiplicity", "token_filter")

    def __init__(
        self,
        place: str,
        multiplicity: int = 1,
        token_filter: Callable[[Token], bool] | None = None,
    ) -> None:
        if multiplicity < 1:
            raise ArcError(
                f"input arc from {place!r}: multiplicity must be >= 1, "
                f"got {multiplicity}"
            )
        self.place = place
        self.multiplicity = int(multiplicity)
        self.token_filter = token_filter

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flt = ", filtered" if self.token_filter is not None else ""
        return f"InputArc({self.place!r} x{self.multiplicity}{flt})"


class OutputArc:
    """transition → place arc.  See module docstring for colour rules."""

    __slots__ = ("place", "multiplicity", "color", "producer")

    def __init__(
        self,
        place: str,
        multiplicity: int = 1,
        color: Any = None,
        producer: Callable[[FiringContext], Any] | None = None,
    ) -> None:
        if multiplicity < 1:
            raise ArcError(
                f"output arc to {place!r}: multiplicity must be >= 1, "
                f"got {multiplicity}"
            )
        if color is not None and producer is not None:
            raise ArcError(
                f"output arc to {place!r}: give either color or producer, not both"
            )
        self.place = place
        self.multiplicity = int(multiplicity)
        self.color = color
        self.producer = producer

    def make_tokens(self, ctx: FiringContext) -> list[Token]:
        """Produce the tokens this arc deposits for one firing."""
        tokens: list[Token] = []
        for _ in range(self.multiplicity):
            if self.producer is not None:
                color = self.producer(ctx)
            elif self.color is not None:
                color = self.color
            else:
                color = self._forwarded_color(ctx)
            tokens.append(Token(color, ctx.time))
        return tokens

    def _forwarded_color(self, ctx: FiringContext) -> Any:
        """Default colour: forward a single consumed colour when unambiguous."""
        if self.multiplicity != 1:
            return None
        colors = [c for c in ctx.consumed_colors() if c is not None]
        if len(colors) == 1:
            return colors[0]
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.color is not None:
            extra = f", color={self.color!r}"
        elif self.producer is not None:
            extra = ", producer"
        return f"OutputArc({self.place!r} x{self.multiplicity}{extra})"


class InhibitorArc:
    """place ⊸ transition arc: enabled only while ``#place < multiplicity``."""

    __slots__ = ("place", "multiplicity")

    def __init__(self, place: str, multiplicity: int = 1) -> None:
        if multiplicity < 1:
            raise ArcError(
                f"inhibitor arc from {place!r}: multiplicity must be >= 1, "
                f"got {multiplicity}"
            )
        self.place = place
        self.multiplicity = int(multiplicity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"InhibitorArc({self.place!r} <{self.multiplicity})"


class ResetArc:
    """Clears ``place`` entirely when the transition fires.

    Reset arcs do not affect enabling; they model flush/failure events
    (a node crash dropping its queue, a buffer purge on power loss).
    The cleared tokens are reported to observers as consumed.

    Note: reset arcs are not expressible in the incidence matrix, so
    P/T-invariant analysis treats a net with reset arcs as having no
    conservation law through the reset place (the builder's
    ``incidence_matrix`` ignores resets; declared invariants touching a
    reset place will fail, which is the correct conservative outcome).
    """

    __slots__ = ("place",)

    def __init__(self, place: str) -> None:
        self.place = place

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResetArc({self.place!r})"
