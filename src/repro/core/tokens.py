"""Colored tokens and token multisets.

A *token* is the unit of marking in a Petri net.  In a plain
(uncolored) net all tokens are interchangeable; in a Colored Petri net
each token carries a *colour* — an arbitrary hashable value that local
guards and arc expressions may inspect.  The paper's node models (Figs.
12–13) use token colours to encode DVS task classes (1.0, 2.0, 3.0).

Tokens also remember their *creation time* so observers can measure
token ages (queueing delays); the engine stamps this automatically.

A :class:`TokenBag` is an insertion-ordered multiset of tokens.  FIFO
ordering matters: when an input arc must select ``k`` tokens matching a
filter, the engine takes the *oldest* matching tokens so queueing
behaviour is deterministic given the random-number stream.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from typing import Any

__all__ = ["Token", "TokenBag", "BLACK"]


class Token:
    """A single (possibly coloured) token.

    Parameters
    ----------
    color:
        Arbitrary payload.  ``None`` denotes the plain "black" token of an
        uncoloured net.  The engine never interprets colours itself; only
        local guards and arc output expressions do.
    created_at:
        Simulation time at which the token entered the net.  Stamped by
        the simulator; defaults to 0.0 for tokens in the initial marking.
    """

    __slots__ = ("color", "created_at")

    def __init__(self, color: Any = None, created_at: float = 0.0) -> None:
        self.color = color
        self.created_at = created_at

    def with_color(self, color: Any) -> "Token":
        """Return a copy of this token carrying ``color``."""
        return Token(color, self.created_at)

    def age(self, now: float) -> float:
        """Token age at simulation time ``now``."""
        return now - self.created_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.color is None:
            return f"Token(t={self.created_at:g})"
        return f"Token({self.color!r}, t={self.created_at:g})"


#: The canonical uncoloured token prototype.
BLACK = Token()


class TokenBag:
    """Insertion-ordered multiset of tokens held by one place.

    Supports the operations the token game needs:

    * :meth:`add` / :meth:`extend` — deposit tokens (append; FIFO tail).
    * :meth:`take` — remove and return the ``k`` oldest tokens matching an
      optional filter (FIFO head), raising ``ValueError`` when fewer than
      ``k`` match.
    * :meth:`count` — number of tokens matching an optional filter.

    The bag is deliberately a thin wrapper over a list: markings in the
    models of this library stay small (tens of tokens), so asymptotics
    favour simplicity and cache friendliness over fancy structures.
    """

    __slots__ = ("_tokens",)

    def __init__(self, tokens: Iterable[Token] = ()) -> None:
        self._tokens: list[Token] = list(tokens)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tokens)

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens)

    def __bool__(self) -> bool:
        return bool(self._tokens)

    def count(self, predicate: Callable[[Token], bool] | None = None) -> int:
        """Number of tokens, optionally only those satisfying ``predicate``."""
        if predicate is None:
            return len(self._tokens)
        return sum(1 for tok in self._tokens if predicate(tok))

    def peek(self, k: int = 1) -> list[Token]:
        """The ``k`` oldest tokens without removing them."""
        return self._tokens[:k]

    def colors(self) -> list[Any]:
        """Colours of all tokens in FIFO order."""
        return [tok.color for tok in self._tokens]

    def color_multiset(self) -> dict[Any, int]:
        """Colour → multiplicity mapping (order-insensitive summary)."""
        out: dict[Any, int] = {}
        for tok in self._tokens:
            out[tok.color] = out.get(tok.color, 0) + 1
        return out

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, token: Token) -> None:
        """Deposit a single token at the FIFO tail."""
        self._tokens.append(token)

    def extend(self, tokens: Iterable[Token]) -> None:
        """Deposit several tokens preserving their order."""
        self._tokens.extend(tokens)

    def take(
        self,
        k: int = 1,
        predicate: Callable[[Token], bool] | None = None,
    ) -> list[Token]:
        """Remove and return the ``k`` oldest tokens matching ``predicate``.

        Raises
        ------
        ValueError
            If fewer than ``k`` tokens match.
        """
        if k < 0:
            raise ValueError(f"cannot take a negative number of tokens: {k}")
        if k == 0:
            return []
        if predicate is None:
            if len(self._tokens) < k:
                raise ValueError(
                    f"need {k} tokens but only {len(self._tokens)} present"
                )
            taken = self._tokens[:k]
            del self._tokens[:k]
            return taken
        taken: list[Token] = []
        keep: list[Token] = []
        for tok in self._tokens:
            if len(taken) < k and predicate(tok):
                taken.append(tok)
            else:
                keep.append(tok)
        if len(taken) < k:
            # Roll back: taking is all-or-nothing.
            raise ValueError(
                f"need {k} tokens matching filter but only {len(taken)} match"
            )
        self._tokens = keep
        return taken

    def clear(self) -> list[Token]:
        """Remove and return all tokens."""
        out = self._tokens
        self._tokens = []
        return out

    def copy(self) -> "TokenBag":
        """Shallow copy (tokens themselves are immutable in practice)."""
        return TokenBag(self._tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenBag({self._tokens!r})"


def make_tokens(count: int, color: Any = None, created_at: float = 0.0) -> list[Token]:
    """Convenience constructor for ``count`` identical tokens."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [Token(color, created_at) for _ in range(count)]
