"""Firing-time distributions for timed transitions.

The paper's nets use three timing classes (TimeNET's EDSPN vocabulary):

* **Immediate** — fires in zero time, subject to priorities and weights.
* **Deterministic** — fires after a fixed delay (``Power_Down_Threshold``,
  ``Power_Up_Delay``, all radio/CPU service times in Tables VIII and XI).
* **Exponential** — fires after an exponentially distributed delay
  (job arrivals, CPU service in Fig. 3).

For generality (and for ablation studies) this module also implements
Uniform, Erlang, Weibull, Triangular, LogNormal, Hyperexponential and
Empirical distributions.  All samplers draw from a
:class:`numpy.random.Generator` passed in by the engine, so independent
streams and reproducibility are controlled in one place
(:mod:`repro.des.rng`).

Every distribution exposes:

* :meth:`~FiringDistribution.sample` — one firing delay;
* :meth:`~FiringDistribution.mean` / :meth:`~FiringDistribution.variance`
  — analytic moments (used by tests and by the CTMC conversion);
* :attr:`~FiringDistribution.kind` — a stable string tag used by the
  analysis layer to classify transitions.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "FiringDistribution",
    "Immediate",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Erlang",
    "Weibull",
    "Triangular",
    "LogNormal",
    "Hyperexponential",
    "Empirical",
]


class FiringDistribution:
    """Abstract base class for firing-time distributions."""

    #: Stable tag; subclasses override.
    kind: str = "abstract"

    #: True only for :class:`Immediate`.
    is_immediate: bool = False

    #: True only for :class:`Deterministic`.
    is_deterministic: bool = False

    #: True only for :class:`Exponential` (memoryless).
    is_exponential: bool = False

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one firing delay (seconds)."""
        raise NotImplementedError

    def mean(self) -> float:
        """Analytic mean of the delay."""
        raise NotImplementedError

    def variance(self) -> float:
        """Analytic variance of the delay."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class Immediate(FiringDistribution):
    """Zero-delay firing.

    Immediate transitions never enter the event calendar; the engine
    fires them eagerly (highest priority first) whenever they are
    enabled.  The class exists so every transition has a uniform
    ``distribution`` attribute.
    """

    kind = "immediate"
    is_immediate = True

    def sample(self, rng: np.random.Generator) -> float:
        return 0.0

    def mean(self) -> float:
        return 0.0

    def variance(self) -> float:
        return 0.0


class Deterministic(FiringDistribution):
    """Fixed delay ``delay`` ≥ 0."""

    kind = "deterministic"
    is_deterministic = True

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"deterministic delay must be >= 0, got {delay}")
        self.delay = float(delay)

    def sample(self, rng: np.random.Generator) -> float:
        return self.delay

    def mean(self) -> float:
        return self.delay

    def variance(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return f"Deterministic({self.delay!r})"


class Exponential(FiringDistribution):
    """Exponential delay with rate ``rate`` (mean ``1/rate``)."""

    kind = "exponential"
    is_exponential = True

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"exponential rate must be > 0, got {rate}")
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, mean: float) -> "Exponential":
        """Construct from a mean delay instead of a rate."""
        if mean <= 0:
            raise ValueError(f"exponential mean must be > 0, got {mean}")
        return cls(1.0 / mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(1.0 / self.rate))

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate!r})"


class Uniform(FiringDistribution):
    """Uniform delay on ``[low, high]``."""

    kind = "uniform"

    def __init__(self, low: float, high: float) -> None:
        if low < 0 or high < low:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def variance(self) -> float:
        return (self.high - self.low) ** 2 / 12.0

    def __repr__(self) -> str:
        return f"Uniform({self.low!r}, {self.high!r})"


class Erlang(FiringDistribution):
    """Erlang-``k`` delay: sum of ``k`` exponentials of rate ``rate``.

    Useful to approximate deterministic delays within an
    exponential-only (CTMC-solvable) net: the squared coefficient of
    variation is ``1/k``, so large ``k`` approaches a constant.
    """

    kind = "erlang"

    def __init__(self, k: int, rate: float) -> None:
        if k < 1:
            raise ValueError(f"Erlang shape k must be >= 1, got {k}")
        if rate <= 0:
            raise ValueError(f"Erlang rate must be > 0, got {rate}")
        self.k = int(k)
        self.rate = float(rate)

    @classmethod
    def from_mean(cls, k: int, mean: float) -> "Erlang":
        """Erlang-``k`` with total mean ``mean``."""
        if mean <= 0:
            raise ValueError(f"mean must be > 0, got {mean}")
        return cls(k, k / mean)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.gamma(self.k, 1.0 / self.rate))

    def mean(self) -> float:
        return self.k / self.rate

    def variance(self) -> float:
        return self.k / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"Erlang(k={self.k}, rate={self.rate!r})"


class Weibull(FiringDistribution):
    """Weibull delay with shape ``shape`` and scale ``scale``."""

    kind = "weibull"

    def __init__(self, shape: float, scale: float) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError(
                f"Weibull shape/scale must be > 0, got {shape}, {scale}"
            )
        self.shape = float(shape)
        self.scale = float(scale)

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.scale * rng.weibull(self.shape))

    def mean(self) -> float:
        return self.scale * math.gamma(1.0 + 1.0 / self.shape)

    def variance(self) -> float:
        g1 = math.gamma(1.0 + 1.0 / self.shape)
        g2 = math.gamma(1.0 + 2.0 / self.shape)
        return self.scale**2 * (g2 - g1**2)

    def __repr__(self) -> str:
        return f"Weibull(shape={self.shape!r}, scale={self.scale!r})"


class Triangular(FiringDistribution):
    """Triangular delay on ``[low, high]`` with mode ``mode``."""

    kind = "triangular"

    def __init__(self, low: float, mode: float, high: float) -> None:
        if not (0 <= low <= mode <= high):
            raise ValueError(
                f"need 0 <= low <= mode <= high, got {low}, {mode}, {high}"
            )
        self.low = float(low)
        self.mode = float(mode)
        self.high = float(high)

    def sample(self, rng: np.random.Generator) -> float:
        if self.low == self.high:
            return self.low
        return float(rng.triangular(self.low, self.mode, self.high))

    def mean(self) -> float:
        return (self.low + self.mode + self.high) / 3.0

    def variance(self) -> float:
        a, c, b = self.low, self.mode, self.high
        return (a * a + b * b + c * c - a * b - a * c - b * c) / 18.0

    def __repr__(self) -> str:
        return f"Triangular({self.low!r}, {self.mode!r}, {self.high!r})"


class LogNormal(FiringDistribution):
    """Log-normal delay; ``mu``/``sigma`` are the underlying normal params."""

    kind = "lognormal"

    def __init__(self, mu: float, sigma: float) -> None:
        if sigma <= 0:
            raise ValueError(f"sigma must be > 0, got {sigma}")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mean_cv(cls, mean: float, cv: float) -> "LogNormal":
        """Construct from the delay mean and coefficient of variation."""
        if mean <= 0 or cv <= 0:
            raise ValueError("mean and cv must be > 0")
        sigma2 = math.log(1.0 + cv * cv)
        mu = math.log(mean) - 0.5 * sigma2
        return cls(mu, math.sqrt(sigma2))

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def mean(self) -> float:
        return math.exp(self.mu + 0.5 * self.sigma**2)

    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu!r}, sigma={self.sigma!r})"


class Hyperexponential(FiringDistribution):
    """Mixture of exponentials: with prob ``p_i`` sample Exp(``rate_i``).

    Squared coefficient of variation ≥ 1, complementing Erlang (< 1);
    together they let tests bracket deterministic behaviour from both
    sides.
    """

    kind = "hyperexponential"

    def __init__(self, probs: Sequence[float], rates: Sequence[float]) -> None:
        if len(probs) != len(rates) or not probs:
            raise ValueError("probs and rates must be equal-length, non-empty")
        if any(p < 0 for p in probs) or any(r <= 0 for r in rates):
            raise ValueError("probs must be >= 0 and rates > 0")
        total = float(sum(probs))
        if not math.isclose(total, 1.0, rel_tol=1e-9, abs_tol=1e-12):
            raise ValueError(f"probs must sum to 1, got {total}")
        self.probs = np.asarray(probs, dtype=float)
        self.rates = np.asarray(rates, dtype=float)

    def sample(self, rng: np.random.Generator) -> float:
        i = int(rng.choice(len(self.probs), p=self.probs))
        return float(rng.exponential(1.0 / self.rates[i]))

    def mean(self) -> float:
        return float(np.sum(self.probs / self.rates))

    def variance(self) -> float:
        second = float(np.sum(2.0 * self.probs / self.rates**2))
        return second - self.mean() ** 2

    def __repr__(self) -> str:
        return (
            f"Hyperexponential(probs={self.probs.tolist()!r}, "
            f"rates={self.rates.tolist()!r})"
        )


class Empirical(FiringDistribution):
    """Resample uniformly from an observed sample of delays.

    Used by trace-driven workloads: feed measured inter-arrival times in
    and the transition reproduces their empirical distribution.
    """

    kind = "empirical"

    def __init__(self, samples: Sequence[float]) -> None:
        arr = np.asarray(samples, dtype=float)
        if arr.ndim != 1 or arr.size == 0:
            raise ValueError("samples must be a non-empty 1-D sequence")
        if np.any(arr < 0):
            raise ValueError("samples must be non-negative delays")
        self.samples = arr

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.samples[int(rng.integers(self.samples.size))])

    def mean(self) -> float:
        return float(np.mean(self.samples))

    def variance(self) -> float:
        # Population variance: the empirical distribution itself.
        return float(np.var(self.samples))

    def __repr__(self) -> str:
        return f"Empirical(n={self.samples.size})"
