"""Time-weighted statistics for simulation runs.

The paper extracts model answers as *steady-state probabilities* — the
long-run fraction of time a place is marked ("the average number of
tokens in ``CPU_ON`` will indicate the percentage of time the CPU was
'on'").  This module implements exactly that estimator plus the usual
companions:

* :class:`TimeWeightedAccumulator` — ∫x(t)dt between marking changes,
  giving time-averaged token counts and occupancy probabilities
  P(#place ≥ 1).
* :class:`PredicateStatistic` — time-averaged truth of an arbitrary
  marking predicate (used for derived states such as "CPU active" =
  ``#CPU_ON ≥ 1 and #Buffer ≥ 1``).
* :class:`TransitionCounter` — firing counts and throughput.
* :class:`BatchMeans` — batch-means steady-state point estimate with a
  Student-t confidence interval (the estimator TimeNET's simulative
  stationary analysis uses).
* :func:`replication_interval` — mean ± t-interval across *independent
  replications* (the multi-replication counterpart of batch means,
  used by the :mod:`repro.runtime` parallel sweeps).

All statistics honour a warm-up time: samples before ``warmup`` are
discarded so the transient does not bias steady-state estimates.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as _scipy_stats

__all__ = [
    "TimeWeightedAccumulator",
    "PredicateStatistic",
    "TransitionCounter",
    "BatchMeans",
    "ConfidenceInterval",
    "StatisticsCollector",
    "replication_interval",
]


class TimeWeightedAccumulator:
    """Accumulates ∫x(t)dt for a piecewise-constant signal x(t).

    Call :meth:`update` with the *current* value each time the signal
    may have changed; the accumulator integrates the previous value over
    the elapsed interval.  Samples before ``warmup`` are discarded.
    """

    __slots__ = (
        "warmup",
        "_last_time",
        "_last_value",
        "_integral",
        "_nonzero_time",
        "_observed_time",
        "_max_value",
    )

    def __init__(self, warmup: float = 0.0, initial_value: float = 0.0) -> None:
        self.warmup = float(warmup)
        self._last_time = 0.0
        self._last_value = float(initial_value)
        self._integral = 0.0
        self._nonzero_time = 0.0
        self._observed_time = 0.0
        self._max_value = float(initial_value)

    def update(self, now: float, value: float) -> None:
        """Advance to ``now`` integrating the previous value; set new value."""
        if now < self._last_time:
            raise ValueError(
                f"time went backwards: {now} < {self._last_time}"
            )
        lo = max(self._last_time, self.warmup)
        hi = now
        if hi > lo:
            dt = hi - lo
            self._integral += self._last_value * dt
            self._observed_time += dt
            if self._last_value > 0:
                self._nonzero_time += dt
        self._last_time = now
        self._last_value = float(value)
        if value > self._max_value:
            self._max_value = float(value)

    def finalize(self, end_time: float) -> None:
        """Integrate the current value up to ``end_time`` (end of run)."""
        self.update(end_time, self._last_value)

    @property
    def observed_time(self) -> float:
        """Post-warm-up time integrated so far."""
        return self._observed_time

    def time_average(self) -> float:
        """Time-averaged value (0 when nothing observed yet)."""
        if self._observed_time <= 0:
            return 0.0
        return self._integral / self._observed_time

    def fraction_nonzero(self) -> float:
        """Fraction of observed time with value > 0 (occupancy P(x ≥ 1))."""
        if self._observed_time <= 0:
            return 0.0
        return self._nonzero_time / self._observed_time

    def maximum(self) -> float:
        """Maximum value seen (including during warm-up)."""
        return self._max_value

    def current(self) -> float:
        """The value as of the last update."""
        return self._last_value


class PredicateStatistic:
    """Time-averaged truth value of a marking predicate.

    Energy accounting uses these for derived power states: e.g. the CPU
    is *active* while ``#CPU_ON >= 1 and #CPU_Buffer >= 1`` even though
    no single place encodes "active".
    """

    __slots__ = ("name", "predicate", "acc")

    def __init__(
        self,
        name: str,
        predicate: Callable[["object"], bool],
        warmup: float = 0.0,
    ) -> None:
        self.name = name
        self.predicate = predicate
        self.acc = TimeWeightedAccumulator(warmup)

    def update(self, now: float, marking: "object") -> None:
        """Sample the predicate at ``now``."""
        self.acc.update(now, 1.0 if self.predicate(marking) else 0.0)

    def probability(self) -> float:
        """Long-run probability the predicate holds."""
        return self.acc.time_average()


class TransitionCounter:
    """Firing counts and throughput for one transition."""

    __slots__ = ("warmup", "count", "_last_time")

    def __init__(self, warmup: float = 0.0) -> None:
        self.warmup = float(warmup)
        self.count = 0
        self._last_time = 0.0

    def record(self, now: float) -> None:
        """Record one firing at ``now``."""
        self._last_time = max(self._last_time, now)
        if now >= self.warmup:
            self.count += 1

    def throughput(self, end_time: float) -> float:
        """Firings per unit time over the post-warm-up horizon."""
        horizon = end_time - self.warmup
        if horizon <= 0:
            return 0.0
        return self.count / horizon


@dataclass(frozen=True)
class ConfidenceInterval:
    """A point estimate with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    batches: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def relative_half_width(self) -> float:
        """Half-width / |mean|.

        The degenerate 0 ± 0 interval (a constant-zero metric) is
        perfectly precise, so it reports 0.0 — any relative-width
        stopping rule is immediately satisfied.  Only a genuinely
        undefined ratio (zero mean with nonzero half-width) is ``inf``.
        """
        if self.half_width == 0:
            return 0.0
        if self.mean == 0:
            return math.inf
        return abs(self.half_width / self.mean)


class BatchMeans:
    """Batch-means estimator over a time-weighted signal.

    The observation horizon (post warm-up) is divided into ``n_batches``
    equal windows; the per-window time averages are treated as i.i.d.
    samples for a Student-t interval.  This is the standard steady-state
    output analysis method for a single long replication.
    """

    __slots__ = (
        "warmup",
        "n_batches",
        "_batch_ends",
        "_batch_integrals",
        "_batch_durations",
        "_acc",
        "_horizon",
    )

    def __init__(
        self, horizon: float, warmup: float = 0.0, n_batches: int = 20
    ) -> None:
        if n_batches < 2:
            raise ValueError(f"need at least 2 batches, got {n_batches}")
        if horizon <= warmup:
            raise ValueError(
                f"horizon {horizon} must exceed warmup {warmup}"
            )
        self.warmup = float(warmup)
        self.n_batches = int(n_batches)
        span = (horizon - warmup) / n_batches
        self._batch_ends = [warmup + span * (i + 1) for i in range(n_batches)]
        self._batch_integrals = [0.0] * n_batches
        self._batch_durations = [0.0] * n_batches
        self._acc: tuple[float, float] = (0.0, 0.0)  # (last_time, last_value)
        self._horizon = float(horizon)

    def update(self, now: float, value: float) -> None:
        """Advance to ``now``, attributing the previous value to batches."""
        last_time, last_value = self._acc
        if now < last_time:
            raise ValueError(f"time went backwards: {now} < {last_time}")
        self._attribute(last_time, min(now, self._horizon), last_value)
        self._acc = (now, float(value))

    def finalize(self) -> None:
        """Close the final batch at the horizon."""
        last_time, last_value = self._acc
        self._attribute(last_time, self._horizon, last_value)
        self._acc = (self._horizon, last_value)

    def _attribute(self, start: float, end: float, value: float) -> None:
        start = max(start, self.warmup)
        if end <= start:
            return
        span = (self._horizon - self.warmup) / self.n_batches
        # Walk the batches the interval overlaps.
        first = int((start - self.warmup) / span)
        first = min(max(first, 0), self.n_batches - 1)
        t = start
        for i in range(first, self.n_batches):
            b_end = self._batch_ends[i]
            seg_end = min(end, b_end)
            if seg_end > t:
                dt = seg_end - t
                self._batch_integrals[i] += value * dt
                self._batch_durations[i] += dt
                t = seg_end
            if t >= end:
                break

    def batch_means(self) -> np.ndarray:
        """Time averages of the batches that observed any time.

        A run that ends before the horizon leaves zero-duration
        trailing batches; treating those as 0.0 samples would drag the
        mean toward 0 *and* shrink the interval with fabricated
        observations, so empty batches are dropped — the returned array
        has one entry per batch with ``duration > 0``.
        """
        out = [
            self._batch_integrals[i] / self._batch_durations[i]
            for i in range(self.n_batches)
            if self._batch_durations[i] > 0
        ]
        return np.asarray(out, dtype=float)

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Point estimate and Student-t confidence interval.

        ``batches`` in the returned interval counts the *non-empty*
        batches actually backing the estimate, which can be fewer than
        ``n_batches`` for a run truncated before the horizon.
        """
        means = self.batch_means()
        n = len(means)
        if n == 0:
            return ConfidenceInterval(0.0, math.inf, confidence, 0)
        mean = float(np.mean(means))
        if n < 2:
            return ConfidenceInterval(mean, math.inf, confidence, n)
        sd = float(np.std(means, ddof=1))
        tcrit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
        half = tcrit * sd / math.sqrt(n)
        return ConfidenceInterval(mean, half, confidence, n)


def replication_interval(
    values: "Sequence[float] | np.ndarray", confidence: float = 0.95
) -> ConfidenceInterval:
    """Mean ± Student-t interval across independent replications.

    The across-replication analogue of :meth:`BatchMeans.interval`:
    each value is one replication's output (total energy, mean power,
    …), assumed i.i.d., and the half-width is
    ``t_{1-(1-c)/2, n-1} · s / √n``.  A single replication yields an
    infinite half-width — a point estimate with unknown uncertainty —
    rather than an error, so callers can treat R=1 and R>1 uniformly.
    """
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one replication value")
    mean = float(np.mean(arr))
    n = int(arr.size)
    if n < 2:
        return ConfidenceInterval(mean, math.inf, confidence, n)
    sd = float(np.std(arr, ddof=1))
    tcrit = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, df=n - 1))
    return ConfidenceInterval(mean, tcrit * sd / math.sqrt(n), confidence, n)


class StatisticsCollector:
    """Aggregates all per-run statistics and is driven by the simulator.

    The simulator calls :meth:`on_marking_change` after every firing
    (immediate or timed) and :meth:`on_transition_fired` for each firing.
    """

    def __init__(
        self,
        place_names: list[str] | tuple[str, ...],
        transition_names: list[str] | tuple[str, ...],
        warmup: float = 0.0,
    ) -> None:
        self.warmup = float(warmup)
        self.place_acc: dict[str, TimeWeightedAccumulator] = {
            name: TimeWeightedAccumulator(warmup) for name in place_names
        }
        self.transition_counters: dict[str, TransitionCounter] = {
            name: TransitionCounter(warmup) for name in transition_names
        }
        self.predicates: dict[str, PredicateStatistic] = {}
        self.end_time = 0.0

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_predicate(
        self, name: str, predicate: Callable[["object"], bool]
    ) -> None:
        """Track the time-averaged truth of ``predicate`` under ``name``."""
        if name in self.predicates:
            raise ValueError(f"predicate statistic {name!r} already registered")
        self.predicates[name] = PredicateStatistic(name, predicate, self.warmup)

    # ------------------------------------------------------------------
    # Simulator hooks
    # ------------------------------------------------------------------
    def initialize(self, marking: "object", counts: dict[str, int]) -> None:
        """Record the initial state at t=0."""
        for name, acc in self.place_acc.items():
            acc.update(0.0, counts.get(name, 0))
        for pred in self.predicates.values():
            pred.update(0.0, marking)

    def on_marking_change(
        self, now: float, marking: "object", counts: dict[str, int]
    ) -> None:
        """Sample every tracked quantity at ``now``."""
        for name, acc in self.place_acc.items():
            acc.update(now, counts.get(name, 0))
        for pred in self.predicates.values():
            pred.update(now, marking)

    def on_transition_fired(self, now: float, transition: str) -> None:
        """Count one firing."""
        counter = self.transition_counters.get(transition)
        if counter is not None:
            counter.record(now)

    def finalize(self, end_time: float) -> None:
        """Close all integrals at the end of the run."""
        self.end_time = float(end_time)
        for acc in self.place_acc.values():
            acc.finalize(end_time)
        for pred in self.predicates.values():
            pred.acc.finalize(end_time)

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def mean_tokens(self, place: str) -> float:
        """Time-averaged token count of ``place``."""
        return self.place_acc[place].time_average()

    def occupancy(self, place: str) -> float:
        """P(#place ≥ 1): fraction of time the place is marked."""
        return self.place_acc[place].fraction_nonzero()

    def predicate_probability(self, name: str) -> float:
        """Long-run probability of a registered predicate."""
        return self.predicates[name].probability()

    def firing_count(self, transition: str) -> int:
        """Post-warm-up firing count."""
        return self.transition_counters[transition].count

    def throughput(self, transition: str) -> float:
        """Post-warm-up firings per unit time."""
        return self.transition_counters[transition].throughput(self.end_time)

    def state_probabilities(self) -> dict[str, float]:
        """Occupancy of every place (the paper's 'steady-state percentage')."""
        return {name: acc.fraction_nonzero() for name, acc in self.place_acc.items()}

    def summary(self) -> dict[str, dict[str, float]]:
        """Nested summary dict for reports."""
        return {
            "mean_tokens": {
                n: a.time_average() for n, a in self.place_acc.items()
            },
            "occupancy": {
                n: a.fraction_nonzero() for n, a in self.place_acc.items()
            },
            "throughput": {
                n: c.throughput(self.end_time)
                for n, c in self.transition_counters.items()
            },
            "predicates": {
                n: p.probability() for n, p in self.predicates.items()
            },
        }
