"""Exception hierarchy for the Petri-net engine.

Every error raised by :mod:`repro.core` derives from :class:`PetriNetError`
so callers can catch engine problems with a single ``except`` clause while
still being able to discriminate structural problems (net construction)
from runtime problems (simulation).
"""

from __future__ import annotations


class PetriNetError(Exception):
    """Base class for all Petri-net engine errors."""


class NetStructureError(PetriNetError):
    """The net is malformed (dangling arcs, duplicate names, bad wiring)."""


class DuplicateNameError(NetStructureError):
    """Two elements of the same kind share a name within one net."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(f"duplicate {kind} name: {name!r}")
        self.kind = kind
        self.name = name


class UnknownElementError(NetStructureError):
    """A place or transition referenced by name does not exist in the net."""

    def __init__(self, kind: str, name: str) -> None:
        super().__init__(f"unknown {kind}: {name!r}")
        self.kind = kind
        self.name = name


class ArcError(NetStructureError):
    """An arc is wired incorrectly (bad multiplicity, wrong endpoints)."""


class GuardError(PetriNetError):
    """A guard expression raised or returned a non-boolean value."""


class CapacityError(PetriNetError):
    """A firing would overflow a place with a finite capacity."""

    def __init__(self, place: str, capacity: int, attempted: int) -> None:
        super().__init__(
            f"place {place!r} capacity {capacity} exceeded "
            f"(attempted marking {attempted})"
        )
        self.place = place
        self.capacity = capacity
        self.attempted = attempted


class TokenSelectionError(PetriNetError):
    """An input arc could not select enough tokens satisfying its filter."""


class SimulationError(PetriNetError):
    """Generic runtime failure inside the simulation engine."""


class ImmediateLoopError(SimulationError):
    """Immediate transitions kept firing without time advancing.

    Raised when more than ``max_immediate_firings`` immediate firings occur
    at a single simulation epoch, which almost always indicates a vanishing
    loop in the model (two immediate transitions feeding each other).
    """

    def __init__(self, epoch: float, limit: int) -> None:
        super().__init__(
            f"more than {limit} immediate firings at t={epoch!r}; "
            "the net likely contains a vanishing loop"
        )
        self.epoch = epoch
        self.limit = limit


class UnsupportedNetError(SimulationError):
    """The net uses a feature outside an engine's supported subset.

    Raised by :mod:`repro.core.fast` when a net cannot be compiled for
    the vectorized ensemble engine (opaque guards, reset arcs, AGE /
    RESAMPLE memory, infinite servers, un-introspectable token filters
    or producers).  The interpreted engine remains the fallback for such
    nets — callers choose explicitly, never silently.
    """

    def __init__(self, feature: str, element: str | None = None) -> None:
        where = f" (at {element!r})" if element else ""
        super().__init__(
            f"net not supported by the vectorized engine: {feature}{where}; "
            "use the interpreted engine for this model"
        )
        self.feature = feature
        self.element = element


class DeadlockError(SimulationError):
    """No transition is enabled and the run was configured to fail on deadlock."""

    def __init__(self, time: float) -> None:
        super().__init__(f"net deadlocked at t={time!r}")
        self.time = time


class AnalysisError(PetriNetError):
    """Base class for analysis-layer failures."""


class UnboundedNetError(AnalysisError):
    """Reachability exploration exceeded its state budget.

    Either the net is genuinely unbounded or the supplied ``max_states``
    budget is too small for the (bounded) state space.
    """

    def __init__(self, max_states: int) -> None:
        super().__init__(
            f"reachability exploration exceeded {max_states} states; "
            "net may be unbounded (or raise max_states)"
        )
        self.max_states = max_states


class NotExponentialError(AnalysisError):
    """A CTMC conversion was requested for a net with non-exponential timers."""

    def __init__(self, transition: str, kind: str) -> None:
        super().__init__(
            f"transition {transition!r} has a {kind} firing distribution; "
            "CTMC conversion requires exponential (and immediate) transitions only"
        )
        self.transition = transition
        self.kind = kind
