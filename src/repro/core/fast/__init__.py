"""``repro.core.fast`` — the vectorized lockstep ensemble engine.

The interpreted engine (:mod:`repro.core.simulator`) advances one
replication at a time with a per-event Python loop.  This package runs
*all replications of one sweep point* in lockstep as NumPy arrays: one
round pops the next event of every replication (an ``argmin`` over the
slot-time matrix), fires the popped transitions grouped per transition,
resolves immediates by vectorized priority masks, and accumulates
time-weighted statistics as array ops.  The results hydrate the same
:class:`~repro.core.statistics.StatisticsCollector` /
:class:`~repro.core.simulator.SimulationResult` types the interpreted
engine produces.

Correctness contract
--------------------
For nets inside the compilable subset (introspectable guards and token
filters, annotated producers, enabling memory, finite servers, no reset
arcs) the engine is **bit-identical** to
``Simulation(net, seed=s).run(horizon)`` per replication: every
replication owns its own ``default_rng(seed)`` stream, draws happen in
the interpreted engine's order (timed transitions refreshed in net
definition order; immediate conflicts resolved with the identical
weighted ``rng.choice`` call), deterministic delays consume no
randomness, and floating-point accumulation follows the same sequence
of additions.  Event ties resolve by (timed transition definition
order, server slot) — exactly the deterministic tie policy of
:class:`~repro.core.events.EventCalendar`.

Nets outside the subset raise
:class:`~repro.core.errors.UnsupportedNetError` at compile time; the
interpreted engine remains the reference oracle and fallback.
"""

from ..errors import UnsupportedNetError
from .compile import CompiledNet, compile_net
from .engine import EnsembleCounts, VectorPredicate, run_ensemble

__all__ = [
    "CompiledNet",
    "EnsembleCounts",
    "UnsupportedNetError",
    "VectorPredicate",
    "compile_net",
    "run_ensemble",
]
