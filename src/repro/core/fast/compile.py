"""Static compilation of a :class:`~repro.core.net.PetriNet` for the
vectorized ensemble engine.

Compilation turns the net's object graph into flat, replication-
vectorizable structures:

* a **colour universe** (every colour a token can ever carry, found by a
  static fixpoint over initial markings and output-arc colour rules),
* per-transition **enabling closures** mapping ``(counts3, totals)``
  arrays to an enabling-degree vector over replications,
* per-transition **firing plans**: a static ``[P, C]`` count delta for
  everything whose colours are known at compile time, plus explicit
  FIFO-queue ops (pops / matched pops / pushes / colour forwards) for
  the places where token *order* is observable,
* the **slot layout** of timed transitions: one column per server slot,
  ordered by (timed definition order, slot) so a first-occurrence
  ``argmin`` reproduces the event calendar's deterministic tie policy.

Anything whose semantics cannot be proven statically — opaque
:class:`~repro.core.guards.FunctionGuard` guards, un-introspectable
token filters or output producers, reset arcs, AGE/RESAMPLE memory,
infinite servers — raises
:class:`~repro.core.errors.UnsupportedNetError` naming the feature, so
callers fall back to the interpreted engine explicitly.

Producers become introspectable through two optional attributes:
``fast_static_color`` (the producer always returns that colour) and
``fast_forward_place`` (the producer returns the colour of the single
token consumed from that place).  Setting either asserts the producer
is pure — it must not read the rng, the clock, or the marking.

A **colour-observability** analysis keeps the universe small and the
forwarding rules decidable: a place's token colours matter only when a
filtered arc consumes from it, a ``fast_forward_place`` producer reads
it, or its tokens can flow (via the default-forwarding rule) into such
a place.  Everywhere else — e.g. the WSN model's stage pipeline, where
``_forwarded_color`` drags job-class colours through places nothing
ever inspects — colours collapse to ``None``: token counts, enabling,
firing order and statistics are all provably unaffected.
"""

from __future__ import annotations

import operator
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..arcs import InputArc, OutputArc
from ..distributions import FiringDistribution
from ..errors import UnsupportedNetError
from ..guards import (
    And,
    FalseGuard,
    Guard,
    Not,
    Or,
    TokenCountGuard,
    TrueGuard,
)
from ..net import PetriNet
from ..transitions import INFINITE_SERVERS, MemoryPolicy, Transition

__all__ = ["CompiledNet", "CompiledTransition", "FiringPlan", "compile_net"]

_COMPARE_OPS = frozenset(
    {operator.eq, operator.ne, operator.gt, operator.ge, operator.lt, operator.le}
)

# Degree closures return int64 vectors; guards bool vectors.
DegreeFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class FiringPlan:
    """Everything one firing of a transition does, in executable form.

    ``delta3`` / ``delta_tot`` carry every statically-coloured count
    change as one array add.  Queue ops execute in arc order: all pops
    (inputs) before all pushes (outputs), matching the interpreted
    engine's withdraw-then-deposit sequence.
    """

    delta3: np.ndarray  # [P, C] static count changes
    delta_tot: np.ndarray  # [P]
    has_static: bool
    # Unfiltered FIFO pops, arc order: (pop_ref, place_idx, multiplicity).
    pops: tuple[tuple[int, int, int], ...]
    # Oldest-matching pops (filtered consumption from a FIFO place):
    # (place_idx, color_code, multiplicity).
    pop_colors: tuple[tuple[int, int, int], ...]
    # Deposits of a popped colour: (place_idx, pop_ref).
    forwards: tuple[tuple[int, int], ...]
    # FIFO pushes, output-arc order: ("static", place, code, mult) or
    # ("fwd", place, pop_ref).
    pushes: tuple[tuple[Any, ...], ...]


@dataclass(frozen=True)
class CompiledTransition:
    """One transition, compiled: enabling closure plus firing plan."""

    name: str
    index: int  # position in net.transitions (statistics key order)
    is_timed: bool
    priority: int
    weight: float
    servers: int
    col0: int  # first slot column (timed only)
    deterministic_delay: float | None
    distribution: FiringDistribution
    degree: DegreeFn = field(repr=False)
    plan: FiringPlan = field(repr=False)
    # Places whose counts feed this transition's enabling degree
    # (inputs, inhibitors, guard reads, capacity-checked outputs).
    dep_places: frozenset[int] = frozenset()
    # Places whose counts change when this transition fires.
    touch_places: frozenset[int] = frozenset()


@dataclass(frozen=True)
class CompiledNet:
    """A net lowered to the vectorized engine's representation."""

    net: PetriNet
    place_names: tuple[str, ...]
    place_index: dict[str, int]
    transition_names: tuple[str, ...]
    colors: tuple[Any, ...]  # code -> colour value; code 0 is None
    color_index: dict[Any, int]
    possible_colors: dict[str, frozenset[Any]]
    observable: frozenset[str]  # places whose token colours matter
    queued_places: tuple[int, ...]
    timed: tuple[CompiledTransition, ...]  # net definition order
    immediates: tuple[CompiledTransition, ...]  # priority-desc, stable
    n_slots: int
    slot_timed: np.ndarray  # [n_slots] -> index into ``timed``

    @property
    def n_places(self) -> int:
        return len(self.place_names)

    @property
    def n_colors(self) -> int:
        return len(self.colors)


# ----------------------------------------------------------------------
# Guard compilation
# ----------------------------------------------------------------------
def _compile_guard(
    guard: Guard, place_index: dict[str, int], where: str
) -> Callable[[np.ndarray], np.ndarray] | None:
    """Lower a guard to a ``totals -> bool[R]`` closure (None = TRUE)."""
    if isinstance(guard, TrueGuard):
        return None
    if isinstance(guard, FalseGuard):
        return lambda totals: np.zeros(totals.shape[0], dtype=bool)
    if isinstance(guard, TokenCountGuard):
        if guard.op not in _COMPARE_OPS:
            raise UnsupportedNetError(
                f"token-count guard with non-standard operator {guard.op!r}",
                where,
            )
        p = place_index[guard.place]
        op, thr = guard.op, guard.threshold
        return lambda totals: op(totals[:, p], thr)
    if isinstance(guard, And):
        left = _compile_guard(guard.left, place_index, where)
        right = _compile_guard(guard.right, place_index, where)
        if left is None:
            return right
        if right is None:
            return left
        return lambda totals: left(totals) & right(totals)
    if isinstance(guard, Or):
        left = _compile_guard(guard.left, place_index, where)
        right = _compile_guard(guard.right, place_index, where)
        if left is None or right is None:
            return None  # TRUE | anything == TRUE
        return lambda totals: left(totals) | right(totals)
    if isinstance(guard, Not):
        inner = _compile_guard(guard.inner, place_index, where)
        if inner is None:
            return lambda totals: np.zeros(totals.shape[0], dtype=bool)
        return lambda totals: ~inner(totals)
    raise UnsupportedNetError(
        f"opaque guard {guard!s} (only the introspectable guard algebra "
        "compiles; FunctionGuard does not)",
        where,
    )


# ----------------------------------------------------------------------
# Colour analysis
# ----------------------------------------------------------------------
def _observable_places(net: PetriNet) -> frozenset[str]:
    """Places whose token *colours* can influence behaviour or results.

    Seeds: places consumed through a token filter.  Propagation: when a
    transition deposits a consumed-dependent colour into an observable
    place, the places that colour may have come from become observable
    too — every input place for the default-forwarding rule (the rule
    counts non-None consumed tokens across *all* arcs), the named
    source place for a ``fast_forward_place`` producer.  Everything
    outside the closure can safely be treated as colourless.
    """
    observable: set[str] = set()
    for t in net.transitions:
        for arc in t.inputs:
            if arc.token_filter is not None:
                observable.add(arc.place)
    changed = True
    while changed:
        changed = False
        for t in net.transitions:
            sources: set[str] = set()
            for arc in t.outputs:
                if arc.place not in observable:
                    continue
                if arc.color is not None:
                    continue
                if arc.producer is not None:
                    if hasattr(arc.producer, "fast_static_color"):
                        continue
                    fwd = getattr(arc.producer, "fast_forward_place", None)
                    if fwd is not None:
                        sources.add(fwd)
                    else:
                        # Opaque producer: could echo anything consumed.
                        sources.update(a.place for a in t.inputs)
                elif arc.multiplicity == 1:
                    sources.update(a.place for a in t.inputs)
                # multiplicity != 1 default arcs always deposit None.
            if not sources <= observable:
                observable |= sources
                changed = True
    return frozenset(observable)


def _filter_colors(arc: InputArc, where: str) -> frozenset[Any] | None:
    """Accepted colours of an input-arc filter; None = unfiltered."""
    if arc.token_filter is None:
        return None
    accepted = getattr(arc.token_filter, "accepted_colors", None)
    if accepted is None:
        raise UnsupportedNetError(
            "opaque token filter "
            f"{getattr(arc.token_filter, '__name__', arc.token_filter)!r} "
            "(only color_eq / color_in filters compile)",
            where,
        )
    return frozenset(accepted)


def _consumed_sets(
    t: Transition, possible: dict[str, frozenset[Any]]
) -> list[tuple[InputArc, frozenset[Any]]]:
    out: list[tuple[InputArc, frozenset[Any]]] = []
    for arc in t.inputs:
        accepted = getattr(arc.token_filter, "accepted_colors", None)
        if arc.token_filter is None:
            out.append((arc, possible[arc.place]))
        elif accepted is not None:
            out.append((arc, possible[arc.place] & frozenset(accepted)))
        else:  # opaque filter: conservative (compile rejects it later)
            out.append((arc, possible[arc.place]))
    return out


def _output_possible(
    arc: OutputArc, consumed: list[tuple[InputArc, frozenset[Any]]]
) -> frozenset[Any]:
    """Colours ``arc`` may deposit, given per-input possible colours."""
    if arc.color is not None:
        return frozenset({arc.color})
    if arc.producer is not None:
        if hasattr(arc.producer, "fast_static_color"):
            return frozenset({arc.producer.fast_static_color})
        fwd = getattr(arc.producer, "fast_forward_place", None)
        if fwd is not None:
            union: frozenset[Any] = frozenset()
            for in_arc, colors in consumed:
                if in_arc.place == fwd:
                    union |= colors
            return union | frozenset({None})
        # Opaque producer: anything it has seen could come out; compile
        # rejects the transition later, but keep the fixpoint sound.
        union = frozenset({None})
        for _, colors in consumed:
            union |= colors
        return union
    # Default forwarding rule.
    if arc.multiplicity != 1:
        return frozenset({None})
    union = frozenset({None})
    for _, colors in consumed:
        union |= frozenset(c for c in colors if c is not None)
    return union


def _possible_colors(
    net: PetriNet, observable: frozenset[str]
) -> dict[str, frozenset[Any]]:
    """Fixpoint: every colour each place can ever hold.

    Non-observable places are projected to ``None`` — their tokens are
    indistinguishable from colourless ones everywhere it could matter.
    """

    def project(place: str, colors: frozenset[Any]) -> frozenset[Any]:
        if place in observable or not colors:
            return colors
        return frozenset({None})

    possible: dict[str, frozenset[Any]] = {}
    for place in net.places:
        tokens = place.fresh_initial()
        possible[place.name] = project(
            place.name, frozenset(tok.color for tok in tokens)
        )
    changed = True
    while changed:
        changed = False
        for t in net.transitions:
            consumed = _consumed_sets(t, possible)
            for arc in t.outputs:
                add = project(arc.place, _output_possible(arc, consumed))
                if not add <= possible[arc.place]:
                    possible[arc.place] = possible[arc.place] | add
                    changed = True
    return possible


# ----------------------------------------------------------------------
# Transition compilation
# ----------------------------------------------------------------------
def _compile_degree(
    t: Transition,
    place_index: dict[str, int],
    color_index: dict[Any, int],
    possible: dict[str, frozenset[Any]],
    capacities: dict[int, int],
) -> DegreeFn:
    """Lower :meth:`Simulation.enabling_degree` to vector form."""
    where = t.name
    inhibitors = tuple(
        (place_index[a.place], a.multiplicity) for a in t.inhibitors
    )
    guard_fn = _compile_guard(t.guard, place_index, where)
    inputs: list[tuple[str, int, Any, int]] = []
    for arc in t.inputs:
        p = place_index[arc.place]
        accepted = _filter_colors(arc, where)
        if accepted is None:
            inputs.append(("any", p, None, arc.multiplicity))
        else:
            codes = sorted(
                color_index[c] for c in accepted & possible[arc.place]
            )
            if len(codes) == 1:
                inputs.append(("color", p, codes[0], arc.multiplicity))
            else:
                inputs.append(("colors", p, tuple(codes), arc.multiplicity))
    caps: list[tuple[int, int, int, int]] = []
    reset_places = {r.place for r in t.resets}
    for arc in t.outputs:
        p = place_index[arc.place]
        if arc.place in reset_places or p not in capacities:
            continue
        removed = sum(
            a.multiplicity for a in t.inputs if a.place == arc.place
        )
        caps.append((p, capacities[p], arc.multiplicity, removed))
    inputs_t = tuple(inputs)
    caps_t = tuple(caps)

    # Hot-path specialisation: the overwhelmingly common transition is
    # "one unfiltered multiplicity-1 input, no inhibitors, no guard, no
    # capacity check" — its degree is just the token count.
    if (
        not inhibitors
        and guard_fn is None
        and not caps_t
        and len(inputs_t) == 1
        and inputs_t[0][0] == "any"
        and inputs_t[0][3] == 1
    ):
        p_only = inputs_t[0][1]
        return lambda counts3, totals: totals[:, p_only]

    def degree(counts3: np.ndarray, totals: np.ndarray) -> np.ndarray:
        ok: np.ndarray | None = None
        for p, m in inhibitors:
            cond = totals[:, p] < m
            ok = cond if ok is None else (ok & cond)
        if guard_fn is not None:
            g = guard_fn(totals)
            ok = g if ok is None else (ok & g)
        deg: np.ndarray | None = None
        for kind, p, code, m in inputs_t:
            if kind == "any":
                avail = totals[:, p]
            elif kind == "color":
                avail = counts3[:, p, code]
            else:
                avail = counts3[:, p, list(code)].sum(axis=1)
            d = avail // m if m != 1 else avail
            deg = d if deg is None else np.minimum(deg, d)
        for p, cap, m, removed in caps_t:
            head = (cap - totals[:, p] + removed) // m
            deg = head if deg is None else np.minimum(deg, head)
        if deg is None:
            deg = np.ones(totals.shape[0], dtype=np.int64)
        elif caps_t:
            # Only a capacity term can drive the degree negative.
            deg = np.maximum(deg, 0)
        if ok is not None:
            deg = np.where(ok, deg, 0)
        return deg

    return degree


def _dep_places(
    t: Transition,
    place_index: dict[str, int],
    capacities: dict[int, int],
) -> frozenset[int]:
    """Places whose counts can change this transition's degree."""
    deps: set[int] = set()
    for arc in t.inputs:
        deps.add(place_index[arc.place])
    for arc in t.inhibitors:
        deps.add(place_index[arc.place])
    guard_deps = t.guard.dependencies()
    if guard_deps is None:  # pragma: no cover - FunctionGuard is rejected
        deps.update(place_index.values())
    else:
        deps.update(place_index[name] for name in guard_deps)
    reset_places = {r.place for r in t.resets}
    for arc in t.outputs:
        p = place_index[arc.place]
        if arc.place not in reset_places and p in capacities:
            deps.add(p)
    return frozenset(deps)


def _touch_places(plan: FiringPlan) -> frozenset[int]:
    """Places whose counts change when a firing executes ``plan``."""
    touched: set[int] = set(np.flatnonzero(plan.delta3.any(axis=1)))
    touched.update(np.flatnonzero(plan.delta_tot))
    touched.update(p for _, p, _ in plan.pops)
    touched.update(p for p, _ in plan.forwards)
    return frozenset(int(p) for p in touched)


def _compile_plan(
    t: Transition,
    place_index: dict[str, int],
    color_index: dict[Any, int],
    possible: dict[str, frozenset[Any]],
    observable: frozenset[str],
    queued: frozenset[int],
    n_places: int,
    n_colors: int,
) -> FiringPlan:
    """Lower one firing to a static delta plus explicit queue ops."""
    where = t.name
    if t.resets:
        raise UnsupportedNetError("reset arcs", where)
    delta3 = np.zeros((n_places, n_colors), dtype=np.int64)
    delta_tot = np.zeros(n_places, dtype=np.int64)
    pops: list[tuple[int, int, int]] = []
    pop_colors: list[tuple[int, int, int]] = []
    forwards: list[tuple[int, int]] = []
    pushes: list[tuple[Any, ...]] = []
    # pop_ref -> (input arc, statically known colour or None-marker)
    # Consumption side: record, per input arc, either a static colour
    # (exactly one possible) or a pop reference into the FIFO.
    arc_sources: list[tuple[InputArc, str, Any]] = []  # (arc, kind, data)
    for arc in t.inputs:
        p = place_index[arc.place]
        accepted = _filter_colors(arc, where)
        pool = (
            possible[arc.place]
            if accepted is None
            else possible[arc.place] & accepted
        )
        if accepted is None and len(pool) > 1:
            # Colour chosen by FIFO order at runtime.
            if p not in queued:  # pragma: no cover - defensive
                raise UnsupportedNetError(
                    "unfiltered consumption from an unqueued multi-colour "
                    "place",
                    where,
                )
            ref = len(pops)
            pops.append((ref, p, arc.multiplicity))
            arc_sources.append((arc, "pop", ref))
            continue
        if len(pool) > 1:
            raise UnsupportedNetError(
                "filtered consumption matching more than one colour",
                where,
            )
        # Exactly one colour can satisfy this arc (an empty pool means
        # the transition can never be enabled; compile it anyway).
        code = color_index[next(iter(pool))] if pool else 0
        if p in queued:
            # Counts change statically; only the FIFO buffer needs the
            # oldest-matching removal at runtime.
            pop_colors.append((p, code, arc.multiplicity))
        delta3[p, code] -= arc.multiplicity
        delta_tot[p] -= arc.multiplicity
        color = next(iter(pool)) if pool else None
        arc_sources.append((arc, "static", color))

    def _static_deposit(p: int, color: Any, mult: int) -> None:
        code = color_index[color]
        delta3[p, code] += mult
        delta_tot[p] += mult
        if p in queued:
            pushes.append(("static", p, code, mult))

    def _forward_deposit(p: int, ref: int) -> None:
        forwards.append((p, ref))
        delta_tot[p] += 1
        if p in queued:
            pushes.append(("fwd", p, ref))

    for arc in t.outputs:
        p = place_index[arc.place]
        if arc.place not in observable:
            # Whatever colour the interpreted engine would deposit here
            # is provably never inspected: collapse it to None.  The
            # producer (if any) must still be annotated — the annotation
            # is the purity assertion that lets us skip calling it.
            if arc.producer is not None and not (
                hasattr(arc.producer, "fast_static_color")
                or getattr(arc.producer, "fast_forward_place", None)
                is not None
            ):
                raise UnsupportedNetError(
                    "opaque output producer (annotate with "
                    "fast_static_color or fast_forward_place)",
                    where,
                )
            _static_deposit(p, None, arc.multiplicity)
            continue
        if arc.color is not None:
            _static_deposit(p, arc.color, arc.multiplicity)
            continue
        if arc.producer is not None:
            if hasattr(arc.producer, "fast_static_color"):
                _static_deposit(
                    p, arc.producer.fast_static_color, arc.multiplicity
                )
                continue
            fwd = getattr(arc.producer, "fast_forward_place", None)
            if fwd is None:
                raise UnsupportedNetError(
                    "opaque output producer (annotate with fast_static_color "
                    "or fast_forward_place)",
                    where,
                )
            sources = [s for s in arc_sources if s[0].place == fwd]
            if (
                arc.multiplicity != 1
                or len(sources) != 1
                or sources[0][0].multiplicity != 1
            ):
                raise UnsupportedNetError(
                    f"fast_forward_place={fwd!r} needs exactly one "
                    "multiplicity-1 input arc from that place and a "
                    "multiplicity-1 output",
                    where,
                )
            _, kind, data = sources[0]
            if kind == "static":
                _static_deposit(p, data, 1)
            else:
                _forward_deposit(p, data)
            continue
        # Default forwarding: the deposited colour is the single
        # non-None consumed colour, else None.  Resolve statically.
        if arc.multiplicity != 1:
            _static_deposit(p, None, arc.multiplicity)
            continue
        static_nonnone = [
            (kind, data, a.multiplicity)
            for a, kind, data in arc_sources
            if kind == "static" and data is not None
        ]
        dynamic = [
            (data, a.multiplicity)
            for a, kind, data in arc_sources
            if kind == "pop" and possible[a.place] - {None}
        ]
        n_static = sum(m for _, _, m in static_nonnone)
        if n_static == 0 and not dynamic:
            _static_deposit(p, None, 1)
        elif n_static == 1 and not dynamic:
            _static_deposit(p, static_nonnone[0][1], 1)
        elif n_static == 0 and len(dynamic) == 1 and dynamic[0][1] == 1:
            # The popped token is the only candidate: forwarding its
            # colour reproduces the rule exactly (a popped None token
            # means zero non-None consumed, i.e. forward None).
            _forward_deposit(p, dynamic[0][0])
        elif n_static >= 2:
            _static_deposit(p, None, 1)
        else:
            raise UnsupportedNetError(
                "statically ambiguous colour forwarding (mixed static and "
                "FIFO-popped non-None consumed tokens)",
                where,
            )
    # delta_tot also carries the (statically known) total change of
    # forwarded deposits and FIFO-matched pops, so check both.
    has_static = bool(delta3.any() or delta_tot.any())
    return FiringPlan(
        delta3=delta3,
        delta_tot=delta_tot,
        has_static=has_static,
        pops=tuple(pops),
        pop_colors=tuple(pop_colors),
        forwards=tuple(forwards),
        pushes=tuple(pushes),
    )


def compile_net(net: PetriNet) -> CompiledNet:
    """Compile ``net`` for the vectorized engine.

    Raises
    ------
    UnsupportedNetError
        When the net uses a feature outside the compilable subset; the
        message names the feature and the offending element.
    """
    place_names = tuple(net.place_names)
    place_index = {name: i for i, name in enumerate(place_names)}
    observable = _observable_places(net)
    possible = _possible_colors(net, observable)
    universe: set[Any] = {None}
    for colors in possible.values():
        universe |= colors
    ordered = [None] + sorted(
        (c for c in universe if c is not None), key=repr
    )
    color_index = {c: i for i, c in enumerate(ordered)}
    capacities = {
        place_index[p.name]: p.capacity
        for p in net.places
        if p.capacity is not None
    }
    # A place needs FIFO bookkeeping when its colour is decided by token
    # order: more than one possible colour and at least one unfiltered
    # consuming arc.
    queued: set[int] = set()
    for t in net.transitions:
        for arc in t.inputs:
            if (
                arc.token_filter is None
                and len(possible[arc.place]) > 1
            ):
                queued.add(place_index[arc.place])

    timed: list[CompiledTransition] = []
    slot_timed: list[int] = []
    col = 0
    for index, t in enumerate(net.transitions):
        if not t.is_timed:
            continue
        if t.memory is not MemoryPolicy.ENABLING:
            raise UnsupportedNetError(
                f"{t.memory.value!r} memory policy (only enabling memory "
                "compiles)",
                t.name,
            )
        if t.servers == INFINITE_SERVERS:
            raise UnsupportedNetError("infinite servers", t.name)
        degree = _compile_degree(
            t, place_index, color_index, possible, capacities
        )
        plan = _compile_plan(
            t,
            place_index,
            color_index,
            possible,
            observable,
            frozenset(queued),
            len(place_names),
            len(ordered),
        )
        ct = CompiledTransition(
            name=t.name,
            index=index,
            is_timed=True,
            priority=t.priority,
            weight=t.weight,
            servers=t.servers,
            col0=col,
            deterministic_delay=(
                t.distribution.delay if t.is_deterministic else None
            ),
            distribution=t.distribution,
            degree=degree,
            plan=plan,
            dep_places=_dep_places(t, place_index, capacities),
            touch_places=_touch_places(plan),
        )
        slot_timed.extend([len(timed)] * t.servers)
        col += t.servers
        timed.append(ct)

    immediates: list[CompiledTransition] = []
    ordered_imm = sorted(
        (
            (index, t)
            for index, t in enumerate(net.transitions)
            if t.is_immediate
        ),
        key=lambda pair: -pair[1].priority,
    )
    for index, t in ordered_imm:
        degree = _compile_degree(
            t, place_index, color_index, possible, capacities
        )
        plan = _compile_plan(
            t,
            place_index,
            color_index,
            possible,
            observable,
            frozenset(queued),
            len(place_names),
            len(ordered),
        )
        immediates.append(
            CompiledTransition(
                name=t.name,
                index=index,
                is_timed=False,
                priority=t.priority,
                weight=t.weight,
                servers=1,
                col0=-1,
                deterministic_delay=None,
                distribution=t.distribution,
                degree=degree,
                plan=plan,
                dep_places=_dep_places(t, place_index, capacities),
                touch_places=_touch_places(plan),
            )
        )

    return CompiledNet(
        net=net,
        place_names=place_names,
        place_index=place_index,
        transition_names=tuple(net.transition_names),
        colors=tuple(ordered),
        color_index=color_index,
        possible_colors={k: frozenset(v) for k, v in possible.items()},
        observable=observable,
        queued_places=tuple(sorted(queued)),
        timed=tuple(timed),
        immediates=tuple(immediates),
        n_slots=col,
        slot_timed=np.asarray(slot_timed, dtype=np.int64),
    )
