"""The lockstep ensemble engine: all replications of one sweep point as
NumPy arrays.

One *round* advances every still-active replication by exactly one
timed event:

1. ``argmin`` over the ``[R, S]`` slot-time matrix picks each
   replication's next firing; replications whose next event lies beyond
   the horizon (or that deadlocked — all slots idle) retire.
2. Time-weighted statistics integrate the *resting* counts over each
   replication's elapsed interval (dt == 0 never contributes, matching
   the interpreted accumulator's ``if hi > lo`` guard bit for bit).
3. Popped transitions fire grouped per transition (one static-delta
   array add per group, plus explicit FIFO ops for order-observable
   places), guarded by the same defensive scheduled-but-stale degree
   check as :meth:`Simulation.step`.
4. The immediate phase loops: enabling masks per immediate, best
   priority per replication, and — only for replications with a genuine
   tie — the interpreted engine's exact weighted ``rng.choice`` call.
5. Timed schedules refresh in net definition order, drawing per-
   replication delays with each replication's own generator in the
   interpreted engine's draw order.

Every replication owns a private ``default_rng(seed)``; cross-
replication interleaving never touches the streams, which is what makes
the engine bit-identical to ``Simulation(net, seed).run(horizon)`` for
compilable nets (see the package docstring for the contract).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from typing import Any

import numpy as np

from ..errors import (
    DeadlockError,
    ImmediateLoopError,
    SimulationError,
    UnsupportedNetError,
)
from ..net import PetriNet
from ..simulator import SimulationResult
from ..statistics import (
    PredicateStatistic,
    StatisticsCollector,
)
from .compile import CompiledNet, CompiledTransition, compile_net

__all__ = ["EnsembleCounts", "VectorPredicate", "run_ensemble"]


class EnsembleCounts:
    """Marking facade over the ensemble: ``count(place) -> int64[R]``.

    Handed to :class:`VectorPredicate` functions; arithmetic over the
    returned arrays vectorizes naturally (``m.count("A") + m.count("B")
    > 0`` yields a boolean vector).
    """

    __slots__ = ("_totals", "_index")

    def __init__(self, totals: np.ndarray, index: dict[str, int]) -> None:
        self._totals = totals
        self._index = index

    def count(self, place: str) -> np.ndarray:
        """Token counts of ``place`` across the (selected) replications."""
        return self._totals[:, self._index[place]]


class VectorPredicate:
    """A marking predicate evaluated for all replications at once.

    ``fn`` receives an :class:`EnsembleCounts` and must return a boolean
    vector.  Wrap predicates in this class when they are pure count
    arithmetic; plain scalar callables (evaluated per replication
    against a ``count()`` view) also work but cost a Python call per
    replication per firing.
    """

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[EnsembleCounts], np.ndarray]) -> None:
        self.fn = fn


class _ScalarCounts:
    """Single-replication ``count()`` view for scalar predicates."""

    __slots__ = ("_totals", "_index", "_row")

    def __init__(self, totals: np.ndarray, index: dict[str, int]) -> None:
        self._totals = totals
        self._index = index
        self._row = 0

    def count(self, place: str) -> int:
        return int(self._totals[self._row, self._index[place]])


class _ColorQueue:
    """Per-place FIFO colour ring buffer over all replications."""

    __slots__ = ("buf", "head", "size", "cap")

    def __init__(self, n_reps: int, initial: Sequence[int]) -> None:
        n0 = len(initial)
        self.cap = max(4, 2 * n0)
        self.buf = np.zeros((n_reps, self.cap), dtype=np.int64)
        if n0:
            self.buf[:, :n0] = np.asarray(initial, dtype=np.int64)
        self.head = np.zeros(n_reps, dtype=np.int64)
        self.size = np.full(n_reps, n0, dtype=np.int64)

    def _grow(self) -> None:
        new_cap = self.cap * 2
        idx = (self.head[:, None] + np.arange(self.cap)) % self.cap
        unrolled = np.take_along_axis(self.buf, idx, axis=1)
        buf = np.zeros((self.buf.shape[0], new_cap), dtype=np.int64)
        buf[:, : self.cap] = unrolled
        self.buf = buf
        self.head[:] = 0
        self.cap = new_cap

    def push(self, idx: np.ndarray, codes: np.ndarray | int) -> None:
        if (self.size[idx] >= self.cap).any():
            self._grow()
        pos = (self.head[idx] + self.size[idx]) % self.cap
        self.buf[idx, pos] = codes
        self.size[idx] += 1

    def pop(self, idx: np.ndarray) -> np.ndarray:
        if (self.size[idx] <= 0).any():
            raise SimulationError(
                "vectorized engine popped from an empty FIFO place "
                "(engine invariant violated)"
            )
        codes = self.buf[idx, self.head[idx]]
        self.head[idx] = (self.head[idx] + 1) % self.cap
        self.size[idx] -= 1
        return codes

    def pop_matching(self, idx: np.ndarray, code: int) -> None:
        """Remove the oldest token of colour ``code`` per replication.

        Mirrors ``TokenBag.take(1, filter)``: later tokens keep their
        relative order.  Per-replication scan; matched pops are rare
        relative to head pops, so the Python loop stays off the hot
        path.
        """
        buf, head, size, cap = self.buf, self.head, self.size, self.cap
        for r in idx:
            n = int(size[r])
            h = int(head[r])
            for j in range(n):
                if buf[r, (h + j) % cap] == code:
                    for k in range(j, n - 1):
                        buf[r, (h + k) % cap] = buf[r, (h + k + 1) % cap]
                    size[r] = n - 1
                    break
            else:
                raise SimulationError(
                    "vectorized engine found no matching token in a FIFO "
                    "place (engine invariant violated)"
                )


class _Ensemble:
    """Mutable run state of one lockstep ensemble."""

    def __init__(
        self,
        cn: CompiledNet,
        rngs: list[np.random.Generator],
        warmup: float,
        initial_marking: Mapping[str, Any] | None,
        predicates: Mapping[str, Any] | None,
        on_deadlock: str,
        max_immediate_firings: int,
    ) -> None:
        self.cn = cn
        self.rngs = rngs
        self.warmup = float(warmup)
        self.on_deadlock = on_deadlock
        self.max_immediate_firings = int(max_immediate_firings)
        reps = len(rngs)
        n_places, n_colors = cn.n_places, cn.n_colors
        # The initial marking is identical across replications; read it
        # through the engine's own Marking so overrides, capacities and
        # colour order behave exactly as in the interpreted engine.
        marking = cn.net.initial_marking(initial_marking)
        base3 = np.zeros((n_places, n_colors), dtype=np.int64)
        init_queues: dict[int, list[int]] = {}
        for name, p in cn.place_index.items():
            colors = marking.bag(name).colors()
            if name not in cn.observable:
                # Colours in non-observable places are projected to the
                # colourless token at compile time (see compile.py); the
                # initial marking must collapse the same way or the
                # counts would desync from the compiled firing plans.
                colors = [None] * len(colors)
            pool = cn.possible_colors.get(name, frozenset())
            for c in colors:
                if c not in pool:
                    raise UnsupportedNetError(
                        f"initial-marking colour {c!r} outside the "
                        f"compiled colour pool of this place",
                        name,
                    )
                base3[p, cn.color_index[c]] += 1
            if p in cn.queued_places:
                init_queues[p] = [cn.color_index[c] for c in colors]
        self.counts3 = np.repeat(base3[None, :, :], reps, axis=0)
        self.totals = self.counts3.sum(axis=2)
        self.queues = {
            p: _ColorQueue(reps, init_queues.get(p, []))
            for p in cn.queued_places
        }
        self.clock = np.zeros(reps)
        self.sched = np.full((reps, cn.n_slots), np.inf)
        self.firings = np.zeros(reps, dtype=np.int64)
        self.firing_counts = np.zeros(
            (reps, len(cn.transition_names)), dtype=np.int64
        )
        self.stale_pops = 0
        self.done = np.zeros(reps, dtype=bool)
        self.deadlocked = np.zeros(reps, dtype=bool)
        # Statistics arrays (see TimeWeightedAccumulator): one shared
        # observed-time vector — every accumulator of a replication sees
        # the same update times.
        self.integral = np.zeros((reps, n_places))
        self.nonzero_time = np.zeros((reps, n_places))
        self.observed = np.zeros(reps)
        self.max_counts = self.totals.copy()
        self.preds: list[tuple[str, Any, bool]] = []
        self.pred_value: dict[str, np.ndarray] = {}
        self.pred_integral: dict[str, np.ndarray] = {}
        self.pred_max: dict[str, np.ndarray] = {}
        for name, spec in (predicates or {}).items():
            vector = isinstance(spec, VectorPredicate)
            self.preds.append((name, spec, vector))
            self.pred_value[name] = np.zeros(reps)
            self.pred_integral[name] = np.zeros(reps)
            self.pred_max[name] = np.zeros(reps)
        self._all = np.arange(reps)
        self._eval_predicates(self._all)
        for name in self.pred_value:
            self.pred_max[name] = self.pred_value[name].copy()

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    def _eval_predicates(self, idx: np.ndarray) -> None:
        if not self.preds:
            return
        for name, spec, vector in self.preds:
            if vector:
                counts = EnsembleCounts(
                    self.totals[idx], self.cn.place_index
                )
                vals = np.asarray(spec.fn(counts), dtype=bool).astype(float)
            else:
                view = _ScalarCounts(self.totals, self.cn.place_index)
                vals = np.empty(idx.size)
                for a, r in enumerate(idx):
                    view._row = r
                    vals[a] = 1.0 if spec(view) else 0.0
            self.pred_value[name][idx] = vals
            # NB: arr[idx] is a fancy-indexing copy — assign back, never
            # np.maximum(..., out=arr[idx]).
            self.pred_max[name][idx] = np.maximum(
                self.pred_max[name][idx], vals
            )

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def _fire(self, ct: CompiledTransition, idx: np.ndarray) -> None:
        """Apply one firing of ``ct`` for every replication in ``idx``.

        Pure marking mutation; callers batch the per-firing statistics
        via :meth:`_post_fire` once per lockstep iteration (each
        replication fires at most once per iteration, so batching
        observes exactly the same post-firing states the interpreted
        engine samples).
        """
        counts3, totals = self.counts3, self.totals
        plan = ct.plan
        popped: dict[int, np.ndarray] = {}
        for ref, p, mult in plan.pops:
            q = self.queues[p]
            for _ in range(mult):
                codes = q.pop(idx)
                counts3[idx, p, codes] -= 1
                totals[idx, p] -= 1
            popped[ref] = codes
        for p, code, mult in plan.pop_colors:
            q = self.queues[p]
            for _ in range(mult):
                q.pop_matching(idx, code)
        if plan.has_static:
            counts3[idx] += plan.delta3
            totals[idx] += plan.delta_tot
        for p, ref in plan.forwards:
            counts3[idx, p, popped[ref]] += 1
        for op in plan.pushes:
            if op[0] == "static":
                _, p, code, mult = op
                for _ in range(mult):
                    self.queues[p].push(idx, code)
            else:
                _, p, ref = op
                self.queues[p].push(idx, popped[ref])

    def _post_fire(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Per-firing statistics for one iteration's firings.

        ``rows`` are the replications that fired (each exactly once this
        iteration); ``cols`` the fired transition's index per row.
        """
        self.firings[rows] += 1
        if self.warmup > 0.0:
            counted = self.clock[rows] >= self.warmup
            self.firing_counts[rows[counted], cols[counted]] += 1
        else:
            self.firing_counts[rows, cols] += 1
        self.max_counts[rows] = np.maximum(
            self.max_counts[rows], self.totals[rows]
        )
        self._eval_predicates(rows)

    # ------------------------------------------------------------------
    # Immediate phase
    # ------------------------------------------------------------------
    def _immediate_phase(
        self, idx: np.ndarray, touched: set[int] | None = None
    ) -> None:
        """Fire enabled immediates until none remain, in lockstep.

        ``touched`` — the places whose counts changed since the last
        completed immediate phase — lets us skip immediates that were
        provably left disabled: an immediate whose dependency places
        are all untouched cannot have become enabled.  ``None`` means
        "unknown, evaluate everything" (the initial phase).  The set is
        updated in place as immediates fire.
        """
        cn = self.cn
        if not cn.immediates:
            return
        fired = np.zeros(self.clock.shape[0], dtype=np.int64)
        rem = idx
        while rem.size:
            if touched is None:
                cand_ids = list(range(len(cn.immediates)))
            else:
                cand_ids = [
                    i
                    for i, ct in enumerate(cn.immediates)
                    if not touched.isdisjoint(ct.dep_places)
                ]
            if not cand_ids:
                return
            counts3, totals = self.counts3[rem], self.totals[rem]
            enab = np.zeros((len(cand_ids), rem.size), dtype=bool)
            prios = np.empty(len(cand_ids))
            for row, i in enumerate(cand_ids):
                ct = cn.immediates[i]
                enab[row] = ct.degree(counts3, totals) > 0
                prios[row] = ct.priority
            any_enabled = enab.any(axis=0)
            rem = rem[any_enabled]
            if not rem.size:
                return
            enab = enab[:, any_enabled]
            masked = np.where(enab, prios[:, None], -np.inf)
            best = masked.max(axis=0)
            cand = enab & (masked == best)
            n_cand = cand.sum(axis=0)
            chosen = np.argmax(cand, axis=0)
            for a in np.flatnonzero(n_cand > 1):
                # Replicates Simulation._fire_immediates exactly: the
                # candidate list is the priority-sorted immediates
                # restricted to the tie, weights normalised the same
                # way, drawn from this replication's own stream.
                r = rem[a]
                c_list = np.flatnonzero(cand[:, a])
                weights = np.array(
                    [cn.immediates[cand_ids[i]].weight for i in c_list]
                )
                j = int(
                    self.rngs[r].choice(
                        len(c_list), p=weights / weights.sum()
                    )
                )
                chosen[a] = c_list[j]
            imm_index = np.empty(len(cand_ids), dtype=np.int64)
            for u in np.unique(chosen):
                ct = cn.immediates[cand_ids[u]]
                imm_index[u] = ct.index
                self._fire(ct, rem[chosen == u])
                if touched is not None:
                    touched.update(ct.touch_places)
            self._post_fire(rem, imm_index[chosen])
            fired[rem] += 1
            over = rem[fired[rem] > self.max_immediate_firings]
            if over.size:
                raise ImmediateLoopError(
                    float(self.clock[over[0]]), self.max_immediate_firings
                )

    # ------------------------------------------------------------------
    # Timed refresh
    # ------------------------------------------------------------------
    def _refresh_timed(
        self,
        idx: np.ndarray,
        touched: set[int] | None = None,
        popped: set[int] | None = None,
    ) -> None:
        """Re-align every timed schedule with the current enabling.

        A transition can be skipped when no replication changed any of
        its dependency places this round (its degree — and therefore
        its want/have balance — is unchanged for every row) *and* none
        of its slots was consumed by the argmin pop (``popped`` holds
        indices into ``cn.timed`` whose event fired or staled this
        round; their slot went idle and may need a restart draw even
        with an unchanged degree, e.g. a self-loop source transition).
        Skipping never skips an RNG draw the interpreted engine would
        make: an unchanged degree with untouched slots starts nothing.
        """
        counts3, totals = self.counts3[idx], self.totals[idx]
        sched, clock, rngs = self.sched, self.clock, self.rngs
        for u, ct in enumerate(self.cn.timed):
            if (
                touched is not None
                and touched.isdisjoint(ct.dep_places)
                and (popped is None or u not in popped)
            ):
                continue
            deg = ct.degree(counts3, totals)
            if ct.servers == 1:
                col = ct.col0
                cur = sched[idx, col]
                live = np.isfinite(cur)
                want = deg > 0
                stop = live & ~want
                if stop.any():
                    sched[idx[stop], col] = np.inf
                start = want & ~live
                if not start.any():
                    continue
                started = idx[start]
                if ct.deterministic_delay is not None:
                    sched[started, col] = (
                        clock[started] + ct.deterministic_delay
                    )
                else:
                    dist = ct.distribution
                    for r in started:
                        sched[r, col] = clock[r] + dist.sample(rngs[r])
            else:
                self._refresh_multi_server(ct, idx, deg)

    def _refresh_multi_server(
        self, ct: CompiledTransition, idx: np.ndarray, deg: np.ndarray
    ) -> None:
        """Finite k > 1 servers: per-replication slot bookkeeping.

        Mirrors Simulation._refresh_timed: start fills the lowest idle
        slots in ascending order (one delay draw per started slot);
        cancellation drops the latest-scheduled slots first, stable on
        equal times.  Cold path — the shipped models are single-server.
        """
        sched, clock, rngs = self.sched, self.clock, self.rngs
        k = ct.servers
        c0 = ct.col0
        for a, r in enumerate(idx):
            want = min(int(deg[a]), k)
            live = [
                s for s in range(k) if np.isfinite(sched[r, c0 + s])
            ]
            have = len(live)
            if want > have:
                taken = set(live)
                need = want - have
                slot = 0
                while need > 0:
                    if slot not in taken:
                        if ct.deterministic_delay is not None:
                            delay = ct.deterministic_delay
                        else:
                            delay = ct.distribution.sample(rngs[r])
                        sched[r, c0 + slot] = clock[r] + delay
                        need -= 1
                    slot += 1
            elif want < have:
                by_time = sorted(
                    live, key=lambda s: sched[r, c0 + s], reverse=True
                )
                for s in by_time[: have - want]:
                    sched[r, c0 + s] = np.inf

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def run(self, horizon: float) -> None:
        cn = self.cn
        sched, clock, warmup = self.sched, self.clock, self.warmup
        active = self._all
        self._immediate_phase(active)
        self._refresh_timed(active)
        if cn.n_slots == 0:
            # No timed transitions: once the initial immediates settle
            # the calendar is empty — every replication deadlocks at 0.
            self.done[:] = True
            self.deadlocked[:] = True
            if self.on_deadlock == "raise":
                raise DeadlockError(0.0)
            return
        while active.size:
            sub = sched[active]
            k = np.argmin(sub, axis=1)
            next_t = sub[np.arange(active.size), k]
            alive = next_t <= horizon
            if not alive.all():
                retired = active[~alive]
                dead = retired[np.isinf(next_t[~alive])]
                self.done[retired] = True
                self.deadlocked[dead] = True
                if dead.size and self.on_deadlock == "raise":
                    raise DeadlockError(float(clock[dead[0]]))
                active = active[alive]
                k = k[alive]
                next_t = next_t[alive]
                if not active.size:
                    break
            # Integrate the resting state over each replication's
            # elapsed interval (same addition sequence per replication
            # as the interpreted accumulators).
            lo = np.maximum(clock[active], warmup)
            dt = np.maximum(next_t - lo, 0.0)
            self.observed[active] += dt
            self.integral[active] += self.totals[active] * dt[:, None]
            self.nonzero_time[active] += (
                self.totals[active] > 0
            ) * dt[:, None]
            for name in self.pred_integral:
                self.pred_integral[name][active] += (
                    self.pred_value[name][active] * dt
                )
            clock[active] = next_t
            sched[active, k] = np.inf
            timed_of = cn.slot_timed[k]
            touched: set[int] = set()
            popped: set[int] = set()
            fired_rows: list[np.ndarray] = []
            fired_cols: list[np.ndarray] = []
            for u in np.unique(timed_of):
                group = active[timed_of == u]
                ct = cn.timed[u]
                popped.add(int(u))
                deg = ct.degree(self.counts3[group], self.totals[group])
                enabled = deg > 0
                if not enabled.all():
                    # Scheduled-but-stale (see Simulation.step): the
                    # clock advance stands, statistics already sampled,
                    # the firing is skipped.
                    self.stale_pops += int((~enabled).sum())
                live = group[enabled]
                if live.size:
                    self._fire(ct, live)
                    touched.update(ct.touch_places)
                    fired_rows.append(live)
                    fired_cols.append(
                        np.full(live.size, ct.index, dtype=np.int64)
                    )
            if fired_rows:
                self._post_fire(
                    np.concatenate(fired_rows), np.concatenate(fired_cols)
                )
            self._immediate_phase(active, touched)
            self._refresh_timed(active, touched, popped)

    # ------------------------------------------------------------------
    # Result hydration
    # ------------------------------------------------------------------
    def finalize(self, horizon: float) -> list[SimulationResult]:
        cn = self.cn
        # Deadlocked replications stop early, exactly like the
        # interpreted run(): their statistics close at the deadlock
        # time, not the horizon.
        end = np.where(self.deadlocked, self.clock, horizon)
        lo = np.maximum(self.clock, self.warmup)
        dt = np.maximum(end - lo, 0.0)
        self.observed += dt
        self.integral += self.totals * dt[:, None]
        self.nonzero_time += (self.totals > 0) * dt[:, None]
        for name in self.pred_integral:
            self.pred_integral[name] += self.pred_value[name] * dt
        out: list[SimulationResult] = []
        place_names = list(cn.place_names)
        transition_names = list(cn.transition_names)
        for r in range(len(self.rngs)):
            end_r = float(end[r])
            stats = StatisticsCollector(
                place_names, transition_names, self.warmup
            )
            for j, name in enumerate(place_names):
                acc = stats.place_acc[name]
                acc._last_time = end_r
                acc._last_value = float(self.totals[r, j])
                acc._integral = float(self.integral[r, j])
                acc._nonzero_time = float(self.nonzero_time[r, j])
                acc._observed_time = float(self.observed[r])
                acc._max_value = float(self.max_counts[r, j])
            for j, name in enumerate(transition_names):
                counter = stats.transition_counters[name]
                counter.count = int(self.firing_counts[r, j])
                counter._last_time = end_r
            for name, spec, vector in self.preds:
                fn = spec.fn if vector else spec
                ps = PredicateStatistic(name, fn, self.warmup)
                acc = ps.acc
                acc._last_time = end_r
                acc._last_value = float(self.pred_value[name][r])
                acc._integral = float(self.pred_integral[name][r])
                # 0/1 signal: time at nonzero == the integral itself.
                acc._nonzero_time = float(self.pred_integral[name][r])
                acc._observed_time = float(self.observed[r])
                acc._max_value = float(self.pred_max[name][r])
                stats.predicates[name] = ps
            stats.end_time = end_r
            out.append(
                SimulationResult(
                    net_name=cn.net.name,
                    end_time=end_r,
                    stats=stats,
                    firings=int(self.firings[r]),
                    deadlocked=bool(self.deadlocked[r]),
                    final_marking_counts={
                        name: int(self.totals[r, j])
                        for j, name in enumerate(place_names)
                    },
                )
            )
        return out


def run_ensemble(
    net: PetriNet,
    horizon: float,
    seeds: Sequence[int] | None = None,
    *,
    rngs: Sequence[np.random.Generator] | None = None,
    warmup: float = 0.0,
    initial_marking: Mapping[str, Any] | None = None,
    predicates: Mapping[str, Any] | None = None,
    on_deadlock: str = "stop",
    max_immediate_firings: int = 100_000,
    compiled: CompiledNet | None = None,
) -> list[SimulationResult]:
    """Run all replications of one sweep point in vectorized lockstep.

    Parameters
    ----------
    net:
        The net definition (compiled on the fly unless ``compiled`` is
        given).  Must lie in the compilable subset, else
        :class:`~repro.core.errors.UnsupportedNetError`.
    horizon:
        Simulated time per replication.
    seeds / rngs:
        One seed (or ready generator) per replication.  Replication
        ``r``'s results are bit-identical to
        ``Simulation(net, seed=seeds[r], warmup=warmup).run(horizon)``.
    warmup / initial_marking / on_deadlock / max_immediate_firings:
        As on :class:`~repro.core.simulator.Simulation`.
    predicates:
        ``name -> VectorPredicate | callable`` marking predicates; the
        hydrated statistics expose them via ``predicate_probability``.
    compiled:
        Reuse a :func:`~repro.core.fast.compile.compile_net` result
        across calls (e.g. across adaptive rounds of the same model).

    Returns
    -------
    list[SimulationResult]
        One result per replication, in seed order — the same type the
        interpreted engine produces, so downstream energy accounting
        and statistics code runs unchanged.
    """
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    if (seeds is None) == (rngs is None):
        raise ValueError("give exactly one of seeds or rngs")
    if on_deadlock not in ("stop", "raise"):
        raise ValueError(
            f"on_deadlock must be 'stop' or 'raise', got {on_deadlock!r}"
        )
    gen_list = (
        [np.random.default_rng(s) for s in seeds]
        if rngs is None
        else list(rngs)
    )
    if not gen_list:
        return []
    cn = compiled if compiled is not None else compile_net(net)
    ensemble = _Ensemble(
        cn,
        gen_list,
        warmup,
        initial_marking,
        predicates,
        on_deadlock,
        max_immediate_firings,
    )
    ensemble.run(float(horizon))
    return ensemble.finalize(float(horizon))
