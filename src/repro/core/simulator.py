"""The DSPN/SCPN token-game simulation engine.

Implements the firing semantics the paper's models rely on (TimeNET's
Extended Deterministic and Stochastic Petri Nets and Stochastic Colored
Petri Nets):

* Immediate transitions fire eagerly in zero time, highest priority
  first; ties among equal-priority immediates are resolved by a
  weighted random choice.
* Timed transitions race.  A timed transition samples its firing delay
  when it becomes enabled; the clock's behaviour across disabling
  periods follows the transition's
  :class:`~repro.core.transitions.MemoryPolicy` (enabling memory by
  default — the deterministic ``Power_Down_Threshold`` timer must reset
  when a job arrives, which is exactly what enabling memory does).
* Global guards participate in enabling: a guard turning false disables
  the transition and (under enabling memory) cancels its timer.
* Multi-server timed transitions hold one concurrent clock per enabling
  degree up to ``servers``.

The engine advances with the classic next-event loop::

    while clock < horizon:
        fire all enabled immediates (zero time)
        refresh timed-transition schedules
        pop the earliest scheduled firing, advance the clock, fire it

Enabling checks are served from an *enabled-candidate cache*: each
transition's enabling degree is recomputed only when a firing touches
one of its dependency places (inputs, inhibitors, capacitated outputs,
guard reads), keyed through a place → transitions index built once per
run.  Transitions with non-introspectable guards are conservatively
re-checked after every firing, so the cache never changes results —
only the per-event cost, which drops from O(transitions × arcs) to
O(affected transitions).

Statistics are time-weighted between events (see
:mod:`repro.core.statistics`).
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from .arcs import FiringContext
from .errors import DeadlockError, ImmediateLoopError, SimulationError
from .events import EventCalendar
from .marking import MarkingView
from .net import PetriNet
from .statistics import BatchMeans, StatisticsCollector
from .tokens import Token
from .transitions import INFINITE_SERVERS, MemoryPolicy, Transition

__all__ = ["Simulation", "SimulationResult", "simulate"]


@dataclass
class SimulationResult:
    """Everything a finished run exposes.

    Attributes
    ----------
    net_name:
        Name of the simulated net.
    end_time:
        Simulation clock when the run stopped.
    stats:
        The :class:`~repro.core.statistics.StatisticsCollector` with all
        time-weighted results.
    firings:
        Total number of transition firings (immediate + timed).
    deadlocked:
        True when the run stopped because nothing was enabled.
    final_marking_counts:
        Token counts at the end of the run.
    batch_means:
        Named :class:`~repro.core.statistics.BatchMeans` trackers
        registered via :meth:`Simulation.track_signal`.
    """

    net_name: str
    end_time: float
    stats: StatisticsCollector
    firings: int
    deadlocked: bool
    final_marking_counts: dict[str, int]
    batch_means: dict[str, BatchMeans] = field(default_factory=dict)

    def occupancy(self, place: str) -> float:
        """Shortcut: fraction of time ``place`` was marked."""
        return self.stats.occupancy(place)

    def mean_tokens(self, place: str) -> float:
        """Shortcut: time-averaged token count of ``place``."""
        return self.stats.mean_tokens(place)

    def predicate_probability(self, name: str) -> float:
        """Shortcut: long-run probability of a registered predicate."""
        return self.stats.predicate_probability(name)

    def throughput(self, transition: str) -> float:
        """Shortcut: post-warm-up firings per unit time."""
        return self.stats.throughput(transition)


class Simulation:
    """One simulation run of a :class:`~repro.core.net.PetriNet`.

    Parameters
    ----------
    net:
        The net definition (not mutated).
    seed / rng:
        Either a seed for a fresh :class:`numpy.random.Generator` or a
        ready generator (exactly one stream per run keeps replications
        independent and reproducible).
    warmup:
        Statistics collected before this time are discarded.
    initial_marking:
        Optional per-place overrides of the initial marking.
    max_immediate_firings:
        Vanishing-loop guard: maximum immediate firings at one epoch.
    on_deadlock:
        ``"stop"`` (default) ends the run quietly; ``"raise"`` raises
        :class:`~repro.core.errors.DeadlockError`.
    """

    def __init__(
        self,
        net: PetriNet,
        seed: int | None = None,
        rng: np.random.Generator | None = None,
        warmup: float = 0.0,
        initial_marking: Mapping[str, Any] | None = None,
        max_immediate_firings: int = 100_000,
        on_deadlock: str = "stop",
    ) -> None:
        if on_deadlock not in ("stop", "raise"):
            raise ValueError(
                f"on_deadlock must be 'stop' or 'raise', got {on_deadlock!r}"
            )
        self.net = net
        self.rng = rng if rng is not None else np.random.default_rng(seed)
        self.time = 0.0
        self.marking = net.initial_marking(initial_marking)
        # Deterministic tie-breaking: equal-time events pop in (timed
        # transition definition order, server slot) order, the same
        # policy a vectorized engine's first-occurrence argmin applies.
        timed_order = {
            t.name: i for i, t in enumerate(net.transitions) if t.is_timed
        }

        def _rank_of(key: str) -> tuple[int, int]:
            name, _, slot = key.partition("#")
            return (timed_order.get(name, len(timed_order)), int(slot or 0))

        self.calendar = EventCalendar(rank_of=_rank_of)
        self.stats = StatisticsCollector(
            net.place_names, net.transition_names, warmup
        )
        self.max_immediate_firings = int(max_immediate_firings)
        self.on_deadlock = on_deadlock
        self.firings = 0
        self.stale_pops = 0
        self.deadlocked = False
        self._view = self.marking.view()
        self._observers: list[Callable[[float, str, dict, list], None]] = []
        self._signals: dict[str, tuple[Callable[[MarkingView], float], BatchMeans]] = {}
        self._timed = [t for t in net.transitions if t.is_timed]
        self._slot_highwater: dict[str, int] = {}
        self._immediate = sorted(
            (t for t in net.transitions if t.is_immediate),
            key=lambda t: -t.priority,
        )
        self._initialized = False
        # Enabled-candidate cache: enabling degrees are recomputed only
        # for transitions whose dependency places a firing touched,
        # instead of rescanning every transition after every event.
        # Transitions whose guard reads cannot be introspected
        # (FunctionGuard and user subclasses) are invalidated after
        # every firing, so the cache is always exact.
        self._degree_cache: dict[str, int] = {}
        self._dirty: set[str] = {t.name for t in net.transitions}
        self._dep_index: dict[str, tuple[str, ...]] = {}
        index: dict[str, set[str]] = {}
        opaque: list[str] = []
        for t in net.transitions:
            deps = t.enabling_dependencies()
            if deps is None:
                opaque.append(t.name)
            else:
                for place in deps:
                    index.setdefault(place, set()).add(t.name)
        self._dep_index = {p: tuple(names) for p, names in index.items()}
        self._opaque_dep_names: tuple[str, ...] = tuple(opaque)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def add_observer(
        self, fn: Callable[[float, str, dict, list], None]
    ) -> None:
        """Register ``fn(time, transition, consumed, produced)`` firing hook."""
        self._observers.append(fn)

    def add_predicate(
        self, name: str, predicate: Callable[[MarkingView], bool]
    ) -> None:
        """Track the time-averaged truth of a marking predicate."""
        self.stats.add_predicate(name, predicate)

    def track_signal(
        self,
        name: str,
        fn: Callable[[MarkingView], float],
        horizon: float,
        warmup: float | None = None,
        n_batches: int = 20,
    ) -> None:
        """Track ``fn(marking)`` with a batch-means estimator."""
        if name in self._signals:
            raise ValueError(f"signal {name!r} already tracked")
        wu = self.stats.warmup if warmup is None else warmup
        self._signals[name] = (fn, BatchMeans(horizon, wu, n_batches))

    # ------------------------------------------------------------------
    # Enabling logic
    # ------------------------------------------------------------------
    def enabling_degree(self, transition: Transition) -> int:
        """How many concurrent firings the marking supports (0 = disabled).

        Guard false, an inhibitor arc blocking, or insufficient output
        capacity gives 0.  A transition with no input arcs has degree 1
        while its guard holds (a pure source gated by a guard, like the
        closed-workload ``T0``).

        Output capacity participates in enabling (TimeNET semantics): a
        transition whose firing would overflow a bounded place is
        disabled rather than erroring mid-firing.  Reset places are
        exempt (the reset empties them before deposits land).
        """
        for inh in transition.inhibitors:
            if self.marking.count(inh.place) >= inh.multiplicity:
                return 0
        if not transition.guard(self._view):
            return 0
        degree: int | None = None
        for arc in transition.inputs:
            bag = self.marking.bag(arc.place)
            matching = bag.count(arc.token_filter)
            d = matching // arc.multiplicity
            if d == 0:
                return 0
            degree = d if degree is None else min(degree, d)
        reset_places = {r.place for r in transition.resets}
        for arc in transition.outputs:
            if arc.place in reset_places:
                continue
            cap = self.marking._capacities.get(arc.place)
            if cap is None:
                continue
            # Self-loop headroom: tokens this firing removes from the
            # place free up capacity before deposits land.
            removed = sum(
                a.multiplicity
                for a in transition.inputs
                if a.place == arc.place
            )
            headroom = cap - self.marking.count(arc.place) + removed
            d = headroom // arc.multiplicity
            if d <= 0:
                return 0
            degree = d if degree is None else min(degree, d)
        if degree is None:
            return 1
        return int(degree)

    def is_enabled(self, transition: Transition) -> bool:
        """True when ``transition`` may fire in the current marking."""
        return self.enabling_degree(transition) > 0

    def _cached_degree(self, transition: Transition) -> int:
        """Enabling degree via the dirty-tracking candidate cache."""
        name = transition.name
        if name in self._dirty:
            degree = self.enabling_degree(transition)
            self._degree_cache[name] = degree
            self._dirty.discard(name)
            return degree
        return self._degree_cache[name]

    def _invalidate_after_firing(self, touched: set[str]) -> None:
        """Mark every transition whose enabling ``touched`` may affect."""
        dirty = self._dirty
        index = self._dep_index
        for place in touched:
            names = index.get(place)
            if names:
                dirty.update(names)
        dirty.update(self._opaque_dep_names)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(self, transition: Transition) -> None:
        """Execute one firing of ``transition`` at the current time.

        Assumes enabledness was checked by the caller; raises
        :class:`SimulationError` if token selection fails anyway (which
        would indicate an engine bug or a concurrent marking mutation).
        """
        consumed: dict[str, list[Token]] = {}
        try:
            for arc in transition.inputs:
                taken = self.marking.withdraw(
                    arc.place, arc.multiplicity, arc.token_filter
                )
                consumed.setdefault(arc.place, []).extend(taken)
        except ValueError as exc:
            raise SimulationError(
                f"transition {transition.name!r} fired while not enabled: {exc}"
            ) from exc
        for reset in transition.resets:
            flushed = self.marking.bag(reset.place).clear()
            if flushed:
                consumed.setdefault(reset.place, []).extend(flushed)
        ctx = FiringContext(
            time=self.time,
            consumed=consumed,
            marking=self._view,
            rng=self.rng,
            transition=transition.name,
        )
        produced: list[Token] = []
        touched: set[str] = set(consumed)
        for arc in transition.outputs:
            tokens = arc.make_tokens(ctx)
            self.marking.deposit(arc.place, tokens)
            produced.extend(tokens)
            touched.add(arc.place)
        self._invalidate_after_firing(touched)
        self.firings += 1
        self.stats.on_transition_fired(self.time, transition.name)
        self._sample_statistics()
        for obs in self._observers:
            obs(self.time, transition.name, consumed, produced)

    def _sample_statistics(self) -> None:
        counts = self.marking.counts()
        self.stats.on_marking_change(self.time, self._view, counts)
        for fn, bm in self._signals.values():
            bm.update(self.time, fn(self._view))

    # ------------------------------------------------------------------
    # Immediate phase
    # ------------------------------------------------------------------
    def _fire_immediates(self) -> None:
        """Fire enabled immediates until none remain (priority, then weight)."""
        fired_here = 0
        while True:
            best_priority: int | None = None
            candidates: list[Transition] = []
            for t in self._immediate:
                if best_priority is not None and t.priority < best_priority:
                    break  # sorted descending: no better candidates follow
                if self._cached_degree(t) > 0:
                    if best_priority is None:
                        best_priority = t.priority
                    candidates.append(t)
            if not candidates:
                return
            if len(candidates) == 1:
                chosen = candidates[0]
            else:
                weights = np.array([t.weight for t in candidates])
                idx = int(self.rng.choice(len(candidates), p=weights / weights.sum()))
                chosen = candidates[idx]
            self.fire(chosen)
            fired_here += 1
            if fired_here > self.max_immediate_firings:
                raise ImmediateLoopError(self.time, self.max_immediate_firings)

    # ------------------------------------------------------------------
    # Timed-transition scheduling
    # ------------------------------------------------------------------
    def _slot_key(self, transition: Transition, slot: int) -> str:
        if slot == 0:
            return transition.name
        return f"{transition.name}#{slot}"

    def _live_slots(self, transition: Transition) -> list[tuple[int, str]]:
        """(slot index, key) pairs of currently scheduled server slots."""
        high = self._slot_highwater.get(transition.name, 1)
        out: list[tuple[int, str]] = []
        for slot in range(high):
            key = self._slot_key(transition, slot)
            if self.calendar.is_scheduled(key):
                out.append((slot, key))
        return out

    def _start_slot(self, transition: Transition, key: str) -> None:
        clk = self.calendar.clock(key)
        if transition.memory is MemoryPolicy.AGE and clk.remaining is not None:
            delay = clk.remaining
            clk.remaining = None
        else:
            delay = transition.distribution.sample(self.rng)
        clk.enabled_since = self.time
        self.calendar.schedule(key, self.time + delay)

    def _stop_slot(self, transition: Transition, key: str) -> None:
        if transition.memory is MemoryPolicy.AGE:
            clk = self.calendar.clock(key)
            if clk.scheduled_at is not None:
                clk.remaining = max(0.0, clk.scheduled_at - self.time)
        self.calendar.cancel(key)

    def _refresh_timed(self) -> None:
        """Bring every timed transition's schedule in line with enabling."""
        for t in self._timed:
            degree = self._cached_degree(t)
            if t.servers == 1:
                want = 1 if degree > 0 else 0
            elif t.servers == INFINITE_SERVERS:
                want = degree
            else:
                want = min(degree, t.servers)
            live = self._live_slots(t)
            if t.memory is MemoryPolicy.RESAMPLE and want > 0 and live:
                # Race resampling: drop all live clocks, draw fresh ones.
                for _, key in live:
                    self.calendar.cancel(key)
                live = []
            have = len(live)
            if want > have:
                taken = {slot for slot, _ in live}
                need = want - have
                slot = 0
                while need > 0:
                    if slot not in taken:
                        self._start_slot(t, self._slot_key(t, slot))
                        high = self._slot_highwater.get(t.name, 1)
                        if slot + 1 > high:
                            self._slot_highwater[t.name] = slot + 1
                        need -= 1
                    slot += 1
            elif want < have:
                # Cancel the slots due to fire last (preserve the
                # earliest-finishing work, matching preemption of the
                # most recently started server).
                by_time = sorted(
                    live,
                    key=lambda sk: self.calendar.scheduled_time(sk[1]) or 0.0,
                    reverse=True,
                )
                for _, key in by_time[: have - want]:
                    self._stop_slot(t, key)

    @staticmethod
    def _transition_of_key(key: str) -> str:
        return key.split("#", 1)[0]

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def _initialize(self) -> None:
        if self._initialized:
            return
        self.stats.initialize(self._view, self.marking.counts())
        for fn, bm in self._signals.values():
            bm.update(0.0, fn(self._view))
        self._fire_immediates()
        self._refresh_timed()
        self._initialized = True

    def step(self) -> bool:
        """Advance to the next timed firing; False when nothing is scheduled."""
        self._initialize()
        entry = self.calendar.pop_next()
        if entry is None:
            return False
        if entry.time < self.time:
            raise SimulationError(
                f"event calendar produced past event: {entry.time} < {self.time}"
            )
        self.time = entry.time
        name = self._transition_of_key(entry.transition)
        transition = self.net.transition(name)
        # Defensive: the engine's own invariant is scheduled => enabled,
        # but a caller mutating the marking or calendar directly can
        # break it.  A stale pop must still behave like a (non-firing)
        # event: the clock advance above stands, and statistics are
        # sampled at the new time so accumulator clocks stay in sync
        # with the run instead of silently skipping the epoch.
        if self._cached_degree(transition) > 0:
            self.fire(transition)
            self._fire_immediates()
        else:
            self.stale_pops += 1
            self._sample_statistics()
        self._refresh_timed()
        return True

    def run(self, horizon: float, max_firings: int | None = None) -> SimulationResult:
        """Simulate until ``horizon`` (or deadlock / ``max_firings``)."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        self._initialize()
        stopped_early = False
        while True:
            next_time = self.calendar.peek_time()
            if next_time is None:
                self.deadlocked = True
                if self.on_deadlock == "raise":
                    raise DeadlockError(self.time)
                break
            if next_time > horizon:
                break
            if not self.step():
                self.deadlocked = True
                break
            if max_firings is not None and self.firings >= max_firings:
                stopped_early = True
                break
        # A deadlocked marking is frozen, so its statistics legitimately
        # keep accumulating up to the horizon; only a max_firings stop
        # truncates the observation window at the current clock.
        end = self.time if stopped_early else horizon
        self.time = end
        self.stats.finalize(end)
        for fn, bm in self._signals.values():
            bm.update(end, fn(self._view))
            bm.finalize()
        return SimulationResult(
            net_name=self.net.name,
            end_time=end,
            stats=self.stats,
            firings=self.firings,
            deadlocked=self.deadlocked,
            final_marking_counts=self.marking.counts(),
            batch_means={name: bm for name, (_, bm) in self._signals.items()},
        )


def simulate(
    net: PetriNet,
    horizon: float,
    seed: int | None = None,
    warmup: float = 0.0,
    predicates: Mapping[str, Callable[[MarkingView], bool]] | None = None,
    initial_marking: Mapping[str, Any] | None = None,
) -> SimulationResult:
    """One-shot convenience wrapper: build a run, register predicates, go."""
    sim = Simulation(
        net, seed=seed, warmup=warmup, initial_marking=initial_marking
    )
    for name, pred in (predicates or {}).items():
        sim.add_predicate(name, pred)
    return sim.run(horizon)
