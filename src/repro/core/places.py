"""Places: the state-holding nodes of a Petri net.

A :class:`Place` is pure structure — name, initial marking, optional
capacity.  The *current* marking lives in
:class:`~repro.core.marking.Marking`, so a single net definition can be
simulated many times concurrently (each run owns its marking).
"""

from __future__ import annotations

from collections.abc import Iterable
from typing import Any

from .tokens import Token, make_tokens

__all__ = ["Place"]


class Place:
    """A place in a (colored) Petri net.

    Parameters
    ----------
    name:
        Unique identifier within a net.  Used by guards (``#name``),
        statistics, and energy accounting, so pick the paper's names
        (``Stand_By``, ``CPU_Buffer``, ...) for traceability.
    initial_tokens:
        Number of plain tokens in the initial marking, *or* an iterable
        of :class:`Token` (for coloured initial markings).
    capacity:
        Optional maximum number of tokens; a firing that would exceed it
        raises :class:`~repro.core.errors.CapacityError`.  ``None`` means
        unbounded (the default, matching TimeNET).
    description:
        Free-text annotation carried into reports.
    """

    __slots__ = ("name", "capacity", "description", "_initial")

    def __init__(
        self,
        name: str,
        initial_tokens: int | Iterable[Token] = 0,
        capacity: int | None = None,
        description: str = "",
    ) -> None:
        if not name or not isinstance(name, str):
            raise ValueError(f"place name must be a non-empty string, got {name!r}")
        if capacity is not None and capacity < 0:
            raise ValueError(f"capacity must be >= 0 or None, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.description = description
        if isinstance(initial_tokens, int):
            if initial_tokens < 0:
                raise ValueError(
                    f"initial_tokens must be >= 0, got {initial_tokens}"
                )
            self._initial: tuple[Token, ...] = tuple(make_tokens(initial_tokens))
        else:
            self._initial = tuple(initial_tokens)
        if capacity is not None and len(self._initial) > capacity:
            raise ValueError(
                f"place {name!r}: initial marking {len(self._initial)} exceeds "
                f"capacity {capacity}"
            )

    @property
    def initial_tokens(self) -> tuple[Token, ...]:
        """Tokens of the initial marking (fresh copies made per run)."""
        return self._initial

    @property
    def initial_count(self) -> int:
        """Initial token count."""
        return len(self._initial)

    def fresh_initial(self) -> list[Token]:
        """New token instances for a new run (never share token objects)."""
        return [Token(tok.color, 0.0) for tok in self._initial]

    def initial_colors(self) -> list[Any]:
        """Colours of the initial marking in order."""
        return [tok.color for tok in self._initial]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = f", capacity={self.capacity}" if self.capacity is not None else ""
        return f"Place({self.name!r}, initial={self.initial_count}{cap})"
