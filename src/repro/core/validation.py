"""Well-formedness validation beyond construction-time checks.

:func:`validate_net` runs a battery of structural lints and returns a
:class:`ValidationReport`.  Models in :mod:`repro.models` call it in
their builders so malformed parameterisations fail fast with a readable
message instead of deadlocking silently mid-simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .distributions import Immediate
from .guards import TRUE
from .net import PetriNet

__all__ = ["ValidationIssue", "ValidationReport", "validate_net"]


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}:{self.code}] {self.message}"


@dataclass
class ValidationReport:
    """All findings for one net."""

    net_name: str
    issues: list[ValidationIssue] = field(default_factory=list)

    @property
    def errors(self) -> list[ValidationIssue]:
        """Hard errors only."""
        return [i for i in self.issues if i.severity == "error"]

    @property
    def warnings(self) -> list[ValidationIssue]:
        """Warnings only."""
        return [i for i in self.issues if i.severity == "warning"]

    @property
    def ok(self) -> bool:
        """True when no hard errors were found."""
        return not self.errors

    def raise_on_error(self) -> None:
        """Raise ``ValueError`` listing every hard error."""
        if self.errors:
            details = "; ".join(str(i) for i in self.errors)
            raise ValueError(
                f"net {self.net_name!r} failed validation: {details}"
            )

    def __str__(self) -> str:
        if not self.issues:
            return f"net {self.net_name!r}: clean"
        lines = [f"net {self.net_name!r}: {len(self.issues)} issue(s)"]
        lines += [f"  {i}" for i in self.issues]
        return "\n".join(lines)


def validate_net(net: PetriNet) -> ValidationReport:
    """Run all structural lints over ``net``."""
    report = ValidationReport(net.name)
    _check_emptiness(net, report)
    _check_isolated_places(net, report)
    _check_unguarded_sources(net, report)
    _check_immediate_priorities(net, report)
    _check_token_supply(net, report)
    return report


def _check_emptiness(net: PetriNet, report: ValidationReport) -> None:
    if not net.places:
        report.issues.append(
            ValidationIssue("error", "no-places", "net has no places")
        )
    if not net.transitions:
        report.issues.append(
            ValidationIssue("error", "no-transitions", "net has no transitions")
        )


def _check_isolated_places(net: PetriNet, report: ValidationReport) -> None:
    touched: set[str] = set()
    for t in net.transitions:
        touched |= t.input_places()
        touched |= t.output_places()
        touched |= {a.place for a in t.inhibitors}
        touched |= t.guard.places()
    for p in net.places:
        if p.name not in touched:
            report.issues.append(
                ValidationIssue(
                    "warning",
                    "isolated-place",
                    f"place {p.name!r} is connected to nothing",
                )
            )


def _check_unguarded_sources(net: PetriNet, report: ValidationReport) -> None:
    for t in net.transitions:
        if t.inputs or t.inhibitors:
            continue
        if t.guard is TRUE and isinstance(t.distribution, Immediate):
            report.issues.append(
                ValidationIssue(
                    "error",
                    "immediate-source",
                    f"immediate transition {t.name!r} has no inputs, no "
                    "inhibitors and no guard: it would fire forever at t=0",
                )
            )


def _check_immediate_priorities(net: PetriNet, report: ValidationReport) -> None:
    for t in net.transitions:
        if not t.is_immediate and t.priority != 1:
            report.issues.append(
                ValidationIssue(
                    "warning",
                    "priority-on-timed",
                    f"transition {t.name!r} is timed; its priority "
                    f"{t.priority} is ignored (priorities order immediates only)",
                )
            )


def _check_token_supply(net: PetriNet, report: ValidationReport) -> None:
    """Transitions that can never fire because an input place can never
    be marked (no initial tokens and no producer)."""
    producible = {p.name for p in net.places if p.initial_count > 0}
    for t in net.transitions:
        producible |= t.output_places()
    for t in net.transitions:
        for arc in t.inputs:
            if arc.place not in producible:
                report.issues.append(
                    ValidationIssue(
                        "error",
                        "dead-input",
                        f"transition {t.name!r} consumes from {arc.place!r}, "
                        "which has no initial tokens and no producing "
                        "transition — it can never fire",
                    )
                )
