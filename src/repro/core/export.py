"""Net serialisation: structural dicts, JSON, and Graphviz DOT.

TimeNET is a graphical tool; our substitute compensates with exports a
user can render or diff:

* :func:`net_to_dict` / :func:`net_to_json` — a stable structural
  description (places, transitions, arcs, guards, distributions)
  suitable for snapshots and model diffing.  Callables (token filters,
  producers, function guards) serialise as their repr — the export is
  a *description*, not a round-trippable pickle.
* :func:`net_to_dot` — Graphviz DOT in the conventional Petri-net
  style: circles for places (token count inside), bars for
  transitions (filled = timed, open = immediate), dashed edges for
  inhibitor arcs.

``dot -Tpdf net.dot -o net.pdf`` renders a figure directly comparable
to the paper's Figs. 3/10/12/13.
"""

from __future__ import annotations

import json
from typing import Any

from .distributions import (
    Deterministic,
    Exponential,
    FiringDistribution,
    Immediate,
)
from .guards import TRUE
from .net import PetriNet

__all__ = ["net_to_dict", "net_to_json", "net_to_dot"]


def _distribution_to_dict(dist: FiringDistribution) -> dict[str, Any]:
    out: dict[str, Any] = {"kind": dist.kind}
    if isinstance(dist, Deterministic):
        out["delay"] = dist.delay
    elif isinstance(dist, Exponential):
        out["rate"] = dist.rate
    elif not isinstance(dist, Immediate):
        # Generic distributions: record mean/variance for the reader.
        out["mean"] = dist.mean()
        out["variance"] = dist.variance()
    return out


def net_to_dict(net: PetriNet) -> dict[str, Any]:
    """Stable structural description of ``net``."""
    places = [
        {
            "name": p.name,
            "initial_tokens": p.initial_count,
            "initial_colors": [repr(c) for c in p.initial_colors() if c is not None],
            "capacity": p.capacity,
            "description": p.description,
        }
        for p in net.places
    ]
    transitions = []
    for t in net.transitions:
        transitions.append(
            {
                "name": t.name,
                "distribution": _distribution_to_dict(t.distribution),
                "priority": t.priority,
                "weight": t.weight,
                "memory": t.memory.value,
                "servers": t.servers,
                "guard": None if t.guard is TRUE else str(t.guard),
                "inputs": [
                    {
                        "place": a.place,
                        "multiplicity": a.multiplicity,
                        "filtered": a.token_filter is not None,
                    }
                    for a in t.inputs
                ],
                "outputs": [
                    {
                        "place": a.place,
                        "multiplicity": a.multiplicity,
                        "color": None if a.color is None else repr(a.color),
                        "produced": a.producer is not None,
                    }
                    for a in t.outputs
                ],
                "inhibitors": [
                    {"place": a.place, "multiplicity": a.multiplicity}
                    for a in t.inhibitors
                ],
                "resets": [a.place for a in t.resets],
                "description": t.description,
            }
        )
    return {
        "name": net.name,
        "places": places,
        "transitions": transitions,
    }


def net_to_json(net: PetriNet, indent: int = 2) -> str:
    """JSON rendering of :func:`net_to_dict`."""
    return json.dumps(net_to_dict(net), indent=indent, sort_keys=False)


def _dot_escape(s: str) -> str:
    return s.replace('"', '\\"')


def net_to_dot(net: PetriNet, rankdir: str = "LR") -> str:
    """Graphviz DOT source for ``net``."""
    if rankdir not in ("LR", "TB", "RL", "BT"):
        raise ValueError(f"invalid rankdir {rankdir!r}")
    lines = [
        f'digraph "{_dot_escape(net.name)}" {{',
        f"  rankdir={rankdir};",
        "  node [fontsize=10];",
    ]
    for p in net.places:
        label = p.name if p.initial_count == 0 else f"{p.name}\\n{p.initial_count}"
        lines.append(
            f'  "{_dot_escape(p.name)}" [shape=circle, label="{_dot_escape(label)}"];'
        )
    for t in net.transitions:
        if t.is_immediate:
            style = "height=0.4, width=0.08, style=filled, fillcolor=white"
        elif t.is_deterministic:
            style = "height=0.4, width=0.12, style=filled, fillcolor=gray70"
        else:
            style = (
                "height=0.4, width=0.12, style=filled, fillcolor=black, "
                "fontcolor=white"
            )
        guard = "" if t.guard is TRUE else f"\\n[{t.guard}]"
        timing = ""
        if isinstance(t.distribution, Deterministic):
            timing = f"\\nd={t.distribution.delay:g}"
        elif isinstance(t.distribution, Exponential):
            timing = f"\\nλ={t.distribution.rate:g}"
        lines.append(
            f'  "T:{_dot_escape(t.name)}" [shape=box, {style}, '
            f'label="{_dot_escape(t.name + timing + guard)}"];'
        )
        for a in t.inputs:
            attrs = f'label="{a.multiplicity}"' if a.multiplicity > 1 else ""
            lines.append(
                f'  "{_dot_escape(a.place)}" -> "T:{_dot_escape(t.name)}" [{attrs}];'
            )
        for a in t.outputs:
            attrs = f'label="{a.multiplicity}"' if a.multiplicity > 1 else ""
            lines.append(
                f'  "T:{_dot_escape(t.name)}" -> "{_dot_escape(a.place)}" [{attrs}];'
            )
        for a in t.inhibitors:
            lines.append(
                f'  "{_dot_escape(a.place)}" -> "T:{_dot_escape(t.name)}" '
                f'[style=dashed, arrowhead=odot, label="{a.multiplicity}"];'
            )
        for a in t.resets:
            lines.append(
                f'  "{_dot_escape(a.place)}" -> "T:{_dot_escape(t.name)}" '
                '[style=dotted, arrowhead=diamond, label="R"];'
            )
    lines.append("}")
    return "\n".join(lines)
