"""The :class:`PetriNet` container and fluent builder API.

A net is pure structure: places, transitions, arcs, guards.  Simulation
state (marking, clocks, statistics) lives in
:class:`~repro.core.simulator.Simulation`, so one net can back many
concurrent runs — the experiment harness sweeps ``Power_Down_Threshold``
by building one net per parameter point (cheap) and simulating each.

Example (the paper's Fig. 1 two-place net)::

    net = PetriNet("fig1")
    net.add_place("P0", initial_tokens=1)
    net.add_place("P1")
    net.add_transition("T0", Deterministic(1.0), inputs=["P0"], outputs=["P1"])
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from .arcs import InhibitorArc, InputArc, OutputArc, ResetArc
from .distributions import FiringDistribution
from .errors import (
    ArcError,
    DuplicateNameError,
    UnknownElementError,
)
from .guards import TRUE, Guard
from .marking import Marking
from .places import Place
from .tokens import Token
from .transitions import MemoryPolicy, Transition

__all__ = ["PetriNet"]

ArcSpec = "str | tuple | InputArc | OutputArc"


class PetriNet:
    """A stochastic colored Petri net definition.

    Parameters
    ----------
    name:
        Net identifier used in reports and error messages.
    """

    def __init__(self, name: str = "net") -> None:
        self.name = name
        self._places: dict[str, Place] = {}
        self._transitions: dict[str, Transition] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_place(
        self,
        name: str,
        initial_tokens: int | Iterable[Token] = 0,
        capacity: int | None = None,
        description: str = "",
    ) -> Place:
        """Create and register a place; returns it."""
        if name in self._places:
            raise DuplicateNameError("place", name)
        place = Place(name, initial_tokens, capacity, description)
        self._places[name] = place
        return place

    def add_transition(
        self,
        name: str,
        distribution: FiringDistribution | None = None,
        inputs: Sequence[Any] = (),
        outputs: Sequence[Any] = (),
        inhibitors: Sequence[Any] = (),
        resets: Sequence[Any] = (),
        guard: Guard = TRUE,
        priority: int = 1,
        weight: float = 1.0,
        memory: MemoryPolicy = MemoryPolicy.ENABLING,
        servers: int = 1,
        description: str = "",
    ) -> Transition:
        """Create and register a transition.

        ``inputs``/``outputs``/``inhibitors`` accept flexible specs:

        * a place name string (multiplicity 1);
        * a ``(place, multiplicity)`` tuple;
        * for inputs, a ``(place, multiplicity, token_filter)`` tuple;
        * for outputs, a ``(place, multiplicity, color_or_producer)``
          tuple (callables are treated as producers);
        * a ready-made arc object.

        ``resets`` accepts place names or :class:`ResetArc` objects;
        the named places are emptied when the transition fires.
        """
        if name in self._transitions:
            raise DuplicateNameError("transition", name)
        transition = Transition(
            name,
            distribution,
            guard=guard,
            priority=priority,
            weight=weight,
            memory=memory,
            servers=servers,
            description=description,
        )
        for spec in inputs:
            transition.add_input(self._coerce_input(spec))
        for spec in outputs:
            transition.add_output(self._coerce_output(spec))
        for spec in inhibitors:
            transition.add_inhibitor(self._coerce_inhibitor(spec))
        for spec in resets:
            transition.add_reset(self._coerce_reset(spec))
        self._validate_arc_targets(transition)
        self._transitions[name] = transition
        return transition

    @staticmethod
    def _coerce_input(spec: Any) -> InputArc:
        if isinstance(spec, InputArc):
            return spec
        if isinstance(spec, str):
            return InputArc(spec)
        if isinstance(spec, tuple):
            if len(spec) == 2:
                return InputArc(spec[0], spec[1])
            if len(spec) == 3:
                return InputArc(spec[0], spec[1], spec[2])
        raise ArcError(f"cannot interpret input arc spec {spec!r}")

    @staticmethod
    def _coerce_output(spec: Any) -> OutputArc:
        if isinstance(spec, OutputArc):
            return spec
        if isinstance(spec, str):
            return OutputArc(spec)
        if isinstance(spec, tuple):
            if len(spec) == 2:
                return OutputArc(spec[0], spec[1])
            if len(spec) == 3:
                place, mult, third = spec
                if callable(third):
                    return OutputArc(place, mult, producer=third)
                return OutputArc(place, mult, color=third)
        raise ArcError(f"cannot interpret output arc spec {spec!r}")

    @staticmethod
    def _coerce_inhibitor(spec: Any) -> InhibitorArc:
        if isinstance(spec, InhibitorArc):
            return spec
        if isinstance(spec, str):
            return InhibitorArc(spec)
        if isinstance(spec, tuple) and len(spec) == 2:
            return InhibitorArc(spec[0], spec[1])
        raise ArcError(f"cannot interpret inhibitor arc spec {spec!r}")

    @staticmethod
    def _coerce_reset(spec: Any) -> ResetArc:
        if isinstance(spec, ResetArc):
            return spec
        if isinstance(spec, str):
            return ResetArc(spec)
        raise ArcError(f"cannot interpret reset arc spec {spec!r}")

    def _validate_arc_targets(self, transition: Transition) -> None:
        for arc in transition.inputs:
            if arc.place not in self._places:
                raise UnknownElementError("place", arc.place)
        for arc in transition.outputs:
            if arc.place not in self._places:
                raise UnknownElementError("place", arc.place)
        for arc in transition.inhibitors:
            if arc.place not in self._places:
                raise UnknownElementError("place", arc.place)
        for arc in transition.resets:
            if arc.place not in self._places:
                raise UnknownElementError("place", arc.place)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    @property
    def places(self) -> tuple[Place, ...]:
        """All places, insertion order."""
        return tuple(self._places.values())

    @property
    def transitions(self) -> tuple[Transition, ...]:
        """All transitions, insertion order."""
        return tuple(self._transitions.values())

    @property
    def place_names(self) -> tuple[str, ...]:
        """All place names, insertion order."""
        return tuple(self._places)

    @property
    def transition_names(self) -> tuple[str, ...]:
        """All transition names, insertion order."""
        return tuple(self._transitions)

    def place(self, name: str) -> Place:
        """Look up a place by name."""
        try:
            return self._places[name]
        except KeyError:
            raise UnknownElementError("place", name) from None

    def transition(self, name: str) -> Transition:
        """Look up a transition by name."""
        try:
            return self._transitions[name]
        except KeyError:
            raise UnknownElementError("transition", name) from None

    def has_place(self, name: str) -> bool:
        """True when a place with ``name`` exists."""
        return name in self._places

    def has_transition(self, name: str) -> bool:
        """True when a transition with ``name`` exists."""
        return name in self._transitions

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    def initial_marking(
        self, overrides: Mapping[str, int | Iterable[Token]] | None = None
    ) -> Marking:
        """A fresh marking holding every place's initial tokens."""
        return Marking(self.places, overrides)

    def preset(self, place: str) -> tuple[Transition, ...]:
        """Transitions that output into ``place``."""
        self.place(place)
        return tuple(
            t for t in self._transitions.values() if place in t.output_places()
        )

    def postset(self, place: str) -> tuple[Transition, ...]:
        """Transitions that consume from ``place``."""
        self.place(place)
        return tuple(
            t for t in self._transitions.values() if place in t.input_places()
        )

    def dependents_of_place(self, place: str) -> tuple[Transition, ...]:
        """Transitions whose enabling can change when ``place`` changes."""
        self.place(place)
        return tuple(
            t
            for t in self._transitions.values()
            if place in t.dependent_places()
        )

    def incidence_matrix(self) -> tuple[list[str], list[str], "Any"]:
        """(place names, transition names, C) with C[p, t] = out - in.

        Token filters and colours are ignored — the incidence matrix
        describes the uncoloured skeleton, which is what P/T-invariant
        analysis operates on.
        """
        import numpy as np

        pnames = list(self._places)
        tnames = list(self._transitions)
        pindex = {n: i for i, n in enumerate(pnames)}
        C = np.zeros((len(pnames), len(tnames)), dtype=np.int64)
        for j, t in enumerate(self._transitions.values()):
            for arc in t.inputs:
                C[pindex[arc.place], j] -= arc.multiplicity
            for arc in t.outputs:
                C[pindex[arc.place], j] += arc.multiplicity
        return pnames, tnames, C

    # ------------------------------------------------------------------
    # Validation / description
    # ------------------------------------------------------------------
    def validate(self) -> list[str]:
        """Structural sanity checks; returns a list of warnings.

        Raises :class:`NetStructureError` on hard errors (none currently
        beyond what construction already enforces); returns warnings for
        suspicious-but-legal structure (isolated places, source/sink
        transitions without guards, immediate transitions with no
        inputs).
        """
        warnings: list[str] = []
        consumed: set[str] = set()
        produced: set[str] = set()
        for t in self._transitions.values():
            consumed |= t.input_places()
            produced |= t.output_places()
            if t.is_immediate and not t.inputs and isinstance(t.guard, type(TRUE)):
                warnings.append(
                    f"immediate transition {t.name!r} has no inputs and no "
                    "guard: it will fire forever at t=0"
                )
        for name in self._places:
            if name not in consumed and name not in produced:
                touched_by_guard = any(
                    name in t.guard.places() for t in self._transitions.values()
                )
                if not touched_by_guard:
                    warnings.append(f"place {name!r} is isolated")
        if not self._transitions:
            warnings.append("net has no transitions")
        return warnings

    def describe(self) -> str:
        """Human-readable structural dump (used in examples and docs)."""
        lines = [f"PetriNet {self.name!r}"]
        lines.append(f"  places ({len(self._places)}):")
        for p in self._places.values():
            cap = f" cap={p.capacity}" if p.capacity is not None else ""
            lines.append(f"    {p.name}: initial={p.initial_count}{cap}")
        lines.append(f"  transitions ({len(self._transitions)}):")
        for t in self._transitions.values():
            ins = ", ".join(
                f"{a.place}x{a.multiplicity}" for a in t.inputs
            ) or "-"
            outs = ", ".join(
                f"{a.place}x{a.multiplicity}" for a in t.outputs
            ) or "-"
            inh = (
                "; inhibit " + ", ".join(a.place for a in t.inhibitors)
                if t.inhibitors
                else ""
            )
            guard = f" guard {t.guard}" if t.guard is not TRUE else ""
            lines.append(
                f"    {t.name} [{t.distribution!r} prio={t.priority}]: "
                f"{ins} -> {outs}{inh}{guard}"
            )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PetriNet({self.name!r}, places={len(self._places)}, "
            f"transitions={len(self._transitions)})"
        )
