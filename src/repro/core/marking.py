"""Markings: the dynamic state of a net during simulation or analysis.

A :class:`Marking` maps each place name to a
:class:`~repro.core.tokens.TokenBag`.  It implements the small protocol
guards rely on (``count``) plus the mutation operations the token game
needs.  :meth:`signature` produces a hashable canonical form used by the
reachability analyzer.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from typing import Any

from .errors import CapacityError, UnknownElementError
from .places import Place
from .tokens import Token, TokenBag

__all__ = ["Marking", "MarkingView"]


class Marking:
    """Mutable marking of a net.

    Parameters
    ----------
    places:
        The net's places; each contributes its initial tokens unless
        ``initial`` overrides it.
    initial:
        Optional override mapping ``place name -> token count or tokens``.
    """

    __slots__ = ("_bags", "_capacities")

    def __init__(
        self,
        places: Iterable[Place],
        initial: Mapping[str, int | Iterable[Token]] | None = None,
    ) -> None:
        self._bags: dict[str, TokenBag] = {}
        self._capacities: dict[str, int | None] = {}
        overrides = dict(initial or {})
        for place in places:
            spec = overrides.pop(place.name, None)
            if spec is None:
                tokens = place.fresh_initial()
            elif isinstance(spec, int):
                tokens = [Token() for _ in range(spec)]
            else:
                tokens = [Token(t.color, t.created_at) for t in spec]
            cap = place.capacity
            if cap is not None and len(tokens) > cap:
                raise CapacityError(place.name, cap, len(tokens))
            self._bags[place.name] = TokenBag(tokens)
            self._capacities[place.name] = cap
        if overrides:
            unknown = sorted(overrides)
            raise UnknownElementError("place", unknown[0])

    # ------------------------------------------------------------------
    # Guard/stat protocol
    # ------------------------------------------------------------------
    def count(self, place: str) -> int:
        """Token count of ``place`` (the ``#place`` of Table XI guards)."""
        try:
            return len(self._bags[place])
        except KeyError:
            raise UnknownElementError("place", place) from None

    def counts(self) -> dict[str, int]:
        """All token counts as a plain dict (snapshot)."""
        return {name: len(bag) for name, bag in self._bags.items()}

    def bag(self, place: str) -> TokenBag:
        """The live token bag of ``place`` (mutations affect the marking)."""
        try:
            return self._bags[place]
        except KeyError:
            raise UnknownElementError("place", place) from None

    def places(self) -> Iterable[str]:
        """All place names."""
        return self._bags.keys()

    def total_tokens(self) -> int:
        """Total tokens across all places (conservation checks)."""
        return sum(len(bag) for bag in self._bags.values())

    # ------------------------------------------------------------------
    # Token game mutations
    # ------------------------------------------------------------------
    def deposit(self, place: str, tokens: Iterable[Token]) -> None:
        """Add tokens to ``place``, enforcing capacity."""
        bag = self.bag(place)
        tokens = list(tokens)
        cap = self._capacities.get(place)
        if cap is not None and len(bag) + len(tokens) > cap:
            raise CapacityError(place, cap, len(bag) + len(tokens))
        bag.extend(tokens)

    def withdraw(
        self,
        place: str,
        k: int,
        predicate: Callable[[Token], bool] | None = None,
    ) -> list[Token]:
        """Remove the ``k`` oldest (matching) tokens from ``place``."""
        return self.bag(place).take(k, predicate)

    def can_withdraw(
        self,
        place: str,
        k: int,
        predicate: Callable[[Token], bool] | None = None,
    ) -> bool:
        """True when ``place`` holds ≥ ``k`` tokens matching ``predicate``."""
        bag = self.bag(place)
        if predicate is None:
            return len(bag) >= k
        return bag.count(predicate) >= k

    def has_headroom(self, place: str, k: int) -> bool:
        """True when depositing ``k`` tokens would not overflow capacity."""
        cap = self._capacities.get(place)
        if cap is None:
            return True
        return len(self.bag(place)) + k <= cap

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def signature(self) -> tuple[tuple[str, tuple[Any, ...]], ...]:
        """Canonical hashable form: sorted (place, sorted colour counts).

        Token identity and creation times are deliberately ignored — two
        markings with the same colour multiset per place are the same
        state for reachability purposes.
        """
        items: list[tuple[str, tuple[Any, ...]]] = []
        for name in sorted(self._bags):
            multiset = self._bags[name].color_multiset()
            canon = tuple(
                sorted(multiset.items(), key=lambda kv: repr(kv[0]))
            )
            items.append((name, canon))
        return tuple(items)

    def copy(self) -> "Marking":
        """Deep-enough copy: new bags, shared (immutable) tokens."""
        clone = object.__new__(Marking)
        clone._bags = {name: bag.copy() for name, bag in self._bags.items()}
        clone._capacities = dict(self._capacities)
        return clone

    def view(self) -> "MarkingView":
        """A read-only view implementing only ``count``."""
        return MarkingView(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nonzero = {n: len(b) for n, b in self._bags.items() if len(b)}
        return f"Marking({nonzero!r})"


class MarkingView:
    """Read-only facade over a marking, handed to guards and producers."""

    __slots__ = ("_marking",)

    def __init__(self, marking: Marking) -> None:
        self._marking = marking

    def count(self, place: str) -> int:
        """Token count of ``place``."""
        return self._marking.count(place)

    def counts(self) -> dict[str, int]:
        """All token counts (snapshot)."""
        return self._marking.counts()

    def colors(self, place: str) -> list[Any]:
        """Colours in ``place`` (FIFO order)."""
        return self._marking.bag(place).colors()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MarkingView({self._marking!r})"
