"""``repro.core`` — a from-scratch stochastic colored Petri-net engine.

This package is the reproduction's substitute for TimeNET 4.0, the
closed-source tool the paper used to build and simulate its EDSPN/SCPN
models.  It provides:

* net structure: :class:`~repro.core.net.PetriNet`,
  :class:`~repro.core.places.Place`,
  :class:`~repro.core.transitions.Transition`, arcs and colored tokens;
* timing: immediate / deterministic / exponential (and more) firing
  distributions with priorities, weights and memory policies;
* guards: the composable ``#place op n`` algebra of the paper's
  Table XI plus colour-level local guards;
* simulation: the next-event token game with time-weighted steady-state
  statistics and batch-means confidence intervals.

Quickstart::

    from repro.core import (
        PetriNet, Deterministic, Exponential, simulate, tokens_gt,
    )

    net = PetriNet("mm1")
    net.add_place("queue")
    net.add_place("source", initial_tokens=1)
    net.add_transition(
        "arrive", Exponential(1.0),
        inputs=["source"], outputs=["source", "queue"],
    )
    net.add_transition("serve", Exponential(2.0), inputs=["queue"])
    result = simulate(net, horizon=10_000.0, seed=7)
    print(result.mean_tokens("queue"))   # ≈ rho/(1-rho) = 1.0
"""

from .arcs import FiringContext, InhibitorArc, InputArc, OutputArc, ResetArc
from .distributions import (
    Deterministic,
    Empirical,
    Erlang,
    Exponential,
    FiringDistribution,
    Hyperexponential,
    Immediate,
    LogNormal,
    Triangular,
    Uniform,
    Weibull,
)
from .convergence import PrecisionResult, simulate_to_precision
from .export import net_to_dict, net_to_dot, net_to_json
from .errors import (
    AnalysisError,
    ArcError,
    CapacityError,
    DeadlockError,
    DuplicateNameError,
    GuardError,
    ImmediateLoopError,
    NetStructureError,
    NotExponentialError,
    PetriNetError,
    SimulationError,
    TokenSelectionError,
    UnboundedNetError,
    UnknownElementError,
)
from .guards import (
    FALSE,
    TRUE,
    FunctionGuard,
    Guard,
    color_eq,
    color_in,
    color_pred,
    tokens_between,
    tokens_eq,
    tokens_ge,
    tokens_gt,
    tokens_le,
    tokens_lt,
    tokens_ne,
)
from .marking import Marking, MarkingView
from .net import PetriNet
from .observers import FiringTrace, StateDwellRecorder, TokenFlowCounter
from .places import Place
from .simulator import Simulation, SimulationResult, simulate
from .statistics import (
    BatchMeans,
    ConfidenceInterval,
    PredicateStatistic,
    StatisticsCollector,
    TimeWeightedAccumulator,
    TransitionCounter,
)
from .tokens import BLACK, Token, TokenBag
from .transitions import INFINITE_SERVERS, MemoryPolicy, Transition
from .validation import ValidationIssue, ValidationReport, validate_net

__all__ = [
    # net structure
    "PetriNet",
    "Place",
    "Transition",
    "InputArc",
    "OutputArc",
    "InhibitorArc",
    "ResetArc",
    "FiringContext",
    "Token",
    "TokenBag",
    "BLACK",
    "Marking",
    "MarkingView",
    "MemoryPolicy",
    "INFINITE_SERVERS",
    # distributions
    "FiringDistribution",
    "Immediate",
    "Deterministic",
    "Exponential",
    "Uniform",
    "Erlang",
    "Weibull",
    "Triangular",
    "LogNormal",
    "Hyperexponential",
    "Empirical",
    # guards
    "Guard",
    "FunctionGuard",
    "TRUE",
    "FALSE",
    "tokens_eq",
    "tokens_ne",
    "tokens_gt",
    "tokens_ge",
    "tokens_lt",
    "tokens_le",
    "tokens_between",
    "color_eq",
    "color_in",
    "color_pred",
    # simulation
    "Simulation",
    "SimulationResult",
    "simulate",
    "simulate_to_precision",
    "PrecisionResult",
    # statistics
    "StatisticsCollector",
    "TimeWeightedAccumulator",
    "PredicateStatistic",
    "TransitionCounter",
    "BatchMeans",
    "ConfidenceInterval",
    # observers
    "FiringTrace",
    "StateDwellRecorder",
    "TokenFlowCounter",
    # export
    "net_to_dict",
    "net_to_json",
    "net_to_dot",
    # validation
    "validate_net",
    "ValidationReport",
    "ValidationIssue",
    # errors
    "PetriNetError",
    "NetStructureError",
    "DuplicateNameError",
    "UnknownElementError",
    "ArcError",
    "GuardError",
    "CapacityError",
    "TokenSelectionError",
    "SimulationError",
    "ImmediateLoopError",
    "DeadlockError",
    "AnalysisError",
    "UnboundedNetError",
    "NotExponentialError",
]
