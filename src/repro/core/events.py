"""Event calendar and timer bookkeeping for timed transitions.

The simulator keeps one :class:`TransitionClock` per timed transition,
recording whether a firing is scheduled, at what time, and — for the
``AGE`` memory policy — how much work remains after a preemption.

Cancelled events are handled lazily: the heap entry stays behind but is
recognised as stale via a monotonically increasing ``epoch`` stamp per
clock.  This keeps cancellation O(1) and pop amortised O(log n).

Tie policy
----------
Events with equal firing times pop in ascending ``rank`` order — a
``(transition_index, slot)`` pair supplied by the calendar's ``rank_of``
hook.  :class:`~repro.core.simulator.Simulation` ranks keys by *timed
transition definition order, then server slot*, so simultaneous
deterministic firings resolve by the order transitions were added to the
net — the same policy a vectorized engine gets for free from a
first-occurrence ``argmin`` over (transition, slot)-ordered columns.
Without a ``rank_of`` hook every key ranks ``(0, 0)`` and ties fall back
to insertion order (``seq``), the historical standalone behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["ScheduledFiring", "TransitionClock", "EventCalendar"]


@dataclass(order=True)
class ScheduledFiring:
    """Heap entry: a tentative future firing of a timed transition.

    Ordered by ``(time, rank, seq)``: equal-time events resolve by the
    calendar's deterministic rank, and only rank ties (e.g. the default
    ``(0, 0)`` rank) fall through to insertion order.
    """

    time: float
    rank: tuple[int, int]
    seq: int
    transition: str = field(compare=False)
    epoch: int = field(compare=False)


class TransitionClock:
    """Per-transition timer state (single-server semantics).

    Attributes
    ----------
    scheduled_at:
        Absolute firing time of the live schedule, or ``None``.
    epoch:
        Increments on every (re)schedule/cancel; identifies stale heap
        entries.
    remaining:
        For the AGE policy: outstanding delay frozen at disable time.
    enabled_since:
        Time the transition last became enabled (for diagnostics and
        enabling-time statistics).
    """

    __slots__ = ("scheduled_at", "epoch", "remaining", "enabled_since")

    def __init__(self) -> None:
        self.scheduled_at: float | None = None
        self.epoch: int = 0
        self.remaining: float | None = None
        self.enabled_since: float | None = None

    def invalidate(self) -> None:
        """Drop any live schedule (heap entries become stale)."""
        self.scheduled_at = None
        self.epoch += 1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransitionClock(at={self.scheduled_at}, epoch={self.epoch}, "
            f"remaining={self.remaining})"
        )


class EventCalendar:
    """A lazy-deletion binary-heap event calendar.

    Ties in firing time are broken by ``rank_of(key)`` — a deterministic
    ``(transition_index, slot)`` rank (see the module docstring's *Tie
    policy*) — then by insertion order (``seq``) between equal ranks.
    The simulator supplies a ranker based on timed-transition definition
    order; a standalone calendar without one keeps the historical
    insertion-order behaviour.

    Parameters
    ----------
    rank_of:
        ``key -> (major, minor)`` tie-break rank for equal firing times;
        evaluated once per ``schedule`` call.  ``None`` ranks everything
        ``(0, 0)``.
    """

    def __init__(
        self,
        rank_of: Callable[[str], tuple[int, int]] | None = None,
    ) -> None:
        self._heap: list[ScheduledFiring] = []
        self._counter = itertools.count()
        self._clocks: dict[str, TransitionClock] = {}
        self._rank_of = rank_of

    # ------------------------------------------------------------------
    # Clock registry
    # ------------------------------------------------------------------
    def clock(self, transition: str) -> TransitionClock:
        """The clock for ``transition`` (created on first access)."""
        try:
            return self._clocks[transition]
        except KeyError:
            clk = TransitionClock()
            self._clocks[transition] = clk
            return clk

    def clocks(self) -> dict[str, TransitionClock]:
        """All registered clocks (read-only use)."""
        return self._clocks

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, transition: str, fire_time: float) -> None:
        """Replace any live schedule for ``transition`` with ``fire_time``."""
        clk = self.clock(transition)
        clk.epoch += 1
        clk.scheduled_at = fire_time
        rank = self._rank_of(transition) if self._rank_of is not None else (0, 0)
        entry = ScheduledFiring(
            fire_time, rank, next(self._counter), transition, clk.epoch
        )
        heapq.heappush(self._heap, entry)

    def cancel(self, transition: str) -> None:
        """Cancel the live schedule for ``transition`` (no-op when idle)."""
        clk = self.clock(transition)
        clk.invalidate()

    def is_scheduled(self, transition: str) -> bool:
        """True when ``transition`` has a live schedule."""
        return self.clock(transition).scheduled_at is not None

    def scheduled_time(self, transition: str) -> float | None:
        """Absolute firing time of the live schedule, or ``None``."""
        return self.clock(transition).scheduled_at

    # ------------------------------------------------------------------
    # Consumption
    # ------------------------------------------------------------------
    def pop_next(self) -> ScheduledFiring | None:
        """Pop the earliest *live* event, or ``None`` when empty.

        Stale entries (cancelled or superseded) are discarded on the way.
        The popped transition's clock is marked idle (the firing is about
        to happen).
        """
        while self._heap:
            entry = heapq.heappop(self._heap)
            clk = self._clocks.get(entry.transition)
            if clk is None or clk.epoch != entry.epoch:
                continue  # stale
            clk.scheduled_at = None
            clk.epoch += 1
            return entry
        return None

    def peek_time(self) -> float | None:
        """Earliest live event time without popping, or ``None``."""
        while self._heap:
            entry = self._heap[0]
            clk = self._clocks.get(entry.transition)
            if clk is None or clk.epoch != entry.epoch:
                heapq.heappop(self._heap)
                continue
            return entry.time
        return None

    def live_count(self) -> int:
        """Number of live schedules (O(n); diagnostics only)."""
        return sum(
            1 for clk in self._clocks.values() if clk.scheduled_at is not None
        )

    def clear(self) -> None:
        """Drop everything (end of run)."""
        self._heap.clear()
        self._clocks.clear()

    def __len__(self) -> int:
        return len(self._heap)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EventCalendar(live={self.live_count()}, heap={len(self._heap)})"
