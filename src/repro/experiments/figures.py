"""Figs. 4–9 / Tables IV–VI driver: the three-way CPU comparison.

For a fixed ``Power_Up_Delay`` D ∈ {0.001, 0.3, 10} s, sweep the
``Power_Down_Threshold`` over [0.001, 1] s and, at every point, ask all
three estimators for state-time fractions and total energy:

* the discrete-event simulator (ground truth, solid line),
* the Markov supplementary-variable model (squares),
* the Petri net (circles).

Workload (Table II): arrival rate 1 job/s, *mean service time 0.1 s*
(the table prints "Service Rate .1 per second", which would be an
unstable ρ = 10 queue; every figure's ≈10 % Active share confirms the
mean-service-time reading — see DESIGN.md).  Energies use the PXA271
powers of Table III over the 1000 s horizon.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.statistics import ConfidenceInterval, replication_interval
from ..des.cpu import CPUPowerStateSimulator, CPUStates
from ..energy.power import PowerStateTable, cpu_power_table
from ..models.cpu_markov import CPUMarkovModel
from ..models.cpu_petri import CPUPetriModel
from .deltas import DeltaStats, delta_table
from .sweep import FIG4_TO_9_THRESHOLDS

__all__ = [
    "CPUComparisonConfig",
    "CPUComparisonResult",
    "run_cpu_comparison",
    "PAPER_POWER_UP_DELAYS",
]

#: The three scenarios of Figs. 4–9.
PAPER_POWER_UP_DELAYS: tuple[float, ...] = (0.001, 0.3, 10.0)

ESTIMATORS = ("simulation", "markov", "petri")


@dataclass(frozen=True)
class CPUComparisonConfig:
    """Workload and run-length configuration (Table II defaults)."""

    arrival_rate: float = 1.0
    service_rate: float = 10.0  # mean service time 0.1 s
    horizon: float = 1000.0
    warmup: float = 0.0
    seed: int = 2010
    thresholds: tuple[float, ...] = FIG4_TO_9_THRESHOLDS

    def __post_init__(self) -> None:
        if self.horizon <= self.warmup:
            raise ValueError("horizon must exceed warmup")


@dataclass
class CPUComparisonResult:
    """All series for one ``Power_Up_Delay`` scenario.

    ``fractions[estimator][state]`` and ``energy_j[estimator]`` are
    lists aligned with ``thresholds``.
    """

    power_up_delay: float
    thresholds: tuple[float, ...]
    fractions: dict[str, dict[str, list[float]]]
    energy_j: dict[str, list[float]]
    config: CPUComparisonConfig = field(default_factory=CPUComparisonConfig)
    replications: int = 1
    #: Across-replication t-intervals on energy, per estimator, aligned
    #: with ``thresholds``; ``None`` for single-replication runs.
    energy_ci: dict[str, list[ConfidenceInterval]] | None = None
    #: Adaptive-control outcome per threshold point (``None`` for
    #: fixed-count runs): replications executed and whether the point
    #: met ``ci_target`` before ``max_replications``.
    replication_counts: list[int] | None = None
    converged: list[bool] | None = None
    ci_target: float | None = None

    def delta_energy(self) -> dict[str, DeltaStats]:
        """The Tables IV–VI statistics for this scenario."""
        return delta_table(
            self.energy_j["simulation"],
            self.energy_j["markov"],
            self.energy_j["petri"],
        )

    def state_series(self, estimator: str, state: str) -> list[float]:
        """One fraction curve (e.g. the Fig. 4 'Idle' line)."""
        return self.fractions[estimator][state]

    def mean_abs_fraction_error(self, estimator: str) -> float:
        """Mean |fraction − simulation fraction| across states and points."""
        total = 0.0
        count = 0
        for state in CPUStates.ALL:
            sim = self.fractions["simulation"][state]
            est = self.fractions[estimator][state]
            for s, e in zip(sim, est):
                total += abs(s - e)
                count += 1
        return total / count if count else 0.0


def _evaluate_cpu_point(
    task: tuple[float, int, float, CPUComparisonConfig, PowerStateTable, bool],
) -> dict[str, tuple[dict[str, float], float]]:
    """One (threshold, replication) evaluation of the estimators.

    Module-level so the parallel runtime can pickle it under any
    multiprocessing start method.  The analytic Markov model is
    deterministic (no seed), so it is solved only when
    ``include_markov`` is set — once per threshold, on replication 0 —
    instead of once per replication.
    """
    threshold, point_seed, power_up_delay, cfg, table, include_markov = task
    duration = cfg.horizon - cfg.warmup

    estimates: list[tuple[str, object]] = [
        (
            "simulation",
            CPUPowerStateSimulator(
                cfg.arrival_rate,
                cfg.service_rate,
                threshold,
                power_up_delay,
                seed=point_seed,
                warmup=cfg.warmup,
            ).run(cfg.horizon),
        ),
        (
            "petri",
            CPUPetriModel(
                cfg.arrival_rate, cfg.service_rate, threshold, power_up_delay
            ).simulate(cfg.horizon, seed=point_seed, warmup=cfg.warmup),
        ),
    ]
    if include_markov:
        estimates.append(
            (
                "markov",
                CPUMarkovModel(
                    cfg.arrival_rate, cfg.service_rate, threshold, power_up_delay
                ).simulate(cfg.horizon, warmup=cfg.warmup),
            )
        )

    out: dict[str, tuple[dict[str, float], float]] = {}
    for est, result in estimates:
        fracs = {state: result.fraction(state) for state in CPUStates.ALL}
        out[est] = (
            fracs,
            table.energy_from_probabilities_j(result.fractions, duration),
        )
    return out


def _evaluate_cpu_point_ensemble(
    task: tuple[
        float, tuple[int, ...], int, float, CPUComparisonConfig, PowerStateTable
    ],
) -> list[dict[str, tuple[dict[str, float], float]]]:
    """All replications of one threshold point, Petri net vectorized.

    The ``engine="vectorized"`` counterpart of
    :func:`_evaluate_cpu_point`: ``task = (threshold, seeds,
    first_replication, power_up_delay, cfg, table)``.  The Petri-net
    estimator runs the whole seed tuple in lockstep through
    :meth:`~repro.models.cpu_petri.CPUPetriModel.simulate_ensemble`
    (bit-identical per replication); the event-driven DES is not a
    Petri net and runs per seed as before, and the deterministic Markov
    solve still happens once, on global replication 0 only.  Element
    ``j`` therefore equals ``_evaluate_cpu_point`` at replication
    ``first_replication + j`` exactly.
    """
    threshold, seeds, first_rep, power_up_delay, cfg, table = task
    duration = cfg.horizon - cfg.warmup

    petri_results = CPUPetriModel(
        cfg.arrival_rate, cfg.service_rate, threshold, power_up_delay
    ).simulate_ensemble(cfg.horizon, seeds, warmup=cfg.warmup)

    out: list[dict[str, tuple[dict[str, float], float]]] = []
    for j, (point_seed, petri) in enumerate(zip(seeds, petri_results)):
        estimates: list[tuple[str, object]] = [
            (
                "simulation",
                CPUPowerStateSimulator(
                    cfg.arrival_rate,
                    cfg.service_rate,
                    threshold,
                    power_up_delay,
                    seed=point_seed,
                    warmup=cfg.warmup,
                ).run(cfg.horizon),
            ),
            ("petri", petri),
        ]
        if first_rep + j == 0:
            estimates.append(
                (
                    "markov",
                    CPUMarkovModel(
                        cfg.arrival_rate, cfg.service_rate, threshold, power_up_delay
                    ).simulate(cfg.horizon, warmup=cfg.warmup),
                )
            )
        rep: dict[str, tuple[dict[str, float], float]] = {}
        for est, result in estimates:
            fracs = {state: result.fraction(state) for state in CPUStates.ALL}
            rep[est] = (
                fracs,
                table.energy_from_probabilities_j(result.fractions, duration),
            )
        out.append(rep)
    return out


def run_cpu_comparison(
    power_up_delay: float,
    config: CPUComparisonConfig | None = None,
    power_table: PowerStateTable | None = None,
    workers: int = 1,
    replications: int = 1,
    ci_target: float | None = None,
    max_replications: int = 64,
    min_replications: int = 2,
    backend=None,
    engine: str = "interpreted",
    store=None,
    *,
    exec_cfg=None,
) -> CPUComparisonResult:
    """Run the full three-way sweep for one ``Power_Up_Delay``.

    The DES and the Petri net share the seed per threshold point
    (common random numbers), mirroring how the paper plots both against
    the same workload realisations.

    Grid points (and, when ``replications > 1``, replications) are
    submitted through the :mod:`repro.runtime` executor; ``workers=1``
    evaluates serially and reproduces the pre-runtime results bit for
    bit.  Replication 0 keeps the legacy per-point seed ``seed + i``;
    further replications use seeds spawned from it, and the reported
    fractions/energies become across-replication means with
    ``energy_ci`` t-intervals.

    With ``ci_target`` set, each threshold point replicates adaptively
    (:mod:`repro.runtime.adaptive`) until *both* stochastic estimators'
    energy intervals meet the relative half-width target (the analytic
    Markov solve is deterministic and exempt), or ``max_replications``
    is hit.  The seed plan per point is prefix-stable, so the executed
    replications are a bit-identical prefix of the fixed
    ``replications=max_replications`` run; ``replications`` acts as a
    floor on ``min_replications``.

    ``backend`` routes the point evaluations through an explicit
    execution :class:`~repro.runtime.backend.Backend` (e.g. socket
    workers on remote hosts); it never changes the numbers.

    ``engine="vectorized"`` runs each point's Petri-net replications in
    lockstep through :mod:`repro.core.fast` (one ensemble task per
    threshold point); the DES and the analytic Markov solve are not
    Petri nets and evaluate exactly as before, so the result is
    bit-identical to the interpreted engine at every seed plan.

    ``store`` memoizes per-replication estimator outputs in a
    :class:`~repro.runtime.store.ResultStore` keyed by the full task
    spec (threshold, seed, delay, config, power table, markov flag) —
    shared across engines, backends and the fixed/adaptive paths.

    ``exec_cfg`` — an :class:`~repro.runtime.config.ExecutionConfig`
    (or resolved :class:`~repro.runtime.config.ResolvedExecution`) —
    supplies all of the execution keywords above in one object and is
    mutually exclusive with passing them individually; the loose
    keywords remain as a deprecation shim.
    """
    from ..runtime.adaptive import AdaptiveSettings, run_adaptive_rounds
    from ..runtime.config import resolve_execution
    from ..runtime.executor import ParallelExecutor
    from ..runtime.seeding import replication_seeds
    from ..runtime.store import cached_ensemble_map, cached_map

    rx = resolve_execution(
        exec_cfg,
        workers=workers,
        replications=replications,
        ci_target=ci_target,
        max_replications=max_replications,
        min_replications=min_replications,
        backend=backend,
        engine=engine,
        store=store,
    )
    workers, replications, backend = rx.workers, rx.replications, rx.backend
    ci_target, max_replications = rx.ci_target, rx.max_replications
    min_replications, engine, store = rx.min_replications, rx.engine, rx.store
    if engine not in ("interpreted", "vectorized"):
        raise ValueError(
            f"engine must be 'interpreted' or 'vectorized', got {engine!r}"
        )
    cfg = config if config is not None else CPUComparisonConfig()
    table = power_table if power_table is not None else cpu_power_table()

    converged: list[bool] | None = None
    if ci_target is not None:
        seed_plans = [
            replication_seeds(cfg.seed + i, max_replications)
            for i in range(len(cfg.thresholds))
        ]
        ensemble_kwargs = {}
        if engine == "vectorized":
            ensemble_kwargs = {
                "ensemble_fn": _evaluate_cpu_point_ensemble,
                "ensemble_task_for": lambda i, start, n: (
                    cfg.thresholds[i],
                    tuple(seed_plans[i][start : start + n]),
                    start,
                    power_up_delay,
                    cfg,
                    table,
                ),
            }
        runs = run_adaptive_rounds(
            _evaluate_cpu_point,
            lambda i, r: (
                cfg.thresholds[i],
                seed_plans[i][r],
                power_up_delay,
                cfg,
                table,
                r == 0,
            ),
            len(cfg.thresholds),
            AdaptiveSettings(
                ci_target=ci_target,
                min_replications=max(min_replications, replications),
                max_replications=max_replications,
            ),
            metrics=lambda out: (out["simulation"][1], out["petri"][1]),
            executor=ParallelExecutor(workers=workers, backend=backend),
            store=store,
            **ensemble_kwargs,
        )
        per_point = [run.values for run in runs]
        converged = [run.converged for run in runs]
    elif engine == "vectorized":
        seed_plans = [
            replication_seeds(cfg.seed + i, replications)
            for i in range(len(cfg.thresholds))
        ]
        point_tasks = [
            (threshold, tuple(seed_plans[i]), 0, power_up_delay, cfg, table)
            for i, threshold in enumerate(cfg.thresholds)
        ]
        per_point = cached_ensemble_map(
            ParallelExecutor(workers=workers, backend=backend),
            _evaluate_cpu_point_ensemble,
            point_tasks,
            store,
            key_fn=_evaluate_cpu_point,
            rep_items=[
                [
                    (t, seed, power_up_delay, cfg, table, rep == 0)
                    for rep, seed in enumerate(seed_plans[i])
                ]
                for i, t in enumerate(cfg.thresholds)
            ],
            rebuild_tail=lambda i, start: (
                cfg.thresholds[i],
                tuple(seed_plans[i][start:]),
                start,
                power_up_delay,
                cfg,
                table,
            ),
        )
    else:
        tasks = []
        for i, threshold in enumerate(cfg.thresholds):
            for rep, rep_seed in enumerate(
                replication_seeds(cfg.seed + i, replications)
            ):
                tasks.append(
                    (threshold, rep_seed, power_up_delay, cfg, table, rep == 0)
                )
        flat = cached_map(
            ParallelExecutor(workers=workers, backend=backend),
            _evaluate_cpu_point,
            tasks,
            store,
        )
        per_point = [
            flat[i * replications : (i + 1) * replications]
            for i in range(len(cfg.thresholds))
        ]

    fractions: dict[str, dict[str, list[float]]] = {
        est: {state: [] for state in CPUStates.ALL} for est in ESTIMATORS
    }
    energy: dict[str, list[float]] = {est: [] for est in ESTIMATORS}
    energy_ci: dict[str, list[ConfidenceInterval]] = {est: [] for est in ESTIMATORS}
    multi_replicated = any(len(reps) > 1 for reps in per_point)

    for reps in per_point:
        n_reps = len(reps)
        for est in ESTIMATORS:
            if est == "markov":
                # Deterministic: replication 0 holds the only solve;
                # zero sampling variance by construction.
                markov_fracs, markov_e = reps[0][est]
                for state in CPUStates.ALL:
                    fractions[est][state].append(markov_fracs[state])
                energy[est].append(markov_e)
                energy_ci[est].append(
                    ConfidenceInterval(markov_e, 0.0, 0.95, n_reps)
                )
                continue
            rep_energies = [r[est][1] for r in reps]
            for state in CPUStates.ALL:
                vals = [r[est][0][state] for r in reps]
                fractions[est][state].append(
                    vals[0] if n_reps == 1 else float(np.mean(vals))
                )
            energy[est].append(
                rep_energies[0]
                if n_reps == 1
                else float(np.mean(rep_energies))
            )
            energy_ci[est].append(replication_interval(rep_energies))

    return CPUComparisonResult(
        power_up_delay=power_up_delay,
        thresholds=tuple(cfg.thresholds),
        fractions=fractions,
        energy_j=energy,
        config=cfg,
        replications=max((len(r) for r in per_point), default=replications),
        energy_ci=energy_ci if multi_replicated else None,
        replication_counts=(
            [len(r) for r in per_point] if ci_target is not None else None
        ),
        converged=converged,
        ci_target=ci_target,
    )
