"""Parameter sweeps and grids.

The two threshold grids the paper uses:

* Figs. 4–9 sweep ``Power_Down_Threshold`` linearly over [0.001, 1] s;
* Figs. 14–15 use a hand-picked 23-point grid that clusters around the
  interesting crossovers (1 ns … 100 s, dense near 0.00177 s) — we
  reproduce that grid verbatim so the regenerated series has the same
  x-axis as the figures.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any, TypeVar

import numpy as np

__all__ = [
    "FIG4_TO_9_THRESHOLDS",
    "FIG14_15_THRESHOLDS",
    "NETWORK_THRESHOLDS",
    "SweepPoint",
    "run_sweep",
    "linear_thresholds",
]

#: Figs. 4–9 x-axis: 0.001 then 0.1..1.0 in 0.1 steps (11 points).
FIG4_TO_9_THRESHOLDS: tuple[float, ...] = (
    0.001,
    0.1,
    0.2,
    0.3,
    0.4,
    0.5,
    0.6,
    0.7,
    0.8,
    0.9,
    1.0,
)

#: Figs. 14–15 x-axis, copied from the figures' tick labels (23 points).
FIG14_15_THRESHOLDS: tuple[float, ...] = (
    1.00e-09,
    9.00e-07,
    1.00e-06,
    1.10e-06,
    1.90e-06,
    9.00e-06,
    0.0017,
    0.00176,
    0.00177,
    0.00178,
    0.0019,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    0.9,
    1.0,
    1.00177,
    1.002,
    1.1,
    5.0,
    10.0,
)

#: Default grid for network-lifetime sweeps: the Figs. 14/15 regimes
#: (immediate power-down, the 0.00177 s radio-phase crossover, the flat
#: basin, never-power-down) at network-sized cost — every point is a
#: full multi-node simulation, so the grid is deliberately coarse.
NETWORK_THRESHOLDS: tuple[float, ...] = (
    1.00e-09,
    0.00178,
    0.01,
    0.1,
    1.0,
    100.0,
)

T = TypeVar("T")


def linear_thresholds(
    low: float = 0.001, high: float = 1.0, n: int = 11
) -> tuple[float, ...]:
    """Evenly spaced thresholds including both endpoints."""
    if low <= 0 or high <= low or n < 2:
        raise ValueError("need 0 < low < high and n >= 2")
    return tuple(float(x) for x in np.linspace(low, high, n))


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated sweep point."""

    threshold: float
    value: Any


def run_sweep(
    thresholds: Sequence[float],
    evaluate: Callable[[float], T],
    workers: int = 1,
) -> list[SweepPoint]:
    """Evaluate ``evaluate(threshold)`` over the grid, preserving order.

    With ``workers > 1`` the grid points are evaluated by a
    :class:`~repro.runtime.ParallelExecutor` process pool (``evaluate``
    must then be picklable); ``workers=1`` evaluates in-process, in
    order.  Exceptions propagate with the offending threshold attached
    so a single bad grid point is diagnosable.

    For seeded multi-replication sweeps use the richer
    :func:`repro.runtime.map_sweep` API instead.
    """
    from ..runtime.executor import ParallelExecutor, TaskError

    grid = [float(t) for t in thresholds]
    try:
        values = ParallelExecutor(workers=workers).map(evaluate, grid)
    except TaskError as exc:
        raise RuntimeError(
            f"sweep evaluation failed at threshold {exc.item!r}: "
            f"{exc.__cause__ or exc}"
        ) from exc
    return [SweepPoint(t, v) for t, v in zip(grid, values)]
