"""Network-scenario driver: sharded multi-node lifetime experiments.

The deployment-level companion of the Figs. 14/15 sweeps: build a
topology (line, star, or a hundreds-of-node grid), simulate every node
at its relay-inflated event rate through the
:mod:`repro.runtime.sharding` worker groups, and report the network
metrics — time to first node death, the hotspot node, total energy and
the lifetime imbalance that motivates location-aware power management.

Two entry points:

* :func:`run_network_scenario` — one :class:`~repro.models.network.NetworkResult`
  at the configured threshold;
* :func:`run_network_lifetime_sweep` — a :class:`NetworkSweepResult`
  over a threshold grid (default :data:`~repro.experiments.sweep.NETWORK_THRESHOLDS`),
  answering "which ``Power_Down_Threshold`` maximises *network* lifetime?".

Both accept ``workers`` (process-pool size) and ``shards``
(worker-group count); neither knob ever changes the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..core.statistics import ConfidenceInterval, replication_interval
from ..energy.battery import IMOTE2_3xAAA, LinearBattery, PeukertBattery
from ..models.network import (
    GridTopology,
    LineTopology,
    NetworkResult,
    NetworkTopology,
    SensorNetworkModel,
    StarTopology,
)
from ..models.wsn_node import NodeParameters
from .sweep import NETWORK_THRESHOLDS

if TYPE_CHECKING:
    from ..topology.dynamics import ChurnModel
    from ..topology.traffic import MMPPTraffic

__all__ = [
    "NetworkScenarioConfig",
    "NetworkSweepResult",
    "ReplicatedNetworkResult",
    "make_topology",
    "run_network_scenario",
    "run_network_lifetime_sweep",
    "format_network_summary",
]


def _check_engine(engine: str) -> None:
    """Reject unsupported engine choices, explicitly and loudly.

    The vectorized engine batches *replications of one model config*;
    a network scenario parallelises across nodes, each with a distinct
    relay-inflated event rate (an ensemble of one per node), so there
    is nothing for the lockstep engine to batch.  Refusing beats
    silently falling back — callers choose the engine, never guess.
    """
    if engine == "vectorized":
        raise ValueError(
            "engine='vectorized' does not apply to network scenarios: "
            "the lockstep engine batches replications of one model "
            "config, but every network node runs a distinct "
            "relay-inflated config, so each node would be a per-node "
            "ensemble of one with nothing to batch; run with "
            "engine='interpreted' (the default) and parallelise with "
            "workers/shards instead"
        )
    if engine != "interpreted":
        raise ValueError(
            f"engine must be 'interpreted' or 'vectorized', got {engine!r}"
        )


def make_topology(
    kind: str,
    nodes: int = 5,
    width: int = 10,
    height: int = 10,
    radius: float | None = None,
    fanout: int = 3,
    depth: int = 3,
    seed: int = 0,
) -> NetworkTopology:
    """Build a topology from CLI-style arguments.

    ``kind`` is ``"line"`` (``nodes`` chain links), ``"star"``
    (``nodes`` counts the leaves; the hub is added), ``"grid"``
    (``width × height`` nodes, corner sink), ``"geometric"``
    (``nodes`` dropped uniformly in the unit square with connectivity
    ``radius`` — ``None`` auto-sizes — laid out from ``seed``) or
    ``"cluster-tree"`` (a complete ``fanout``-ary tree of ``depth``
    levels; ``nodes`` is implied).
    """
    if kind == "line":
        return LineTopology(nodes)
    if kind == "star":
        return StarTopology(nodes)
    if kind == "grid":
        return GridTopology(width, height)
    if kind == "geometric":
        # Imported here, not at module top: repro.topology reaches the
        # runtime package (for seeding), whose __init__ reaches back
        # into repro.experiments — a top-level import would make this
        # module's import order-dependent.
        from ..topology.generators import RandomGeometricTopology

        return RandomGeometricTopology(nodes, radius=radius, seed=seed)
    if kind == "cluster-tree":
        from ..topology.generators import ClusterTreeTopology

        return ClusterTreeTopology(fanout, depth)
    raise ValueError(
        "kind must be 'line', 'star', 'grid', 'geometric' or "
        f"'cluster-tree', got {kind!r}"
    )


@dataclass(frozen=True)
class NetworkScenarioConfig:
    """One network scenario: topology, workload intensity, run length."""

    topology: NetworkTopology = LineTopology(5)
    horizon: float = 300.0
    base_rate: float = 0.5
    seed: int = 2010
    thresholds: tuple[float, ...] = NETWORK_THRESHOLDS
    params: NodeParameters = NodeParameters(power_down_threshold=0.01)
    battery: LinearBattery | PeukertBattery = IMOTE2_3xAAA
    workload: str = "open"
    #: Optional node churn (failures, rewiring, duty variation).
    dynamics: ChurnModel | None = None
    #: Optional bursty (MMPP) arrivals replacing pure Poisson.
    traffic: MMPPTraffic | None = None

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")
        if self.base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        if not self.thresholds:
            raise ValueError("thresholds must be non-empty")

    def model(self) -> SensorNetworkModel:
        """The configured network model."""
        return SensorNetworkModel(
            self.topology,
            self.params,
            self.battery,
            self.workload,
            dynamics=self.dynamics,
            traffic=self.traffic,
        )


@dataclass
class ReplicatedNetworkResult:
    """One network scenario replicated to a CI-width target.

    ``result`` is replication 0 (bit-identical to the unreplicated
    scenario at the same seed); ``replicates`` holds every executed
    replication in seed-plan order, a reproducible prefix of the fixed
    ``max_replications`` run.
    """

    result: NetworkResult
    replicates: list[NetworkResult]
    converged: bool
    ci_target: float

    @property
    def replications(self) -> int:
        """Network replications executed."""
        return len(self.replicates)

    def energy_ci(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Across-replication t-interval on total network energy."""
        return replication_interval(
            [r.total_energy_j for r in self.replicates], confidence
        )

    def lifetime_ci(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Across-replication t-interval on network lifetime (days)."""
        return replication_interval(
            [r.network_lifetime_days for r in self.replicates], confidence
        )


@dataclass
class NetworkSweepResult:
    """Per-threshold network results plus the optimisation verdicts.

    ``results`` holds replication 0 per threshold.  Under adaptive
    replication control (``ci_target``), ``replicates`` keeps every
    executed replication per point and ``converged`` whether the point
    met the target before ``max_replications``; both stay ``None`` for
    single-run sweeps.
    """

    topology: str
    thresholds: tuple[float, ...]
    results: list[NetworkResult]
    replicates: list[list[NetworkResult]] | None = None
    converged: list[bool] | None = None
    ci_target: float | None = None

    @property
    def replication_counts(self) -> list[int]:
        """Replications executed per threshold point (1s when fixed)."""
        if self.replicates is None:
            return [1] * len(self.results)
        return [len(reps) for reps in self.replicates]

    def energy_ci(self, confidence: float = 0.95) -> list[ConfidenceInterval]:
        """Across-replication t-interval on total energy per point."""
        if self.replicates is None:
            raise ValueError("energy_ci requires an adaptive (replicated) sweep")
        return [
            replication_interval(
                [r.total_energy_j for r in reps], confidence
            )
            for reps in self.replicates
        ]

    @property
    def lifetimes_days(self) -> list[float]:
        """Network lifetime (first node death) per threshold."""
        return [r.network_lifetime_days for r in self.results]

    @property
    def energies_j(self) -> list[float]:
        """Total network energy per threshold."""
        return [r.total_energy_j for r in self.results]

    def best(self) -> NetworkResult:
        """The threshold point with the longest network lifetime."""
        return max(self.results, key=lambda r: r.network_lifetime_days)

    def rows(self) -> list[list[float]]:
        """Table rows: threshold, energy, lifetime, hotspot, imbalance."""
        return [
            [
                r.power_down_threshold,
                r.total_energy_j,
                r.network_lifetime_days,
                r.hotspot.node_id,
                r.lifetime_imbalance(),
            ]
            for r in self.results
        ]


def _adaptive_network_runs(
    cfg: NetworkScenarioConfig,
    thresholds: tuple[float, ...],
    ci_target: float,
    max_replications: int,
    min_replications: int,
    workers: int,
    shards: int,
    shard_strategy: str,
    backend=None,
    store=None,
):
    """Adaptively replicate whole network runs, one point per threshold.

    Each replication is a full (possibly sharded) network simulation;
    the controller runs replications in-process so ``workers`` and
    ``shards`` keep parallelising *inside* each network run, exactly as
    on the unreplicated path.  The per-replication seed plan
    (``replication_seeds``) is prefix-stable, so replication 0 is
    bit-identical to the single-run scenario and an adaptive run is a
    prefix of the fixed ``max_replications`` run.  The stopping metric
    is total network energy (network lifetime quantises to the hotspot
    node's battery and is reported with its own CI instead).

    ``store`` memoizes at *node* granularity inside each
    :meth:`~repro.models.network.SensorNetworkModel.simulate` call (the
    controller's own ``(point, rep)`` tasks are index placeholders with
    no content to key on), so warm top-ups reuse every node run.
    """
    from ..runtime.adaptive import AdaptiveSettings, run_adaptive_rounds
    from ..runtime.seeding import replication_seeds

    models = [
        SensorNetworkModel(
            cfg.topology,
            cfg.params.with_threshold(t),
            cfg.battery,
            cfg.workload,
            dynamics=cfg.dynamics,
            traffic=cfg.traffic,
        )
        for t in thresholds
    ]
    rep_seeds = replication_seeds(cfg.seed, max_replications)

    def _simulate(task: tuple[int, int]) -> NetworkResult:
        point, rep = task
        return models[point].simulate(
            cfg.horizon,
            seed=rep_seeds[rep],
            base_rate=cfg.base_rate,
            workers=workers,
            shards=shards,
            shard_strategy=shard_strategy,
            backend=backend,
            store=store,
        )

    return run_adaptive_rounds(
        _simulate,
        lambda i, r: (i, r),
        len(thresholds),
        AdaptiveSettings(
            ci_target=ci_target,
            min_replications=min_replications,
            max_replications=max_replications,
        ),
        metrics=lambda result: result.total_energy_j,
    )


def run_network_scenario(
    config: NetworkScenarioConfig | None = None,
    threshold: float | None = None,
    workers: int = 1,
    shards: int = 1,
    shard_strategy: str = "contiguous",
    ci_target: float | None = None,
    max_replications: int = 64,
    min_replications: int = 2,
    backend=None,
    engine: str = "interpreted",
    store=None,
    *,
    exec_cfg=None,
) -> NetworkResult | ReplicatedNetworkResult:
    """Simulate one network at one ``Power_Down_Threshold``.

    ``threshold`` overrides ``config.params.power_down_threshold`` when
    given.  ``shards`` partitions the node set into worker-group tasks
    (see :mod:`repro.runtime.sharding`); results are identical for any
    ``(workers, shards, shard_strategy)``.

    With ``ci_target`` set, the whole scenario replicates with spawned
    seeds until the total-energy interval's relative half-width meets
    the target (or ``max_replications``), returning a
    :class:`ReplicatedNetworkResult` whose ``result`` (replication 0)
    is bit-identical to the unreplicated scenario.

    Only ``engine="interpreted"`` is supported here (see
    :func:`_check_engine` for why the vectorized engine does not apply
    to per-node network fan-outs).

    ``exec_cfg`` — an :class:`~repro.runtime.config.ExecutionConfig`
    (or resolved :class:`~repro.runtime.config.ResolvedExecution`) —
    supplies all of the execution keywords above in one object and is
    mutually exclusive with passing them individually; the loose
    keywords remain as a deprecation shim.  Its ``replications`` field
    is not used here: replication counts are adaptive
    (``ci_target``-driven) for network scenarios.
    """
    from ..runtime.config import resolve_execution

    rx = resolve_execution(
        exec_cfg,
        workers=workers,
        shards=shards,
        shard_strategy=shard_strategy,
        ci_target=ci_target,
        max_replications=max_replications,
        min_replications=min_replications,
        backend=backend,
        engine=engine,
        store=store,
    )
    workers, shards, shard_strategy = rx.workers, rx.shards, rx.shard_strategy
    ci_target, max_replications = rx.ci_target, rx.max_replications
    min_replications, backend = rx.min_replications, rx.backend
    engine, store = rx.engine, rx.store
    _check_engine(engine)
    cfg = config if config is not None else NetworkScenarioConfig()
    if threshold is not None:
        cfg = replace(cfg, params=cfg.params.with_threshold(threshold))
    if ci_target is not None:
        [run] = _adaptive_network_runs(
            cfg,
            (cfg.params.power_down_threshold,),
            ci_target,
            max_replications,
            min_replications,
            workers,
            shards,
            shard_strategy,
            backend=backend,
            store=store,
        )
        return ReplicatedNetworkResult(
            result=run.values[0],
            replicates=run.values,
            converged=run.converged,
            ci_target=ci_target,
        )
    return cfg.model().simulate(
        cfg.horizon,
        seed=cfg.seed,
        base_rate=cfg.base_rate,
        workers=workers,
        shards=shards,
        shard_strategy=shard_strategy,
        backend=backend,
        store=store,
    )


def run_network_lifetime_sweep(
    config: NetworkScenarioConfig | None = None,
    workers: int = 1,
    shards: int = 1,
    shard_strategy: str = "contiguous",
    ci_target: float | None = None,
    max_replications: int = 64,
    min_replications: int = 2,
    backend=None,
    engine: str = "interpreted",
    store=None,
    *,
    exec_cfg=None,
) -> NetworkSweepResult:
    """Sweep ``config.thresholds`` on the network-lifetime metric.

    With ``ci_target`` set, every threshold point replicates adaptively
    on its total-energy interval and stops independently; ``results``
    still holds the replication-0 series (bit-identical to the
    single-run sweep), with per-point counts, ``converged`` flags and
    :meth:`NetworkSweepResult.energy_ci` uncertainty on top.

    Only ``engine="interpreted"`` is supported here (see
    :func:`_check_engine`).

    ``exec_cfg`` — an :class:`~repro.runtime.config.ExecutionConfig`
    (or resolved :class:`~repro.runtime.config.ResolvedExecution`) —
    supplies all of the execution keywords above in one object and is
    mutually exclusive with passing them individually; the loose
    keywords remain as a deprecation shim.
    """
    from ..runtime.config import resolve_execution

    rx = resolve_execution(
        exec_cfg,
        workers=workers,
        shards=shards,
        shard_strategy=shard_strategy,
        ci_target=ci_target,
        max_replications=max_replications,
        min_replications=min_replications,
        backend=backend,
        engine=engine,
        store=store,
    )
    workers, shards, shard_strategy = rx.workers, rx.shards, rx.shard_strategy
    ci_target, max_replications = rx.ci_target, rx.max_replications
    min_replications, backend = rx.min_replications, rx.backend
    engine, store = rx.engine, rx.store
    _check_engine(engine)
    cfg = config if config is not None else NetworkScenarioConfig()
    if ci_target is not None:
        runs = _adaptive_network_runs(
            cfg,
            tuple(cfg.thresholds),
            ci_target,
            max_replications,
            min_replications,
            workers,
            shards,
            shard_strategy,
            backend=backend,
            store=store,
        )
        return NetworkSweepResult(
            topology=cfg.topology.describe(),
            thresholds=tuple(cfg.thresholds),
            results=[run.values[0] for run in runs],
            replicates=[run.values for run in runs],
            converged=[run.converged for run in runs],
            ci_target=ci_target,
        )
    results = cfg.model().sweep_thresholds(
        cfg.thresholds,
        cfg.horizon,
        seed=cfg.seed,
        base_rate=cfg.base_rate,
        workers=workers,
        shards=shards,
        shard_strategy=shard_strategy,
        backend=backend,
        store=store,
    )
    return NetworkSweepResult(
        topology=cfg.topology.describe(),
        thresholds=tuple(cfg.thresholds),
        results=results,
    )


def format_network_summary(result: NetworkResult) -> str:
    """Human-readable one-run summary (hotspot, lifetime, energy)."""
    hotspot = result.hotspot
    lines = [
        f"topology            : {result.topology}",
        f"Power_Down_Threshold: {result.power_down_threshold:g} s",
        f"simulated horizon   : {result.horizon_s:g} s",
        f"total energy        : {result.total_energy_j:.4f} J",
        f"network lifetime    : {result.network_lifetime_days:.2f} days "
        f"(first death: node {hotspot.node_id} "
        f"at {hotspot.event_rate:g} events/s)",
        f"lifetime imbalance  : {result.lifetime_imbalance():.2f}x "
        "(max/min node lifetime)",
    ]
    if result.dynamics is not None:
        d = result.dynamics
        lines.append(
            f"churn               : {d.failures} failures "
            f"({d.survivors} survivors), {d.reparented} nodes rewired, "
            f"{d.unreachable} cut off"
        )
    return "\n".join(lines)
