"""``repro.experiments`` — the table/figure regeneration harness.

* :mod:`repro.experiments.figures` — Figs. 4–9 three-way CPU
  comparison (DES vs Markov vs Petri net);
* :mod:`repro.experiments.deltas` — Tables IV–VI Δ-energy statistics;
* :mod:`repro.experiments.node_energy` — Figs. 14/15 node sweeps with
  optimum-threshold detection;
* :mod:`repro.experiments.network` — sharded multi-node network
  scenarios (line/star/grid) on the network-lifetime metric;
* :mod:`repro.experiments.validation` — the Section V IMote2
  validation (Tables VIII–X);
* :mod:`repro.experiments.sweep` / :mod:`repro.experiments.tables` —
  grids and paper-style rendering.
"""

from .deltas import DeltaStats, delta_stats, delta_table
from .figures import (
    PAPER_POWER_UP_DELAYS,
    CPUComparisonConfig,
    CPUComparisonResult,
    run_cpu_comparison,
)
from .network import (
    NetworkScenarioConfig,
    NetworkSweepResult,
    ReplicatedNetworkResult,
    format_network_summary,
    make_topology,
    run_network_lifetime_sweep,
    run_network_scenario,
)
from .node_energy import (
    PAPER_NODE_HORIZON_S,
    NodeSweepConfig,
    NodeSweepResult,
    run_node_energy_sweep,
)
from .sensitivity import (
    RateSensitivityResult,
    cpu_breakeven_delay,
    cpu_energy_threshold_response,
    node_optimum_vs_rate,
)
from .sweep import (
    FIG4_TO_9_THRESHOLDS,
    FIG14_15_THRESHOLDS,
    NETWORK_THRESHOLDS,
    SweepPoint,
    linear_thresholds,
    run_sweep,
)
from .tables import (
    format_delta_table,
    format_optimum_summary,
    format_steady_state_table,
    format_validation_table,
)
from .validation import (
    PAPER_TABLE_X,
    ValidationConfig,
    ValidationResult,
    run_simple_node_validation,
)

__all__ = [
    "DeltaStats",
    "delta_stats",
    "delta_table",
    "CPUComparisonConfig",
    "CPUComparisonResult",
    "run_cpu_comparison",
    "PAPER_POWER_UP_DELAYS",
    "NodeSweepConfig",
    "NodeSweepResult",
    "run_node_energy_sweep",
    "PAPER_NODE_HORIZON_S",
    "NetworkScenarioConfig",
    "NetworkSweepResult",
    "ReplicatedNetworkResult",
    "make_topology",
    "run_network_scenario",
    "run_network_lifetime_sweep",
    "format_network_summary",
    "NETWORK_THRESHOLDS",
    "ValidationConfig",
    "ValidationResult",
    "run_simple_node_validation",
    "PAPER_TABLE_X",
    "RateSensitivityResult",
    "node_optimum_vs_rate",
    "cpu_energy_threshold_response",
    "cpu_breakeven_delay",
    "FIG4_TO_9_THRESHOLDS",
    "FIG14_15_THRESHOLDS",
    "SweepPoint",
    "run_sweep",
    "linear_thresholds",
    "format_delta_table",
    "format_validation_table",
    "format_steady_state_table",
    "format_optimum_summary",
]
