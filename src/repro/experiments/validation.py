"""Section V validation experiment (Tables VIII–X).

Protocol, mirroring the paper:

1. "Measure" the node: run the IMote2 hardware simulator
   (:class:`repro.des.imote2.IMote2HardwareSimulator`) for 100 random
   events, recording execution time, mean power and energy — the
   Table X "actual" column.
2. Predict with the model: simulate the Fig. 10 Petri net to steady
   state, evaluate Eq. (8) mean power, and multiply by the *measured*
   execution time (the paper computes Petri-net energy over the same
   266.5 s window the hardware ran).
3. Compare: the percent difference is the headline ≈3 % of Table X.

The paper's printed run ("100 events took 266.5 seconds") is shorter
than 100 × the model's own ≈5.04 s mean cycle; the discrepancy is in
the paper's numbers, not ours — the validation metric (percent
difference of mean powers) is independent of run length, so we report
our duration alongside the paper's.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.statistics import ConfidenceInterval, replication_interval
from ..des.imote2 import IMote2HardwareSimulator, IMote2RunResult
from ..models.simple_node import SimpleNodeModel, SimpleNodeResult

__all__ = ["ValidationConfig", "ValidationResult", "run_simple_node_validation"]

#: Paper values for side-by-side reporting (Table X).
PAPER_TABLE_X = {
    "execution_time_s": 266.5,
    "mean_power_mw": 1.261,
    "imote2_energy_j": 0.336137,
    "petri_energy_j": 0.326519,
    "percent_difference": 2.95,
}


@dataclass(frozen=True)
class ValidationConfig:
    """Run configuration for the Section V experiment."""

    n_events: int = 100
    petri_horizon: float = 20_000.0
    petri_warmup: float = 100.0
    seed: int = 2010


@dataclass
class ValidationResult:
    """Our regenerated Table X.

    ``hardware`` / ``petri`` / ``petri_energy_j`` are replication 0
    (seeded with the configured seed, matching the single-run
    protocol); ``replicate_percent_differences`` collects the headline
    metric across all replications when the experiment ran with
    ``replications > 1``.
    """

    hardware: IMote2RunResult
    petri: SimpleNodeResult
    petri_energy_j: float
    replicate_percent_differences: list[float] = field(default_factory=list)
    #: Adaptive-control outcome (``None`` for fixed-count runs):
    #: whether the percent-difference interval met ``ci_target`` before
    #: ``max_replications``.
    converged: bool | None = None
    ci_target: float | None = None

    @property
    def replications(self) -> int:
        """Replications backing the percent-difference estimate."""
        return max(1, len(self.replicate_percent_differences))

    def percent_difference_ci(
        self, confidence: float = 0.95
    ) -> ConfidenceInterval:
        """Across-replication t-interval on the percent difference."""
        values = self.replicate_percent_differences or [self.percent_difference]
        return replication_interval(values, confidence)

    @property
    def hardware_energy_j(self) -> float:
        """Measured ("actual") energy over the hardware run."""
        return self.hardware.energy_j

    @property
    def percent_difference(self) -> float:
        """|actual − predicted| / actual × 100 — the Table X headline."""
        actual = self.hardware_energy_j
        if actual == 0:
            return 0.0
        return abs(actual - self.petri_energy_j) / actual * 100.0

    def table_rows(self) -> list[tuple[str, float, float]]:
        """(label, ours, paper) rows for side-by-side reporting."""
        return [
            (
                "Execution time (s)",
                self.hardware.duration_s,
                PAPER_TABLE_X["execution_time_s"],
            ),
            (
                "Average power (mW)",
                self.hardware.mean_power_mw,
                PAPER_TABLE_X["mean_power_mw"],
            ),
            (
                "IMote2 energy (J)",
                self.hardware_energy_j,
                PAPER_TABLE_X["imote2_energy_j"],
            ),
            (
                "Petri net energy (J)",
                self.petri_energy_j,
                PAPER_TABLE_X["petri_energy_j"],
            ),
            (
                "Percent difference",
                self.percent_difference,
                PAPER_TABLE_X["percent_difference"],
            ),
        ]


def _run_validation_rep(
    task: tuple[ValidationConfig, int],
) -> tuple[IMote2RunResult, SimpleNodeResult, float]:
    """One seeded (hardware, Petri net) validation pair (picklable)."""
    cfg, seed = task
    hardware = IMote2HardwareSimulator(seed=seed).run_events(cfg.n_events)
    petri = SimpleNodeModel().simulate(
        cfg.petri_horizon, seed=seed, warmup=cfg.petri_warmup
    )
    # The paper evaluates the Petri-net energy over the *measured*
    # execution window (0.326519 J = model mean power x 266.5 s).
    return hardware, petri, petri.energy_over(hardware.duration_s)


def _percent_difference(rep: tuple[IMote2RunResult, SimpleNodeResult, float]) -> float:
    hardware, _petri, petri_energy = rep
    actual = hardware.energy_j
    return abs(actual - petri_energy) / actual * 100.0 if actual else 0.0


def _run_validation_ensemble(
    task: tuple[ValidationConfig, tuple[int, ...]],
) -> list[tuple[IMote2RunResult, SimpleNodeResult, float]]:
    """All validation replications of one batch, Petri net vectorized.

    The ``engine="vectorized"`` counterpart of
    :func:`_run_validation_rep`: the Fig. 10 Petri runs of every seed
    proceed in lockstep through
    :meth:`~repro.models.simple_node.SimpleNodeModel.simulate_ensemble`
    (bit-identical per replication); the IMote2 hardware simulator is
    an event-driven DES, not a Petri net, and runs per seed as before.
    """
    cfg, seeds = task
    petris = SimpleNodeModel().simulate_ensemble(
        cfg.petri_horizon, seeds, warmup=cfg.petri_warmup
    )
    out = []
    for seed, petri in zip(seeds, petris):
        hardware = IMote2HardwareSimulator(seed=seed).run_events(cfg.n_events)
        out.append((hardware, petri, petri.energy_over(hardware.duration_s)))
    return out


def run_simple_node_validation(
    config: ValidationConfig | None = None,
    workers: int = 1,
    replications: int = 1,
    ci_target: float | None = None,
    max_replications: int = 64,
    min_replications: int = 2,
    backend=None,
    engine: str = "interpreted",
    store=None,
    *,
    exec_cfg=None,
) -> ValidationResult:
    """Execute the full Section V protocol.

    Replication 0 runs with the configured seed (the paper's single
    measurement run); further replications re-run the whole protocol
    with independent spawned seeds, submitted through the
    :mod:`repro.runtime` executor, so the headline percent difference
    gets an across-replication confidence interval.

    With ``ci_target`` set, the replication count is chosen adaptively
    (:mod:`repro.runtime.adaptive`) on the percent-difference metric:
    the protocol re-runs in rounds until the interval's relative
    half-width crosses the target or ``max_replications`` is reached.
    The seed plan is prefix-stable, so the executed replications are a
    bit-identical prefix of the fixed ``replications=max_replications``
    run; ``replications`` acts as a floor on ``min_replications``.

    ``backend`` routes the protocol replications through an explicit
    execution :class:`~repro.runtime.backend.Backend` (e.g. socket
    workers on remote hosts); it never changes the numbers.

    ``engine="vectorized"`` runs the Petri-net half of every
    replication in lockstep through :mod:`repro.core.fast`
    (bit-identical per replication, so the reported table is unchanged
    from the interpreted engine); the IMote2 hardware DES half is
    unaffected.

    ``store`` memoizes per-replication (hardware, Petri) pairs in a
    :class:`~repro.runtime.store.ResultStore` keyed by ``(config,
    seed)`` — shared across engines, backends and the fixed/adaptive
    paths.

    ``exec_cfg`` — an :class:`~repro.runtime.config.ExecutionConfig`
    (or resolved :class:`~repro.runtime.config.ResolvedExecution`) —
    supplies all of the execution keywords above in one object and is
    mutually exclusive with passing them individually; the loose
    keywords remain as a deprecation shim.
    """
    from ..runtime.adaptive import AdaptiveSettings, run_adaptive_rounds
    from ..runtime.config import resolve_execution
    from ..runtime.executor import ParallelExecutor
    from ..runtime.seeding import replication_seeds
    from ..runtime.store import cached_ensemble_map, cached_map

    rx = resolve_execution(
        exec_cfg,
        workers=workers,
        replications=replications,
        ci_target=ci_target,
        max_replications=max_replications,
        min_replications=min_replications,
        backend=backend,
        engine=engine,
        store=store,
    )
    workers, replications, backend = rx.workers, rx.replications, rx.backend
    ci_target, max_replications = rx.ci_target, rx.max_replications
    min_replications, engine, store = rx.min_replications, rx.engine, rx.store
    if engine not in ("interpreted", "vectorized"):
        raise ValueError(
            f"engine must be 'interpreted' or 'vectorized', got {engine!r}"
        )
    cfg = config if config is not None else ValidationConfig()
    converged: bool | None = None
    if ci_target is not None:
        seeds = replication_seeds(cfg.seed, max_replications)
        ensemble_kwargs = {}
        if engine == "vectorized":
            ensemble_kwargs = {
                "ensemble_fn": _run_validation_ensemble,
                "ensemble_task_for": lambda _i, start, n: (
                    cfg,
                    tuple(seeds[start : start + n]),
                ),
            }
        [run] = run_adaptive_rounds(
            _run_validation_rep,
            lambda _i, r: (cfg, seeds[r]),
            1,
            AdaptiveSettings(
                ci_target=ci_target,
                min_replications=max(min_replications, replications),
                max_replications=max_replications,
            ),
            metrics=_percent_difference,
            executor=ParallelExecutor(workers=workers, backend=backend),
            store=store,
            **ensemble_kwargs,
        )
        reps = run.values
        converged = run.converged
    elif engine == "vectorized":
        seeds = replication_seeds(cfg.seed, replications)
        [reps] = cached_ensemble_map(
            ParallelExecutor(workers=workers, backend=backend),
            _run_validation_ensemble,
            [(cfg, tuple(seeds))],
            store,
            key_fn=_run_validation_rep,
            rep_items=[[(cfg, seed) for seed in seeds]],
            rebuild_tail=lambda _i, start: (cfg, tuple(seeds[start:])),
        )
    else:
        tasks = [
            (cfg, seed) for seed in replication_seeds(cfg.seed, replications)
        ]
        reps = cached_map(
            ParallelExecutor(workers=workers, backend=backend),
            _run_validation_rep,
            tasks,
            store,
        )

    differences = [_percent_difference(rep) for rep in reps]
    hardware, petri, petri_energy_j = reps[0]
    return ValidationResult(
        hardware=hardware,
        petri=petri,
        petri_energy_j=petri_energy_j,
        replicate_percent_differences=differences,
        converged=converged,
        ci_target=ci_target,
    )
