"""Figs. 14/15 driver: node-energy sweeps over ``Power_Down_Threshold``.

For each grid point the full node model (closed or open workload) is
simulated for 15 minutes and the eight-component energy breakdown is
recorded; the driver then locates the optimum threshold and computes
the paper's two savings ratios (vs power-down-immediately and vs
never-power-down).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.statistics import ConfidenceInterval, replication_interval
from ..energy.breakdown import EnergyBreakdown
from ..models.wsn_node import (
    NodeParameters,
    WSNNodeResult,
    simulate_node_ensemble_task,
    simulate_node_task,
)
from .sweep import FIG14_15_THRESHOLDS

__all__ = [
    "NodeSweepConfig",
    "NodeSweepResult",
    "run_node_energy_sweep",
]

#: The paper's evaluation horizon: "a time interval of 15 minutes".
PAPER_NODE_HORIZON_S = 900.0


@dataclass(frozen=True)
class NodeSweepConfig:
    """Sweep configuration (paper defaults)."""

    workload: str = "closed"
    horizon: float = PAPER_NODE_HORIZON_S
    seed: int = 2010
    thresholds: tuple[float, ...] = FIG14_15_THRESHOLDS
    params: NodeParameters = NodeParameters()

    def __post_init__(self) -> None:
        if self.workload not in ("closed", "open"):
            raise ValueError(
                f"workload must be 'closed' or 'open', got {self.workload!r}"
            )
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")


@dataclass
class NodeSweepResult:
    """The full Fig. 14/15 data set for one workload kind.

    ``results`` holds replication 0 (the legacy single-run series);
    ``replicates`` holds *all* replications per point when the sweep ran
    with ``replications > 1``, and the energy series then reports the
    across-replication mean with :meth:`energy_ci` uncertainty.

    Under adaptive replication control (``ci_target``) the per-point
    replication counts differ — ``replication_counts`` reports them and
    ``converged`` records which points met the target before
    ``max_replications``; both stay ``None`` for fixed-count sweeps.
    """

    workload: str
    thresholds: tuple[float, ...]
    results: list[WSNNodeResult]
    replicates: list[list[WSNNodeResult]] = field(default_factory=list)
    converged: list[bool] | None = None
    ci_target: float | None = None

    def __post_init__(self) -> None:
        if not self.replicates:
            self.replicates = [[r] for r in self.results]

    @property
    def replications(self) -> int:
        """Replications per grid point (the maximum, when adaptive)."""
        return max((len(reps) for reps in self.replicates), default=1)

    @property
    def replication_counts(self) -> list[int]:
        """Replications executed per grid point."""
        return [len(reps) for reps in self.replicates]

    @property
    def breakdowns(self) -> list[EnergyBreakdown]:
        """Per-point component breakdowns (the stacked series, rep 0)."""
        return [r.breakdown for r in self.results]

    @property
    def total_energy_j(self) -> list[float]:
        """Per-point total node energy (across-replication mean)."""
        return [
            float(np.mean([r.total_energy_j for r in reps]))
            for reps in self.replicates
        ]

    def energy_ci(self, confidence: float = 0.95) -> list[ConfidenceInterval]:
        """Across-replication t-interval on total energy per point."""
        return [
            replication_interval(
                [r.total_energy_j for r in reps], confidence
            )
            for reps in self.replicates
        ]

    def optimum(self) -> tuple[float, float]:
        """(threshold, energy) of the minimum-energy grid point."""
        energies = self.total_energy_j
        i = min(range(len(energies)), key=energies.__getitem__)
        return self.thresholds[i], energies[i]

    def immediate_powerdown_energy(self) -> float:
        """Energy at the smallest threshold (power down immediately)."""
        i = min(range(len(self.thresholds)), key=lambda j: self.thresholds[j])
        return self.total_energy_j[i]

    def never_powerdown_energy(self) -> float:
        """Energy at the largest threshold (CPU effectively always on)."""
        i = max(range(len(self.thresholds)), key=lambda j: self.thresholds[j])
        return self.total_energy_j[i]

    def savings_vs_immediate(self) -> float:
        """Fractional saving of the optimum vs immediate power-down."""
        base = self.immediate_powerdown_energy()
        _, opt = self.optimum()
        return (base - opt) / base if base > 0 else 0.0

    def savings_vs_never(self) -> float:
        """Fractional saving of the optimum vs never powering down."""
        base = self.never_powerdown_energy()
        _, opt = self.optimum()
        return (base - opt) / base if base > 0 else 0.0

    def series(self, category: str) -> list[float]:
        """One stacked component series across the sweep."""
        return [b.get(category) for b in self.breakdowns]


def run_node_energy_sweep(
    config: NodeSweepConfig | None = None,
    workers: int = 1,
    replications: int = 1,
    ci_target: float | None = None,
    max_replications: int = 64,
    min_replications: int = 2,
    backend=None,
    engine: str = "interpreted",
    store=None,
    *,
    exec_cfg=None,
) -> NodeSweepResult:
    """Simulate the node at every threshold grid point.

    Replication 0 uses the same seed at every point (common random
    numbers), so the energy curve differences across thresholds reflect
    the threshold, not workload noise; further replications run with
    independent spawned seeds so :meth:`NodeSweepResult.energy_ci` can
    report the workload noise.  All (point × replication) simulations
    are submitted through the :mod:`repro.runtime` executor;
    ``workers=1`` with ``replications=1`` is bit-identical to the
    pre-runtime serial sweep.

    With ``ci_target`` set, replication counts are chosen per point by
    the :mod:`repro.runtime.adaptive` controller on the total-energy
    metric: each point stops once its 95 % interval's relative
    half-width crosses the target (or at ``max_replications``).  The
    per-point seed plan is always sized at ``max_replications``
    (``replication_seeds`` is prefix-stable), so an adaptive run's
    replicates are a bit-identical prefix of the fixed
    ``replications=max_replications`` run; ``replications`` acts as a
    floor on ``min_replications``.

    ``backend`` routes the simulations through an explicit execution
    :class:`~repro.runtime.backend.Backend` (e.g. socket workers on
    remote hosts); like ``workers``, it never changes the numbers.

    ``engine="vectorized"`` runs each threshold point's replications in
    lockstep through :mod:`repro.core.fast` (one ensemble task per
    point, so chunking batches sweep points); the engine is
    bit-identical per replication, so the sweep result matches the
    interpreted engine exactly at every seed plan.

    ``store`` memoizes per-replication node results in a
    :class:`~repro.runtime.store.ResultStore` keyed by ``(params,
    workload, horizon, seed)`` — shared across engines, backends and
    the fixed/adaptive paths, so warm re-runs and ``max_replications``
    top-ups recompute only unseen replications.

    ``exec_cfg`` — an :class:`~repro.runtime.config.ExecutionConfig`
    (or resolved :class:`~repro.runtime.config.ResolvedExecution`) —
    supplies all of the execution keywords above in one object and is
    mutually exclusive with passing them individually; the loose
    keywords remain as a deprecation shim.
    """
    from ..runtime.adaptive import AdaptiveSettings, run_adaptive_rounds
    from ..runtime.config import resolve_execution
    from ..runtime.executor import ParallelExecutor
    from ..runtime.seeding import replication_seeds
    from ..runtime.store import cached_ensemble_map, cached_map

    rx = resolve_execution(
        exec_cfg,
        workers=workers,
        replications=replications,
        ci_target=ci_target,
        max_replications=max_replications,
        min_replications=min_replications,
        backend=backend,
        engine=engine,
        store=store,
    )
    workers, replications, backend = rx.workers, rx.replications, rx.backend
    ci_target, max_replications = rx.ci_target, rx.max_replications
    min_replications, engine, store = rx.min_replications, rx.engine, rx.store
    if engine not in ("interpreted", "vectorized"):
        raise ValueError(
            f"engine must be 'interpreted' or 'vectorized', got {engine!r}"
        )
    cfg = config if config is not None else NodeSweepConfig()
    converged: list[bool] | None = None
    if ci_target is not None:
        rep_seeds = replication_seeds(cfg.seed, max_replications)
        point_params = [
            cfg.params.with_threshold(t) for t in cfg.thresholds
        ]
        ensemble_kwargs = {}
        if engine == "vectorized":
            ensemble_kwargs = {
                "ensemble_fn": simulate_node_ensemble_task,
                "ensemble_task_for": lambda i, start, n: (
                    point_params[i],
                    cfg.workload,
                    cfg.horizon,
                    tuple(rep_seeds[start : start + n]),
                ),
            }
        runs = run_adaptive_rounds(
            simulate_node_task,
            lambda i, r: (point_params[i], cfg.workload, cfg.horizon, rep_seeds[r]),
            len(cfg.thresholds),
            AdaptiveSettings(
                ci_target=ci_target,
                min_replications=max(min_replications, replications),
                max_replications=max_replications,
            ),
            metrics=lambda result: result.total_energy_j,
            executor=ParallelExecutor(workers=workers, backend=backend),
            store=store,
            **ensemble_kwargs,
        )
        replicates = [run.values for run in runs]
        converged = [run.converged for run in runs]
    elif engine == "vectorized":
        rep_seeds = replication_seeds(cfg.seed, replications)
        point_params = [cfg.params.with_threshold(t) for t in cfg.thresholds]
        point_tasks = [
            (params, cfg.workload, cfg.horizon, tuple(rep_seeds))
            for params in point_params
        ]
        replicates = cached_ensemble_map(
            ParallelExecutor(workers=workers, backend=backend),
            simulate_node_ensemble_task,
            point_tasks,
            store,
            key_fn=simulate_node_task,
            rep_items=[
                [(params, cfg.workload, cfg.horizon, seed) for seed in rep_seeds]
                for params in point_params
            ],
            rebuild_tail=lambda i, start: (
                point_params[i],
                cfg.workload,
                cfg.horizon,
                tuple(rep_seeds[start:]),
            ),
        )
    else:
        rep_seeds = replication_seeds(cfg.seed, replications)
        tasks = [
            (cfg.params.with_threshold(threshold), cfg.workload, cfg.horizon, seed)
            for threshold in cfg.thresholds
            for seed in rep_seeds
        ]
        flat = cached_map(
            ParallelExecutor(workers=workers, backend=backend),
            simulate_node_task,
            tasks,
            store,
        )
        replicates = [
            flat[i * replications : (i + 1) * replications]
            for i in range(len(cfg.thresholds))
        ]
    return NodeSweepResult(
        workload=cfg.workload,
        thresholds=tuple(cfg.thresholds),
        results=[reps[0] for reps in replicates],
        replicates=replicates,
        converged=converged,
        ci_target=ci_target,
    )
