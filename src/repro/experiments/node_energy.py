"""Figs. 14/15 driver: node-energy sweeps over ``Power_Down_Threshold``.

For each grid point the full node model (closed or open workload) is
simulated for 15 minutes and the eight-component energy breakdown is
recorded; the driver then locates the optimum threshold and computes
the paper's two savings ratios (vs power-down-immediately and vs
never-power-down).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..energy.breakdown import EnergyBreakdown
from ..models.wsn_node import NodeParameters, WSNNodeModel, WSNNodeResult
from .sweep import FIG14_15_THRESHOLDS

__all__ = [
    "NodeSweepConfig",
    "NodeSweepResult",
    "run_node_energy_sweep",
]

#: The paper's evaluation horizon: "a time interval of 15 minutes".
PAPER_NODE_HORIZON_S = 900.0


@dataclass(frozen=True)
class NodeSweepConfig:
    """Sweep configuration (paper defaults)."""

    workload: str = "closed"
    horizon: float = PAPER_NODE_HORIZON_S
    seed: int = 2010
    thresholds: tuple[float, ...] = FIG14_15_THRESHOLDS
    params: NodeParameters = NodeParameters()

    def __post_init__(self) -> None:
        if self.workload not in ("closed", "open"):
            raise ValueError(
                f"workload must be 'closed' or 'open', got {self.workload!r}"
            )
        if self.horizon <= 0:
            raise ValueError("horizon must be > 0")


@dataclass
class NodeSweepResult:
    """The full Fig. 14/15 data set for one workload kind."""

    workload: str
    thresholds: tuple[float, ...]
    results: list[WSNNodeResult]

    @property
    def breakdowns(self) -> list[EnergyBreakdown]:
        """Per-point component breakdowns (the stacked series)."""
        return [r.breakdown for r in self.results]

    @property
    def total_energy_j(self) -> list[float]:
        """Per-point total node energy."""
        return [r.total_energy_j for r in self.results]

    def optimum(self) -> tuple[float, float]:
        """(threshold, energy) of the minimum-energy grid point."""
        energies = self.total_energy_j
        i = min(range(len(energies)), key=energies.__getitem__)
        return self.thresholds[i], energies[i]

    def immediate_powerdown_energy(self) -> float:
        """Energy at the smallest threshold (power down immediately)."""
        i = min(range(len(self.thresholds)), key=lambda j: self.thresholds[j])
        return self.total_energy_j[i]

    def never_powerdown_energy(self) -> float:
        """Energy at the largest threshold (CPU effectively always on)."""
        i = max(range(len(self.thresholds)), key=lambda j: self.thresholds[j])
        return self.total_energy_j[i]

    def savings_vs_immediate(self) -> float:
        """Fractional saving of the optimum vs immediate power-down."""
        base = self.immediate_powerdown_energy()
        _, opt = self.optimum()
        return (base - opt) / base if base > 0 else 0.0

    def savings_vs_never(self) -> float:
        """Fractional saving of the optimum vs never powering down."""
        base = self.never_powerdown_energy()
        _, opt = self.optimum()
        return (base - opt) / base if base > 0 else 0.0

    def series(self, category: str) -> list[float]:
        """One stacked component series across the sweep."""
        return [b.get(category) for b in self.breakdowns]


def run_node_energy_sweep(
    config: NodeSweepConfig | None = None,
) -> NodeSweepResult:
    """Simulate the node at every threshold grid point.

    The same seed is used per point (common random numbers), so the
    energy curve differences across thresholds reflect the threshold,
    not workload noise.
    """
    cfg = config if config is not None else NodeSweepConfig()
    results: list[WSNNodeResult] = []
    for threshold in cfg.thresholds:
        model = WSNNodeModel(
            cfg.params.with_threshold(threshold), cfg.workload
        )
        results.append(model.simulate(cfg.horizon, seed=cfg.seed))
    return NodeSweepResult(
        workload=cfg.workload,
        thresholds=tuple(cfg.thresholds),
        results=results,
    )
