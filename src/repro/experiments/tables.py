"""Paper-style table rendering for the regenerated experiments.

Keeps the benchmark output visually parallel to the paper so
EXPERIMENTS.md can be filled by copy-paste.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from ..energy.report import format_table
from .deltas import DeltaStats

__all__ = [
    "format_delta_table",
    "format_validation_table",
    "format_steady_state_table",
    "format_optimum_summary",
]

_DELTA_COLUMNS = (
    ("sim_markov", "Δ Sim-Markov"),
    ("sim_petri", "Δ Sim-Petri net"),
    ("markov_petri", "Δ Markov-Petri net"),
)

_DELTA_ROWS = (
    ("avg", "Avg."),
    ("variance", "Variance"),
    ("std_dev", "STD DEV"),
    ("rmse", "RMSE"),
)


def format_delta_table(
    deltas: Mapping[str, DeltaStats],
    power_up_delay: float,
    table_number: str,
) -> str:
    """Render a Tables IV–VI style Δ-energy table."""
    headers = ["Power Down"] + [label for _, label in _DELTA_COLUMNS]
    rows = []
    for attr, row_label in _DELTA_ROWS:
        rows.append(
            [row_label]
            + [getattr(deltas[key], attr) for key, _ in _DELTA_COLUMNS]
        )
    title = (
        f"Table {table_number}: Δ ENERGY (JOULES) ESTIMATES "
        f"(Power_Up_Delay = {power_up_delay:g} s)"
    )
    return format_table(headers, rows, title=title)


def format_validation_table(
    rows: Sequence[tuple[str, float, float]]
) -> str:
    """Render the Table X side-by-side (ours vs paper)."""
    return format_table(
        ["Quantity", "Measured (ours)", "Paper"],
        rows,
        title="Table X: RESULTS OF ACTUAL SYSTEM AND PETRI NET",
        precision=6,
    )


def format_steady_state_table(
    probabilities: Mapping[str, float],
    paper_values: Mapping[str, float] | None = None,
) -> str:
    """Render a Table IX style steady-state probability table."""
    headers = ["State/Place", "Probability (%)"]
    rows: list[list[object]] = []
    if paper_values is not None:
        headers.append("Paper (%)")
        for state, p in probabilities.items():
            rows.append([state, 100.0 * p, paper_values.get(state, float("nan"))])
    else:
        for state, p in probabilities.items():
            rows.append([state, 100.0 * p])
    return format_table(
        headers,
        rows,
        title="Table IX: STEADY STATE PROBABILITIES FOR A SIMPLE SYSTEM",
    )


def format_optimum_summary(
    workload: str,
    optimum_threshold: float,
    optimum_energy_j: float,
    savings_vs_immediate: float,
    savings_vs_never: float,
) -> str:
    """One-paragraph summary matching the paper's Section VII prose."""
    return (
        f"[{workload} workload] optimum Power_Down_Threshold = "
        f"{optimum_threshold:g} s with {optimum_energy_j:.1f} J; "
        f"{100 * savings_vs_immediate:.0f}% less than immediate power-down, "
        f"{100 * savings_vs_never:.0f}% less than never powering down"
    )
