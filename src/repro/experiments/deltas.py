"""Δ-energy statistics: the paper's Tables IV–VI metric set.

Each table row compares two estimators' energy series across the
``Power_Down_Threshold`` sweep with four aggregate statistics of the
absolute pointwise differences: Average, Variance, Standard Deviation
and RMSE.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["DeltaStats", "delta_stats", "delta_table"]


@dataclass(frozen=True)
class DeltaStats:
    """Aggregate statistics of |a − b| across a sweep."""

    avg: float
    variance: float
    std_dev: float
    rmse: float
    n: int

    def as_row(self) -> tuple[float, float, float, float]:
        """(Avg, Variance, StdDev, RMSE) in the tables' row order."""
        return (self.avg, self.variance, self.std_dev, self.rmse)


def delta_stats(a: Sequence[float], b: Sequence[float]) -> DeltaStats:
    """Statistics of the absolute pointwise differences |a − b|.

    Matches the paper's usage: "the average difference between the
    Markov model energy estimates compared to the simulator".
    Variance/StdDev are population statistics of the |Δ| series; RMSE
    is over the signed differences (equal to the RMS of |Δ|).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    if a.shape != b.shape or a.ndim != 1 or a.size == 0:
        raise ValueError(
            f"need equal-length non-empty 1-D series, got {a.shape} vs {b.shape}"
        )
    diff = np.abs(a - b)
    return DeltaStats(
        avg=float(diff.mean()),
        variance=float(diff.var()),
        std_dev=float(diff.std()),
        rmse=float(np.sqrt(np.mean((a - b) ** 2))),
        n=int(a.size),
    )


def delta_table(
    sim: Sequence[float],
    markov: Sequence[float],
    petri: Sequence[float],
) -> dict[str, DeltaStats]:
    """The three columns of Tables IV–VI.

    Returns ``{"sim_markov": ..., "sim_petri": ..., "markov_petri": ...}``.
    """
    return {
        "sim_markov": delta_stats(sim, markov),
        "sim_petri": delta_stats(sim, petri),
        "markov_petri": delta_stats(markov, petri),
    }
