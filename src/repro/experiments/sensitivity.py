"""Sensitivity analysis: how the optimum threshold moves with the workload.

The paper answers "what is the optimum ``Power_Down_Threshold``" for
one workload (1 event/s).  A deployment needs the whole response
surface: the optimum as a function of event rate (and, for the CPU
model, of the wake-up delay).  This module sweeps those axes —
exactly the kind of follow-on study the paper's Section VII sets up.

Findings encoded as tests/benches:

* For the node model, the optimum stays pinned just above the
  radio-phase duration across event rates (the crossover is set by the
  intra-cycle gap, not the inter-event gap) while the *vs-never-down
  saving* grows as events get rarer (more idle time to avoid).
* For the analytic CPU model, the energy-optimal threshold flips from
  0 (sleep immediately) to ∞ (never sleep) as the wake-up delay
  crosses the break-even point — the paper's break-even-time concept
  from Liu & Chou [6], now computable in closed form.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..energy.power import PXA271_CPU_POWER_MW
from ..markov.supplementary import SupplementaryVariableCPUModel
from ..models.wsn_node import NodeParameters, WSNNodeModel

__all__ = [
    "RateSensitivityResult",
    "node_optimum_vs_rate",
    "cpu_energy_threshold_response",
    "cpu_breakeven_delay",
]


@dataclass
class RateSensitivityResult:
    """Optimum threshold and savings per event rate.

    Under adaptive replication control (``ci_target``),
    ``cell_replications[i][j]`` / ``cell_converged[i][j]`` report the
    controller outcome for the ``(rates[i], thresholds[j])`` cell; both
    stay ``None`` for single-run sweeps.
    """

    rates: tuple[float, ...]
    optima: list[float]
    optimum_energies_j: list[float]
    savings_vs_never: list[float]
    cell_replications: list[list[int]] | None = None
    cell_converged: list[list[bool]] | None = None
    ci_target: float | None = None

    def rows(self) -> list[tuple[float, float, float, float]]:
        """(rate, optimum PDT, energy J, saving) table rows."""
        return list(
            zip(self.rates, self.optima, self.optimum_energies_j, self.savings_vs_never)
        )

    def all_converged(self) -> bool:
        """True when every adaptive cell met the target (False if fixed)."""
        if self.cell_converged is None:
            return False
        return all(ok for row in self.cell_converged for ok in row)


def _node_energy_task(task: tuple[float, float, str, float, int]) -> float:
    """Total node energy for one (rate, threshold) cell (picklable)."""
    rate, threshold, workload, horizon, seed = task
    params = NodeParameters(power_down_threshold=threshold, arrival_rate=rate)
    result = WSNNodeModel(params, workload).simulate(horizon, seed=seed)
    return result.total_energy_j


def _node_energy_ensemble_task(
    task: tuple[float, float, str, float, tuple[int, ...]],
) -> list[float]:
    """All replications of one (rate, threshold) cell in lockstep.

    The ``engine="vectorized"`` counterpart of
    :func:`_node_energy_task`, bit-identical per seed (see
    :mod:`repro.core.fast`).
    """
    rate, threshold, workload, horizon, seeds = task
    params = NodeParameters(power_down_threshold=threshold, arrival_rate=rate)
    results = WSNNodeModel(params, workload).simulate_ensemble(horizon, seeds)
    return [r.total_energy_j for r in results]


def node_optimum_vs_rate(
    rates: Sequence[float],
    thresholds: Sequence[float] = (1e-9, 0.00178, 0.01, 0.1, 1.0, 10.0, 100.0),
    workload: str = "closed",
    horizon: float = 300.0,
    seed: int = 2010,
    workers: int = 1,
    ci_target: float | None = None,
    max_replications: int = 64,
    min_replications: int = 2,
    backend=None,
    engine: str = "interpreted",
    store=None,
    *,
    exec_cfg=None,
) -> RateSensitivityResult:
    """Sweep the event rate; find the optimum threshold at each rate.

    The full ``len(rates) × len(thresholds)`` grid is flattened and
    submitted through the :mod:`repro.runtime` executor; every cell
    keeps the same fixed seed (common random numbers), so results are
    identical for any ``workers``.

    With ``ci_target`` set, each cell is replicated adaptively
    (:mod:`repro.runtime.adaptive`) on its energy until the interval's
    relative half-width crosses the target (replication 0 keeps the
    common-random-numbers base seed; spawned seeds follow, and the cell
    energies become across-replication means).  Cells stop
    independently, so cheap low-variance cells don't pay for noisy
    ones.

    ``backend`` routes the grid through an explicit execution
    :class:`~repro.runtime.backend.Backend` (e.g. socket workers on
    remote hosts); it never changes the numbers.

    ``engine="vectorized"`` runs each cell's replications in lockstep
    through :mod:`repro.core.fast` (one ensemble task per cell);
    bit-identical per replication, so the surface is unchanged.  On the
    fixed path every cell is a single run (an ensemble of one), so the
    interpreted engine is usually faster there; the vectorized engine
    pays off under ``ci_target``.

    ``store`` memoizes per-replication cell energies in a
    :class:`~repro.runtime.store.ResultStore` keyed by ``(rate,
    threshold, workload, horizon, seed)``.

    ``exec_cfg`` — an :class:`~repro.runtime.config.ExecutionConfig`
    (or resolved :class:`~repro.runtime.config.ResolvedExecution`) —
    supplies all of the execution keywords above in one object and is
    mutually exclusive with passing them individually; the loose
    keywords remain as a deprecation shim.
    """
    from ..runtime.adaptive import AdaptiveSettings, run_adaptive_rounds
    from ..runtime.config import resolve_execution
    from ..runtime.executor import ParallelExecutor
    from ..runtime.seeding import replication_seeds
    from ..runtime.store import cached_ensemble_map, cached_map

    rx = resolve_execution(
        exec_cfg,
        workers=workers,
        ci_target=ci_target,
        max_replications=max_replications,
        min_replications=min_replications,
        backend=backend,
        engine=engine,
        store=store,
    )
    workers, backend, engine, store = rx.workers, rx.backend, rx.engine, rx.store
    ci_target, max_replications = rx.ci_target, rx.max_replications
    min_replications = rx.min_replications
    if engine not in ("interpreted", "vectorized"):
        raise ValueError(
            f"engine must be 'interpreted' or 'vectorized', got {engine!r}"
        )
    cells = [(rate, t) for rate in rates for t in thresholds]
    cell_replications: list[list[int]] | None = None
    cell_converged: list[list[bool]] | None = None
    n_t = len(thresholds)
    if ci_target is not None:
        rep_seeds = replication_seeds(seed, max_replications)
        ensemble_kwargs = {}
        if engine == "vectorized":
            ensemble_kwargs = {
                "ensemble_fn": _node_energy_ensemble_task,
                "ensemble_task_for": lambda i, start, n: (
                    *cells[i],
                    workload,
                    horizon,
                    tuple(rep_seeds[start : start + n]),
                ),
            }
        runs = run_adaptive_rounds(
            _node_energy_task,
            lambda i, r: (*cells[i], workload, horizon, rep_seeds[r]),
            len(cells),
            AdaptiveSettings(
                ci_target=ci_target,
                min_replications=min_replications,
                max_replications=max_replications,
            ),
            executor=ParallelExecutor(workers=workers, backend=backend),
            store=store,
            **ensemble_kwargs,
        )
        flat = [float(np.mean(run.values)) for run in runs]
        cell_replications = [
            [runs[i * n_t + j].replications for j in range(n_t)]
            for i in range(len(rates))
        ]
        cell_converged = [
            [runs[i * n_t + j].converged for j in range(n_t)]
            for i in range(len(rates))
        ]
    elif engine == "vectorized":
        grid = [
            (rate, t, workload, horizon, (seed,)) for rate, t in cells
        ]
        flat = [
            values[0]
            for values in cached_ensemble_map(
                ParallelExecutor(workers=workers, backend=backend),
                _node_energy_ensemble_task,
                grid,
                store,
                key_fn=_node_energy_task,
                rep_items=[
                    [(rate, t, workload, horizon, seed)] for rate, t in cells
                ],
                rebuild_tail=lambda i, _start: grid[i],
            )
        ]
    else:
        grid = [
            (rate, t, workload, horizon, seed) for rate, t in cells
        ]
        flat = cached_map(
            ParallelExecutor(workers=workers, backend=backend),
            _node_energy_task,
            grid,
            store,
        )

    optima: list[float] = []
    energies: list[float] = []
    savings: list[float] = []
    for i, rate in enumerate(rates):
        per_threshold = list(zip(thresholds, flat[i * n_t : (i + 1) * n_t]))
        t_opt, e_opt = min(per_threshold, key=lambda te: te[1])
        e_never = per_threshold[-1][1]  # largest threshold = never down
        optima.append(t_opt)
        energies.append(e_opt)
        savings.append((e_never - e_opt) / e_never if e_never > 0 else 0.0)
    return RateSensitivityResult(
        rates=tuple(rates),
        optima=optima,
        optimum_energies_j=energies,
        savings_vs_never=savings,
        cell_replications=cell_replications,
        cell_converged=cell_converged,
        ci_target=ci_target,
    )


def cpu_energy_threshold_response(
    power_up_delay: float,
    thresholds: Sequence[float],
    arrival_rate: float = 1.0,
    service_rate: float = 10.0,
    powers_mw: dict[str, float] | None = None,
    duration_s: float = 1000.0,
) -> list[tuple[float, float]]:
    """Analytic (Eqs. 1–6) energy vs threshold curve for the CPU model."""
    powers = powers_mw if powers_mw is not None else PXA271_CPU_POWER_MW
    out: list[tuple[float, float]] = []
    for t in thresholds:
        model = SupplementaryVariableCPUModel(
            arrival_rate, service_rate, t, power_up_delay
        )
        out.append((t, model.energy_over_time(powers, duration_s) / 1000.0))
    return out


def cpu_breakeven_delay(
    arrival_rate: float = 1.0,
    service_rate: float = 10.0,
    powers_mw: dict[str, float] | None = None,
    lo: float = 1e-5,
    hi: float = 100.0,
    tol: float = 1e-6,
) -> float:
    """The wake-up delay at which sleeping stops paying (break-even time).

    Below the returned delay D*, the analytic CPU energy is lower with
    an aggressive threshold (T → 0) than with no power management
    (T → ∞); above it, the ordering flips.  Found by bisection on the
    sign of ``E(T→0) − E(T→∞)``.

    Notes
    -----
    ``E(T→∞)`` is evaluated in the limit: the CPU never reaches
    standby, so energy/time = ρ·P_active + (1−ρ)·P_idle.
    """
    powers = powers_mw if powers_mw is not None else PXA271_CPU_POWER_MW
    rho = arrival_rate / service_rate
    if rho >= 1:
        raise ValueError("unstable workload")
    always_on_mw = rho * powers["active"] + (1 - rho) * powers["idle"]

    def sleep_minus_on(delay: float) -> float:
        model = SupplementaryVariableCPUModel(
            arrival_rate, service_rate, 0.0, delay
        )
        return model.mean_power(powers) - always_on_mw

    f_lo, f_hi = sleep_minus_on(lo), sleep_minus_on(hi)
    if f_lo > 0:
        return 0.0  # sleeping never pays, even with instant wake-up
    if f_hi < 0:
        return float("inf")  # sleeping always pays
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if sleep_minus_on(mid) <= 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
