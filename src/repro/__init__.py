"""repro — reproduction of *Energy Modeling of Wireless Sensor Nodes
Based on Petri Nets* (Shareef & Zhu, ICPP 2010).

Subpackages
-----------
``repro.core``
    Stochastic colored Petri-net engine (the TimeNET 4.0 substitute).
``repro.analysis``
    Structural and numerical net analysis (reachability, invariants,
    CTMC conversion).
``repro.markov``
    Markov substrate: CTMC/DTMC solvers, birth–death chains, and the
    paper's supplementary-variable CPU model (Eqs. 1–6).
``repro.des``
    Discrete-event-simulation substrate: the ground-truth CPU simulator
    of Section IV and the IMote2 "hardware" simulator of Section V.
``repro.energy``
    Power-state tables (Tables III and VII) and energy accounting
    (Eqs. 6–8), including the Fig. 14/15 component breakdown.
``repro.models``
    The paper's four models: the Fig. 3 CPU Petri net, the Markov CPU
    model, the Fig. 10 simple node, and the Figs. 12/13 closed/open
    WSN node models — plus the multi-node network layer (line, star
    and hundreds-of-node grid topologies).
``repro.experiments``
    Harness regenerating every table and figure of the evaluation,
    plus network-level lifetime scenarios.
``repro.runtime``
    Parallel replication/sweep execution runtime (process pools with
    spawn-safe seeding, node-set sharding into worker groups); every
    experiment driver routes its grid through it.
"""

__version__ = "1.2.0"

__all__ = [
    "core",
    "analysis",
    "markov",
    "des",
    "energy",
    "models",
    "experiments",
    "runtime",
]
