"""Command-line interface: regenerate any paper artifact from the shell.

Usage::

    python -m repro.cli list
    python -m repro.cli fig 7 --horizon 1000
    python -m repro.cli table 6
    python -m repro.cli node-sweep --workload open --horizon 900
    python -m repro.cli node-sweep --workers 4 --replications 8
    python -m repro.cli node-sweep --ci-target 0.05 --max-replications 32
    python -m repro.cli validate --replications 16 --workers 4
    python -m repro.cli lifetime --threshold 0.00178 --capacity-mah 1000
    python -m repro.cli network --topology grid --grid 10x10 --shards 8
    python -m repro.cli network --topology line --nodes 5 --sweep
    python -m repro.cli node-sweep --store ~/.repro-store
    python -m repro.cli store stats --store ~/.repro-store
    python -m repro.cli worker --serve 9000
    python -m repro.cli network --sweep --backend socket \
        --connect hostA:9000 --connect hostB:9000
    python -m repro.cli scenario run scenarios/fig14.yaml
    python -m repro.cli scenario run scenarios/grid100.yaml --smoke \
        --override execution.workers=4
    python -m repro.cli scenario validate scenarios/validation.yaml

Each subcommand prints the same rows the corresponding benchmark
persists, so quick what-if runs don't require pytest.  ``--workers N``
fans grid points and replications out over a process pool
(:mod:`repro.runtime`); ``--replications R`` re-runs every stochastic
point with independent spawned seeds and reports mean ± 95 % t-interval
uncertainty alongside the point estimates.  ``--ci-target REL``
switches the replication count to adaptive control
(:mod:`repro.runtime.adaptive`): each point replicates in rounds until
its interval's relative half-width is ≤ REL (capped at
``--max-replications``), and the output reports each point's
replication count and convergence.  The ``network`` subcommand
additionally accepts ``--shards K`` to partition a topology's node set
into coarse worker-group tasks (:mod:`repro.runtime.sharding`) — the
scaling knob for hundreds-of-node grids; no worker/shard setting ever
changes the reported numbers.

``--engine {interpreted,vectorized}`` selects *how* each Petri-net
simulation runs (:mod:`repro.core.fast`): the default interpreted
per-event loop, or the vectorized lockstep engine that runs all of a
sweep point's replications as one NumPy ensemble.  Results are
bit-identical; only throughput changes (the vectorized engine wins on
replication ensembles, R ≳ tens).  ``network`` does not accept
``--engine vectorized`` — its per-node fan-out has nothing to batch.

``--backend {local,processes,socket}`` selects *where* tasks execute
(:mod:`repro.runtime.backend`): in-process, on a local process pool,
or on remote worker processes.  For the socket backend, start one
``python -m repro.cli worker --serve PORT`` per host and list each as
``--connect host:port``; chunks are load-balanced across the workers
and re-queued if a worker drops (:mod:`repro.runtime.remote`).
Backends, like workers and shards, never change the reported numbers —
``--backend socket`` is asserted bit-identical to ``--backend local``
in the test suite and CI.

``--store DIR`` memoizes per-replication simulation results in a
content-addressed on-disk :class:`~repro.runtime.store.ResultStore`
(also settable via the ``REPRO_STORE`` environment variable;
``--no-store`` disables it for one run — combining it with ``--store
DIR`` is a flag error).  Warm re-runs print output byte-identical to
cold runs — entries are keyed by the task spec (parameters, seed,
horizon), never by workers/shards/backend/engine, so every execution
configuration shares one cache.  ``python -m repro.cli store
{stats,verify,gc} --store DIR`` inspects, integrity-checks and
compacts a store.

All of those execution flags are one shared set
(:func:`add_execution_args`), parsed into one
:class:`~repro.runtime.config.ExecutionConfig`
(:func:`execution_config_from_args`) and resolved once per run —
drivers receive the single ``exec_cfg`` object instead of a loose
keyword bundle.  ``scenario {run,validate,show} FILE`` drives the same
run functions from a declarative YAML/JSON
:class:`~repro.scenarios.ScenarioSpec` (model + params + execution +
outputs), with ``--override KEY=VALUE`` dotted-path tweaks and
``--smoke`` applying the spec's own CI-scale overrides; ``scenario
run`` output is byte-identical to the equivalent flag-spelled
invocation.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from collections.abc import Sequence
from pathlib import Path
from typing import Any

from .energy import (
    format_breakdown_sweep,
    format_energy_series,
    format_state_percentages,
    format_table,
)
from .energy.battery import LinearBattery, NodeLifetimeEstimator
from .experiments import (
    CPUComparisonConfig,
    NodeSweepConfig,
    ValidationConfig,
    format_delta_table,
    format_optimum_summary,
    format_steady_state_table,
    format_validation_table,
    run_cpu_comparison,
    run_node_energy_sweep,
    run_simple_node_validation,
)
from .models import NodeParameters, WSNNodeModel
from .runtime import BACKEND_NAMES
from .runtime.config import ExecutionConfig, ResolvedExecution
from .experiments.network import (
    NetworkScenarioConfig,
    format_network_summary,
    make_topology,
    run_network_lifetime_sweep,
    run_network_scenario,
)
from .topology import ChurnModel, MMPPTraffic, describe_topology

_FIG_TO_PUD = {4: 0.001, 5: 0.3, 6: 10.0, 7: 0.001, 8: 0.3, 9: 10.0}
_TABLE_TO_PUD = {4: 0.001, 5: 0.3, 6: 10.0}
_TABLE_NUMERALS = {4: "IV", 5: "V", 6: "VI"}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _ci_target(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _nonneg_float(text: str) -> float:
    value = float(text)
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _fraction(text: str) -> float:
    value = float(text)
    if not 0 <= value < 1:
        raise argparse.ArgumentTypeError(f"must be in [0, 1), got {value}")
    return value


def _grid_spec(text: str) -> tuple[int, int]:
    """Parse a ``WIDTHxHEIGHT`` grid spec like ``10x10``."""
    try:
        width_text, height_text = text.lower().split("x")
        width, height = int(width_text), int(height_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected WIDTHxHEIGHT (e.g. 10x10), got {text!r}"
        ) from None
    if width < 1 or height < 1:
        raise argparse.ArgumentTypeError(
            f"grid dimensions must be >= 1, got {text!r}"
        )
    return width, height


def _add_topology_args(sub_parser: argparse.ArgumentParser) -> None:
    """Topology-selection flags shared by ``network`` and ``topology``."""
    sub_parser.add_argument(
        "--topology",
        choices=["line", "star", "grid", "geometric", "cluster-tree"],
        default="line",
    )
    sub_parser.add_argument(
        "--nodes",
        type=_positive_int,
        default=5,
        help=(
            "chain length (line), leaf count (star) or deployment size "
            "(geometric); ignored for grid and cluster-tree"
        ),
    )
    sub_parser.add_argument(
        "--grid",
        type=_grid_spec,
        default=(10, 10),
        metavar="WxH",
        help="grid dimensions for --topology grid (default 10x10)",
    )
    sub_parser.add_argument(
        "--radius",
        type=float,
        default=None,
        help=(
            "connectivity radius for --topology geometric (default: "
            "auto-sized from the node count; retried/grown "
            "deterministically if the deployment comes out disconnected)"
        ),
    )
    sub_parser.add_argument(
        "--fanout",
        type=_positive_int,
        default=3,
        help="children per cluster head for --topology cluster-tree",
    )
    sub_parser.add_argument(
        "--depth",
        type=_positive_int,
        default=3,
        help="tree depth for --topology cluster-tree",
    )


def _add_adaptive_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--ci-target",
        type=_ci_target,
        default=None,
        metavar="REL",
        help=(
            "adaptive replication control: replicate each point until its "
            "95%% interval's relative half-width is <= REL (e.g. 0.05), "
            "then stop that point"
        ),
    )
    sub_parser.add_argument(
        "--max-replications",
        type=_positive_int,
        default=64,
        help="per-point replication cap under --ci-target (default 64)",
    )


def _add_backend_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help=(
            "execution backend: 'local' (in-process), 'processes' "
            "(local pool of --workers), 'socket' (remote workers from "
            "--connect); default: processes when --workers > 1, else "
            "local"
        ),
    )
    sub_parser.add_argument(
        "--connect",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help=(
            "worker address for --backend socket (repeat for several "
            "hosts; start each with 'python -m repro.cli worker "
            "--serve PORT')"
        ),
    )


def _add_engine_arg(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--engine",
        choices=["interpreted", "vectorized"],
        default="interpreted",
        help=(
            "simulation engine: 'interpreted' (per-event Python loop, "
            "default) or 'vectorized' (all replications of a sweep "
            "point in NumPy lockstep; bit-identical results, chunking "
            "batches sweep points instead of replications)"
        ),
    )


def _add_store_args(sub_parser: argparse.ArgumentParser) -> None:
    sub_parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help=(
            "content-addressed result store directory: cached "
            "replications are served without re-simulating and new ones "
            "are written back (default: $REPRO_STORE if set, else off)"
        ),
    )
    sub_parser.add_argument(
        "--no-store",
        action="store_true",
        help=(
            "disable the result store even if $REPRO_STORE is set "
            "(contradicts --store DIR; passing both is an error)"
        ),
    )


def add_execution_args(
    sub_parser: argparse.ArgumentParser,
    *,
    replications: bool = True,
    engine: bool = True,
    shards: bool = False,
) -> None:
    """Attach the shared execution flags to a run subcommand.

    One flag set for every run subcommand — workers, replications,
    engine, adaptive control, backend, store, and (for sharded node
    sets) shards.  :func:`execution_config_from_args` is the inverse:
    it folds whatever subset a subcommand carries into one
    :class:`~repro.runtime.config.ExecutionConfig`.
    """
    sub_parser.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help=(
            "process-pool size for grid points / replications / shard "
            "tasks (default 1)"
        ),
    )
    if replications:
        sub_parser.add_argument(
            "--replications",
            type=_positive_int,
            default=1,
            help=(
                "independent replications per stochastic point (default 1); "
                "with --ci-target this is the minimum per point"
            ),
        )
    if engine:
        _add_engine_arg(sub_parser)
    _add_adaptive_args(sub_parser)
    _add_backend_args(sub_parser)
    _add_store_args(sub_parser)
    if shards:
        sub_parser.add_argument(
            "--shards",
            type=_positive_int,
            default=1,
            help=(
                "worker-group shards over the node set "
                "(default 1 = unsharded)"
            ),
        )
        sub_parser.add_argument(
            "--shard-strategy",
            choices=["contiguous", "round-robin"],
            default="contiguous",
            help="node partition strategy for --shards > 1",
        )


def execution_config_from_args(
    args: argparse.Namespace,
    parser: argparse.ArgumentParser | None = None,
) -> ExecutionConfig:
    """Fold the shared execution flags into one ``ExecutionConfig``.

    Validates the cross-flag constraints (socket needs ``--connect``,
    ``--store`` contradicts ``--no-store``, the adaptive replication
    floor) and resolves the store directory precedence explicitly:
    ``--no-store`` > ``--store DIR`` > ``$REPRO_STORE`` > off.  With a
    ``parser``, violations are argparse errors (exit 2); without one,
    they raise :class:`ValueError` — so programmatic callers get an
    exception instead of a ``sys.exit``.
    """

    def fail(message: str) -> None:
        if parser is not None:
            parser.error(message)
        raise ValueError(message)

    backend = getattr(args, "backend", None)
    connect = getattr(args, "connect", None)
    if backend == "socket" and not connect:
        fail(
            "--backend socket requires at least one --connect HOST:PORT "
            "(start workers with 'python -m repro.cli worker --serve PORT')"
        )
    if connect and backend != "socket":
        fail("--connect only applies with --backend socket")
    if connect:
        from .runtime.remote import parse_address

        try:
            for address in connect:
                parse_address(address)
        except ValueError as exc:
            fail(str(exc))
    if (
        getattr(args, "ci_target", None) is not None
        and getattr(args, "replications", 1) > args.max_replications
    ):
        fail(
            f"--replications {args.replications} is the per-point floor "
            f"under --ci-target and must be <= --max-replications "
            f"{args.max_replications}"
        )
    no_store = getattr(args, "no_store", False)
    store_flag = getattr(args, "store", None)
    if no_store and store_flag:
        fail(
            "--store DIR and --no-store contradict each other; pass at "
            "most one (--no-store exists to override $REPRO_STORE for "
            "one run)"
        )
    if no_store:
        store_dir = None
    else:
        store_dir = store_flag or os.environ.get("REPRO_STORE") or None
    try:
        return ExecutionConfig(
            workers=getattr(args, "workers", 1),
            replications=getattr(args, "replications", 1),
            backend=backend,
            connect=tuple(connect or ()),
            engine=getattr(args, "engine", "interpreted"),
            store_dir=store_dir,
            shards=getattr(args, "shards", 1),
            shard_strategy=getattr(args, "shard_strategy", "contiguous"),
            ci_target=getattr(args, "ci_target", None),
            max_replications=getattr(args, "max_replications", 64),
        )
    except ValueError as exc:
        fail(str(exc))
        raise AssertionError("unreachable") from exc


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate artifacts of Shareef & Zhu (ICPP 2010).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available artifacts")

    fig = sub.add_parser("fig", help="regenerate a figure (4-9, 14, 15)")
    fig.add_argument("number", type=int, choices=[4, 5, 6, 7, 8, 9, 14, 15])
    fig.add_argument("--horizon", type=float, default=None, help="simulated seconds")
    fig.add_argument("--seed", type=int, default=2010)
    add_execution_args(fig)

    table = sub.add_parser("table", help="regenerate a delta table (4-6)")
    table.add_argument("number", type=int, choices=[4, 5, 6])
    table.add_argument("--horizon", type=float, default=1000.0)
    table.add_argument("--seed", type=int, default=2010)
    add_execution_args(table)

    node = sub.add_parser("node-sweep", help="Figs. 14/15 node threshold sweep")
    node.add_argument("--workload", choices=["closed", "open"], default="closed")
    node.add_argument("--horizon", type=float, default=900.0)
    node.add_argument("--seed", type=int, default=2010)
    add_execution_args(node)

    val = sub.add_parser(
        "validate", help="Section V IMote2 validation (Tables VIII-X)"
    )
    val.add_argument("--seed", type=int, default=2010)
    add_execution_args(val)

    network = sub.add_parser(
        "network", help="sharded multi-node network scenario"
    )
    _add_topology_args(network)
    network.add_argument(
        "--failure-rate",
        type=_nonneg_float,
        default=0.0,
        help=(
            "per-node exponential failure rate (1/s) for churn; dead "
            "relays rewire their orphans to the nearest live relay "
            "(default 0 = immortal nodes)"
        ),
    )
    network.add_argument(
        "--duty-spread",
        type=_fraction,
        default=0.0,
        help=(
            "half-width of the uniform per-node duty-cycle factor, in "
            "[0, 1): each node senses at base-rate x (1 +/- spread) "
            "(default 0 = identical nodes)"
        ),
    )
    network.add_argument(
        "--traffic",
        choices=["poisson", "bursty"],
        default="poisson",
        help=(
            "arrival process: poisson (the paper's) or bursty "
            "mean-rate-preserving MMPP/on-off"
        ),
    )
    network.add_argument(
        "--burst-on",
        type=_positive_float,
        default=5.0,
        help="mean burst (ON) duration in seconds for --traffic bursty",
    )
    network.add_argument(
        "--burst-off",
        type=_positive_float,
        default=15.0,
        help="mean quiet (OFF) duration in seconds for --traffic bursty",
    )
    network.add_argument(
        "--burst-off-fraction",
        type=_fraction,
        default=0.0,
        help=(
            "quiet-state emission rate as a fraction of the burst rate, "
            "in [0, 1) (default 0 = silent between bursts)"
        ),
    )
    network.add_argument(
        "--threshold",
        type=float,
        default=0.01,
        help="Power_Down_Threshold for the single run (default 0.01 s)",
    )
    network.add_argument(
        "--sweep",
        action="store_true",
        help="sweep the network threshold grid instead of one run",
    )
    network.add_argument("--horizon", type=float, default=300.0)
    network.add_argument(
        "--base-rate",
        type=float,
        default=0.5,
        help="events/s sensed by each node before relaying (default 0.5)",
    )
    network.add_argument("--seed", type=int, default=2010)
    add_execution_args(network, replications=False, engine=False, shards=True)

    topology = sub.add_parser(
        "topology",
        help="inspect a topology without simulating it",
    )
    topology.add_argument(
        "action",
        choices=["describe"],
        help=(
            "describe: print node count, depth histogram and per-hop "
            "relay load for the selected topology"
        ),
    )
    _add_topology_args(topology)
    topology.add_argument(
        "--base-rate",
        type=float,
        default=0.5,
        help="events/s sensed by each node before relaying (default 0.5)",
    )
    topology.add_argument(
        "--seed",
        type=int,
        default=2010,
        help="layout seed for generated topologies (default 2010)",
    )

    scenario = sub.add_parser(
        "scenario",
        help="run, validate or show a declarative scenario file",
    )
    scenario.add_argument(
        "action",
        choices=["run", "validate", "show"],
        help=(
            "run: execute the scenario; validate: schema-check it; "
            "show: print the validated spec as canonical JSON"
        ),
    )
    scenario.add_argument("file", help="scenario spec (.yaml/.yml/.json)")
    scenario.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help=(
            "dotted-path spec override, e.g. params.horizon=5, "
            "execution.workers=2 or params.grid=[3,3]; repeatable, "
            "applied in order (after --smoke)"
        ),
    )
    scenario.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "apply the spec's own smoke: override block first — the "
            "scenario's CI-scale shape"
        ),
    )

    store_cmd = sub.add_parser(
        "store", help="inspect or maintain a result store"
    )
    store_cmd.add_argument(
        "action",
        choices=["stats", "verify", "gc"],
        help=(
            "stats: entry/byte/hit counters; verify: checksum every "
            "entry; gc: remove corrupt entries and stale temp files"
        ),
    )
    store_cmd.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="store directory (default: $REPRO_STORE)",
    )

    worker = sub.add_parser(
        "worker",
        help="serve this host's cores to a --backend socket dispatcher",
    )
    worker.add_argument(
        "--serve",
        type=int,
        required=True,
        metavar="PORT",
        help="TCP port to listen on (0 picks a free port; the bound "
        "address is announced on stdout)",
    )
    worker.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; use 0.0.0.0 only "
        "on trusted networks — the protocol is unauthenticated pickle)",
    )
    worker.add_argument(
        "--max-sessions",
        type=_positive_int,
        default=None,
        help="exit after serving this many dispatcher sessions "
        "(default: serve forever)",
    )

    serve = sub.add_parser(
        "serve",
        help="serve sweep queries over HTTP from one long-lived store",
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port to listen on (default 0 picks a free port; the "
        "bound address is announced on stdout)",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; the API is "
        "unauthenticated — expose it only on trusted networks)",
    )
    serve.add_argument(
        "--workers",
        type=_positive_int,
        default=1,
        help="process-pool size for cache-miss tasks (default 1); the "
        "pool is kept alive across requests",
    )
    serve.add_argument(
        "--progress-interval",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="minimum seconds between per-task job progress events "
        "(default 0.2; 0 emits one per store access)",
    )
    _add_backend_args(serve)
    _add_store_args(serve)

    query = sub.add_parser(
        "query",
        help="run a scenario file against a 'serve' server",
    )
    query.add_argument(
        "file",
        nargs="?",
        default=None,
        help="scenario spec (.yaml/.yml/.json) — same files "
        "'scenario run' takes; optional with --stats",
    )
    query.add_argument(
        "--server",
        required=True,
        metavar="URL",
        help="server base URL, e.g. http://127.0.0.1:8123 (the "
        "address 'serve' announces)",
    )
    query.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="dotted-path spec override, exactly as in 'scenario run'; "
        "repeatable, applied in order (after --smoke)",
    )
    query.add_argument(
        "--smoke",
        action="store_true",
        help="apply the spec's own smoke: override block first",
    )
    query.add_argument(
        "--mode",
        choices=["sync", "poll", "stream"],
        default="sync",
        help="sync: one blocking request (default); poll: submit then "
        "poll the job endpoint; stream: follow NDJSON events live",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="overall client-side deadline (default 600)",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print the server's /stats JSON and exit (no FILE needed)",
    )

    life = sub.add_parser("lifetime", help="battery lifetime at a threshold")
    life.add_argument("--threshold", type=float, default=0.00178)
    life.add_argument("--workload", choices=["closed", "open"], default="closed")
    life.add_argument("--horizon", type=float, default=300.0)
    life.add_argument("--capacity-mah", type=float, default=1000.0)
    life.add_argument("--voltage", type=float, default=4.5)
    life.add_argument("--seed", type=int, default=2010)

    return parser


def _cmd_store(args: argparse.Namespace) -> int:
    from .runtime.store import ResultStore

    store = ResultStore(args.store)
    if args.action == "stats":
        for line in store.stats().lines():
            print(line)
        return 0
    if args.action == "verify":
        n_ok, corrupt = store.verify()
        print(
            f"verified: {n_ok} intact entr{'y' if n_ok == 1 else 'ies'}, "
            f"{len(corrupt)} corrupt"
        )
        for path in corrupt:
            print(f"  corrupt: {path}")
        return 1 if corrupt else 0
    files_removed, bytes_reclaimed = store.gc()
    print(
        f"gc: removed {files_removed} file(s), "
        f"reclaimed {bytes_reclaimed} bytes"
    )
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    from .runtime.remote import serve_worker

    served = serve_worker(
        args.serve, args.host, max_sessions=args.max_sessions
    )
    print(f"repro worker done: {served} chunk(s) served")
    return 0


def _cmd_serve(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from .serving import SweepService, make_server

    execution = execution_config_from_args(args, parser)
    service = SweepService(
        execution, progress_interval=args.progress_interval
    )
    server = make_server(service, host=args.host, port=args.port)
    host, port = server.server_address[:2]
    # The announcement format is shared with `worker --serve` and
    # parsed by scripts/ci_smoke.sh (worker_port): keep the trailing
    # "host:port" shape.
    print(f"repro serve listening on {host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.close()
    stats = service.stats()
    print(
        f"repro serve done: {stats['requests']['total']} request(s), "
        f"{stats['jobs']['total']} job(s)"
    )
    return 0


def _cmd_query(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from .scenarios import ScenarioError
    from .scenarios.spec import _parse_text
    from .serving import ServerError, fetch_stats, query_server

    try:
        if args.stats:
            stats = fetch_stats(args.server, timeout=args.timeout)
            print(json.dumps(stats, indent=2, sort_keys=True))
            return 0
        if not args.file:
            parser.error("query needs a scenario FILE (or --stats)")
        path = Path(args.file)
        try:
            data = _parse_text(path, path.read_text())
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        # The raw mapping travels as-is: the *server* owns validation,
        # so client and `scenario run` reject specs with one voice.
        request: dict[str, Any] = {"scenario": data}
        if args.override:
            request["overrides"] = list(args.override)
        if args.smoke:
            request["smoke"] = True
        snapshot = query_server(
            args.server, request, mode=args.mode, timeout=args.timeout
        )
    except (ScenarioError, ServerError, TimeoutError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = snapshot.get("result") or {}
    output = result.get("output")
    if output:
        # Verbatim, so stdout diffs clean against `scenario run`.
        print(output, end="", flush=True)
    if snapshot["state"] != "done":
        detail = snapshot.get("error") or snapshot["state"]
        print(
            f"error: job {snapshot['id']} {snapshot['state']}: {detail}",
            file=sys.stderr,
        )
        return 2
    exit_code = result.get("exit_code")
    return exit_code if isinstance(exit_code, int) else 0


def _cmd_list() -> int:
    print(
        "figures: 4 5 6 (state shares) 7 8 9 (energy) 14 15 (node sweeps)\n"
        "tables:  4 5 6 (delta energy) + validate (VIII-X)\n"
        "extras:  node-sweep, lifetime, network (sharded multi-node), "
        "scenario (declarative spec files)"
    )
    return 0


def _cmd_scenario(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from .scenarios import ScenarioError, load_scenario, run_scenario

    try:
        spec = load_scenario(
            args.file, overrides=args.override, smoke=args.smoke
        )
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.action == "validate":
        print(
            f"OK: {args.file}: scenario {spec.name!r} "
            f"(model {spec.model}, schema v{spec.version}) is valid"
        )
        return 0
    if args.action == "show":
        print(json.dumps(spec.to_dict(), indent=2, sort_keys=True))
        return 0
    try:
        return run_scenario(spec)
    except ValueError as exc:
        # e.g. a spec pairing engine=vectorized with a network model —
        # a user configuration error, not a crash.
        print(f"error: {exc}", file=sys.stderr)
        return 2


def run_fig(
    number: int,
    *,
    horizon: float | None = None,
    seed: int = 2010,
    rx: ResolvedExecution | None = None,
) -> int:
    """Regenerate one figure; prints the same rows the benchmarks persist.

    ``rx`` is the resolved execution configuration (default: serial,
    no store).  Called by both the ``fig`` subcommand and the scenario
    runner, so flag-spelled and scenario-spelled runs share one code
    path and print byte-identical output.
    """
    rx = rx if rx is not None else ExecutionConfig().resolve()
    if number in (14, 15):
        workload = "closed" if number == 14 else "open"
        horizon_s = horizon if horizon is not None else 900.0
        sweep = run_node_energy_sweep(
            NodeSweepConfig(workload=workload, horizon=horizon_s, seed=seed),
            exec_cfg=rx,
        )
        print(
            format_breakdown_sweep(
                sweep.thresholds,
                sweep.breakdowns,
                title=f"Figure {number} ({workload} model, {horizon_s:.0f} s)",
            )
        )
        t_opt, e_opt = sweep.optimum()
        print(
            format_optimum_summary(
                workload, t_opt, e_opt,
                sweep.savings_vs_immediate(), sweep.savings_vs_never(),
            )
        )
        _print_replication_ci(sweep)
        return 0
    pud = _FIG_TO_PUD[number]
    horizon_s = horizon if horizon is not None else 1000.0
    result = run_cpu_comparison(
        pud,
        CPUComparisonConfig(horizon=horizon_s, seed=seed),
        exec_cfg=rx,
    )
    if number <= 6:
        for est in ("simulation", "markov", "petri"):
            print(
                format_state_percentages(
                    result.thresholds,
                    result.fractions[est],
                    title=f"Figure {number} (PUD={pud:g}s) — {est}",
                )
            )
            print()
    else:
        print(
            format_energy_series(
                result.thresholds,
                {
                    "Simulation": result.energy_j["simulation"],
                    "Markov": result.energy_j["markov"],
                    "Petri Net": result.energy_j["petri"],
                },
                title=f"Figure {number} (PUD={pud:g}s)",
            )
        )
    _print_cpu_replication_ci(result)
    return 0


def _cmd_fig(args: argparse.Namespace, rx: ResolvedExecution) -> int:
    return run_fig(args.number, horizon=args.horizon, seed=args.seed, rx=rx)


def _format_pm(ci) -> str:
    """``± width`` for a usable interval, ``n/a`` for an R=1 one.

    A single replication has an infinite half-width; printing ``± inf``
    reads like a formatting bug, so say what it is instead.
    """
    if not math.isfinite(ci.half_width):
        n = ci.batches
        return f"n/a ({n} replication{'s' if n != 1 else ''})"
    return f"± {ci.half_width:.4f}"


def _convergence_tag(replications: int, converged: bool) -> str:
    """The per-point adaptive outcome, e.g. ``[ 4 reps, converged]``."""
    status = "converged" if converged else "hit max"
    return f"[{replications:3d} reps, {status}]"


def _print_adaptive_point_cis(sweep, metric_label: str) -> None:
    """Per-point adaptive outcome lines shared by every sweep command."""
    print(
        f"\nadaptive replications (ci-target {sweep.ci_target:g}, "
        f"{metric_label}, 95% t-interval):"
    )
    for threshold, ci, n, ok in zip(
        sweep.thresholds,
        sweep.energy_ci(),
        sweep.replication_counts,
        sweep.converged,
    ):
        print(
            f"  PDT {threshold:<12g} {ci.mean:10.4f} J "
            f"{_format_pm(ci)}  {_convergence_tag(n, ok)}"
        )


def _print_replication_ci(sweep) -> None:
    """Print per-point mean ± t-interval rows for a replicated sweep."""
    if sweep.ci_target is not None:
        _print_adaptive_point_cis(sweep, "total energy")
        return
    if sweep.replications <= 1:
        return
    print(
        f"\nacross {sweep.replications} replications "
        "(total energy, 95% t-interval):"
    )
    for threshold, ci in zip(sweep.thresholds, sweep.energy_ci()):
        print(
            f"  PDT {threshold:<12g} {ci.mean:10.4f} J "
            f"{_format_pm(ci)}"
        )


def _print_cpu_replication_ci(result) -> None:
    """Print per-point energy t-intervals for a replicated CPU sweep."""
    if result.replications <= 1 or result.energy_ci is None:
        return
    if result.ci_target is not None:
        print(
            f"\nadaptive replications (ci-target {result.ci_target:g}, "
            "energy, 95% t-interval; printed values above are means):"
        )
    else:
        print(
            f"\nacross {result.replications} replications "
            "(energy, 95% t-interval; printed values above are means):"
        )
    for est in ("simulation", "petri"):
        print(f"  {est}:")
        for i, (threshold, ci) in enumerate(
            zip(result.thresholds, result.energy_ci[est])
        ):
            tag = (
                "  "
                + _convergence_tag(
                    result.replication_counts[i], result.converged[i]
                )
                if result.ci_target is not None
                else ""
            )
            print(
                f"    PDT {threshold:<8g} {ci.mean:10.4f} J "
                f"{_format_pm(ci)}{tag}"
            )
    print("  markov: deterministic (no sampling variance)")


def run_table(
    number: int,
    *,
    horizon: float = 1000.0,
    seed: int = 2010,
    rx: ResolvedExecution | None = None,
) -> int:
    """Regenerate one delta table (IV-VI); see :func:`run_fig` on ``rx``."""
    rx = rx if rx is not None else ExecutionConfig().resolve()
    pud = _TABLE_TO_PUD[number]
    result = run_cpu_comparison(
        pud,
        CPUComparisonConfig(horizon=horizon, seed=seed),
        exec_cfg=rx,
    )
    print(
        format_delta_table(
            result.delta_energy(), pud, _TABLE_NUMERALS[number]
        )
    )
    _print_cpu_replication_ci(result)
    return 0


def _cmd_table(args: argparse.Namespace, rx: ResolvedExecution) -> int:
    return run_table(args.number, horizon=args.horizon, seed=args.seed, rx=rx)


def run_node_sweep(
    *,
    workload: str = "closed",
    horizon: float = 900.0,
    seed: int = 2010,
    rx: ResolvedExecution | None = None,
) -> int:
    """The Figs. 14/15 threshold sweep; see :func:`run_fig` on ``rx``."""
    rx = rx if rx is not None else ExecutionConfig().resolve()
    sweep = run_node_energy_sweep(
        NodeSweepConfig(workload=workload, horizon=horizon, seed=seed),
        exec_cfg=rx,
    )
    print(
        format_breakdown_sweep(
            sweep.thresholds,
            sweep.breakdowns,
            title=f"Node sweep ({workload}, {horizon:.0f} s)",
        )
    )
    t_opt, e_opt = sweep.optimum()
    print(
        format_optimum_summary(
            workload, t_opt, e_opt,
            sweep.savings_vs_immediate(), sweep.savings_vs_never(),
        )
    )
    _print_replication_ci(sweep)
    return 0


def _cmd_node_sweep(args: argparse.Namespace, rx: ResolvedExecution) -> int:
    return run_node_sweep(
        workload=args.workload, horizon=args.horizon, seed=args.seed, rx=rx
    )


def run_validate(
    *,
    seed: int = 2010,
    rx: ResolvedExecution | None = None,
) -> int:
    """The Section V validation tables; see :func:`run_fig` on ``rx``."""
    rx = rx if rx is not None else ExecutionConfig().resolve()
    result = run_simple_node_validation(
        ValidationConfig(seed=seed),
        exec_cfg=rx,
    )
    print(format_steady_state_table(result.petri.stage_probabilities))
    print()
    print(format_validation_table(result.table_rows()))
    n = result.replications
    if n > 1:
        ci = result.percent_difference_ci()
        line = (
            f"\npercent difference across {n} replications: "
            f"{ci.mean:.2f}% {_format_pm(ci)} (95% t-interval)"
        )
        if result.converged is not None:
            line += f"  {_convergence_tag(n, result.converged)}"
        print(line)
    else:
        print("\npercent difference uncertainty: n/a (1 replication)")
    return 0


def _cmd_validate(args: argparse.Namespace, rx: ResolvedExecution) -> int:
    return run_validate(seed=args.seed, rx=rx)


def run_network(
    *,
    topology: str = "line",
    nodes: int = 5,
    grid: tuple[int, int] = (10, 10),
    threshold: float = 0.01,
    sweep: bool = False,
    horizon: float = 300.0,
    base_rate: float = 0.5,
    seed: int = 2010,
    radius: float | None = None,
    fanout: int = 3,
    depth: int = 3,
    failure_rate: float = 0.0,
    duty_spread: float = 0.0,
    traffic: str = "poisson",
    burst_on: float = 5.0,
    burst_off: float = 15.0,
    burst_off_fraction: float = 0.0,
    rx: ResolvedExecution | None = None,
) -> int:
    """One network scenario or threshold sweep; see :func:`run_fig` on ``rx``.

    The scenario-diversity knobs compose freely: generated topologies
    (``geometric`` / ``cluster-tree`` with ``radius`` / ``fanout`` /
    ``depth``), node churn (``failure_rate`` / ``duty_spread``) and
    bursty arrivals (``traffic="bursty"`` with the ``burst_*`` shape).
    All default to the paper's static Poisson setup.
    """
    rx = rx if rx is not None else ExecutionConfig().resolve()
    width, height = grid
    if traffic not in ("poisson", "bursty"):
        raise ValueError(
            f"traffic must be 'poisson' or 'bursty', got {traffic!r}"
        )
    dynamics = ChurnModel(failure_rate=failure_rate, duty_spread=duty_spread)
    config = NetworkScenarioConfig(
        topology=make_topology(
            topology,
            nodes=nodes,
            width=width,
            height=height,
            radius=radius,
            fanout=fanout,
            depth=depth,
            seed=seed,
        ),
        horizon=horizon,
        base_rate=base_rate,
        seed=seed,
        params=NodeParameters(power_down_threshold=threshold),
        dynamics=dynamics if dynamics.is_active() else None,
        traffic=(
            MMPPTraffic(
                burst_on_s=burst_on,
                burst_off_s=burst_off,
                off_fraction=burst_off_fraction,
            )
            if traffic == "bursty"
            else None
        ),
    )
    run_info = (
        f"(workers={rx.workers}, shards={rx.shards}, "
        f"{rx.shard_strategy})"
    )
    if sweep:
        sweep_result = run_network_lifetime_sweep(config, exec_cfg=rx)
        print(
            format_table(
                [
                    "PDT (s)",
                    "network energy (J)",
                    "network lifetime (d)",
                    "hotspot node",
                    "imbalance (x)",
                ],
                sweep_result.rows(),
                title=(
                    f"Network lifetime sweep: {sweep_result.topology} "
                    f"{run_info}"
                ),
            )
        )
        if sweep_result.ci_target is not None:
            _print_adaptive_point_cis(sweep_result, "network energy")
        best = sweep_result.best()
        print(
            f"\nbest threshold for the network: "
            f"{best.power_down_threshold:g} s -> "
            f"{best.network_lifetime_days:.2f} days"
        )
        return 0
    result = run_network_scenario(config, exec_cfg=rx)
    print(f"network scenario {run_info}")
    if rx.ci_target is not None:
        print(format_network_summary(result.result))
        energy_ci = result.energy_ci()
        lifetime_ci = result.lifetime_ci()
        print(
            f"adaptive replication   : "
            f"{_convergence_tag(result.replications, result.converged)} "
            f"at ci-target {result.ci_target:g}\n"
            f"energy across reps     : {energy_ci.mean:.4f} J "
            f"{_format_pm(energy_ci)}\n"
            f"lifetime across reps   : {lifetime_ci.mean:.2f} days "
            f"{_format_pm(lifetime_ci)}"
        )
        return 0
    print(format_network_summary(result))
    return 0


def _cmd_network(args: argparse.Namespace, rx: ResolvedExecution) -> int:
    return run_network(
        topology=args.topology,
        nodes=args.nodes,
        grid=args.grid,
        threshold=args.threshold,
        sweep=args.sweep,
        horizon=args.horizon,
        base_rate=args.base_rate,
        seed=args.seed,
        radius=args.radius,
        fanout=args.fanout,
        depth=args.depth,
        failure_rate=args.failure_rate,
        duty_spread=args.duty_spread,
        traffic=args.traffic,
        burst_on=args.burst_on,
        burst_off=args.burst_off,
        burst_off_fraction=args.burst_off_fraction,
        rx=rx,
    )


def run_topology_describe(
    *,
    topology: str = "line",
    nodes: int = 5,
    grid: tuple[int, int] = (10, 10),
    radius: float | None = None,
    fanout: int = 3,
    depth: int = 3,
    base_rate: float = 0.5,
    seed: int = 2010,
) -> int:
    """Print a deterministic structural report for a topology spec.

    No simulation runs: the report (node count, depth histogram,
    per-hop relay load, hotspot) is a pure function of the topology
    arguments, which CI pins by diffing two invocations.
    """
    width, height = grid
    topo = make_topology(
        topology,
        nodes=nodes,
        width=width,
        height=height,
        radius=radius,
        fanout=fanout,
        depth=depth,
        seed=seed,
    )
    print(describe_topology(topo, base_rate))
    return 0


def _cmd_topology(args: argparse.Namespace) -> int:
    return run_topology_describe(
        topology=args.topology,
        nodes=args.nodes,
        grid=args.grid,
        radius=args.radius,
        fanout=args.fanout,
        depth=args.depth,
        base_rate=args.base_rate,
        seed=args.seed,
    )


def _cmd_lifetime(args: argparse.Namespace) -> int:
    params = NodeParameters(power_down_threshold=args.threshold)
    result = WSNNodeModel(params, args.workload).simulate(
        args.horizon, seed=args.seed
    )
    mean_power_mw = result.total_energy_j / result.duration * 1000.0
    estimator = NodeLifetimeEstimator(
        LinearBattery(args.capacity_mah, args.voltage, usable_fraction=0.85)
    )
    days = estimator.lifetime_days(mean_power_mw)
    print(
        f"threshold {args.threshold:g} s ({args.workload}): "
        f"mean power {mean_power_mw:.3f} mW -> "
        f"{days:.1f} days on {args.capacity_mah:g} mAh @ {args.voltage:g} V"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "worker" and not 0 <= args.serve <= 65535:
        parser.error(f"--serve port must be in 0..65535, got {args.serve}")
    if args.command == "serve" and not 0 <= args.port <= 65535:
        parser.error(f"--port must be in 0..65535, got {args.port}")
    if args.command == "store":
        args.store = args.store or os.environ.get("REPRO_STORE")
        if not args.store:
            parser.error("store requires --store DIR (or $REPRO_STORE)")
        return _cmd_store(args)
    if args.command == "worker":
        return _cmd_worker(args)
    if args.command == "list":
        return _cmd_list()
    if args.command == "lifetime":
        return _cmd_lifetime(args)
    if args.command == "topology":
        return _cmd_topology(args)
    if args.command == "scenario":
        return _cmd_scenario(args, parser)
    if args.command == "serve":
        return _cmd_serve(args, parser)
    if args.command == "query":
        return _cmd_query(args, parser)
    run_commands = {
        "fig": _cmd_fig,
        "table": _cmd_table,
        "node-sweep": _cmd_node_sweep,
        "validate": _cmd_validate,
        "network": _cmd_network,
    }
    if args.command in run_commands:
        # One ExecutionConfig per invocation, resolved once, so store
        # hit/miss counters accumulate across the run and persist
        # (flush) for `store stats`.
        rx = execution_config_from_args(args, parser).resolve()
        try:
            return run_commands[args.command](args, rx)
        finally:
            if rx.store is not None:
                rx.store.flush_counters()
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
