"""Human-readable topology reports (the ``topology describe`` CLI).

Everything printed here is a deterministic function of the topology
object (and the optional base rate): node count, routing-tree depth
histogram, and the per-hop relay-load profile that shows where the
energy hole will open up.  CI diffs two invocations against each other
to pin that determinism.
"""

from __future__ import annotations

from collections import Counter

from ..models.network import NetworkTopology
from .routing import depths_from_parents

__all__ = ["describe_topology"]


def describe_topology(topology: NetworkTopology, base_rate: float = 1.0) -> str:
    """Multi-line structural report for any convergecast topology."""
    parents = topology.tree_parents()
    depths = depths_from_parents(parents)
    rates = topology.effective_rates(base_rate)
    n = topology.n_nodes

    lines = [
        f"topology        : {topology.describe()}",
        f"nodes           : {n} battery-powered + 1 mains-powered sink",
        f"max depth       : {max(depths)} hops",
        "depth histogram :",
    ]
    histogram = Counter(depths)
    for hop in sorted(histogram):
        label = f"hop {hop}" if hop > 0 else "cut off"
        lines.append(f"  {label:<8}: {histogram[hop]:>6} nodes")
    lines.append(f"per-hop relay load (x base rate {base_rate:g}/s):")
    for hop in sorted(h for h in histogram if h > 0):
        at_hop = [rates[i] for i in range(n) if depths[i] == hop]
        mean = sum(at_hop) / len(at_hop)
        lines.append(
            f"  hop {hop:<4}: mean {mean:10.3f}/s  max {max(at_hop):10.3f}/s"
        )
    hotspot = max(range(n), key=lambda i: (rates[i], -i))
    lines.append(
        f"hotspot         : node {hotspot + 1} "
        f"(hop {depths[hotspot]}, {rates[hotspot]:.3f}/s effective)"
    )
    return "\n".join(lines)
