"""Convergecast-tree helpers shared by generators and dynamics.

Every topology in this package (and the hand-built ones in
:mod:`repro.models.network`) routes traffic along a *convergecast
tree*: each node has exactly one parent on its path to the sink.  The
tree is the whole routing state, so it is represented as a flat parent
array — ``parents[i]`` is the 0-based index of node ``i``'s parent,
:data:`SINK` for nodes that talk to the sink directly, and
:data:`UNREACHABLE` for nodes cut off from the sink (only possible
after churn removes their relays).

All helpers here are pure functions of that array; they are the single
implementation used for relay-load assignment, depth histograms and
churn rewiring, which is what keeps generated topologies, the
hand-built ones and the dynamics layer numerically consistent with
each other.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = [
    "SINK",
    "UNREACHABLE",
    "validate_parents",
    "depths_from_parents",
    "accumulate_loads",
    "climb_rewire",
    "geometric_parents",
]

#: Parent value for nodes linked directly to the sink.
SINK = -1

#: Parent value for nodes with no live path to the sink.
UNREACHABLE = -2


def validate_parents(parents: Sequence[int]) -> None:
    """Check a parent array encodes a forest rooted at the sink.

    Rejects out-of-range parents, self-loops and cycles.  Nodes marked
    :data:`UNREACHABLE` are allowed (they are islands, not tree
    members).
    """
    n = len(parents)
    for i, p in enumerate(parents):
        if p == i:
            raise ValueError(f"node {i} is its own parent")
        if p not in (SINK, UNREACHABLE) and not 0 <= p < n:
            raise ValueError(f"node {i} has out-of-range parent {p}")
    depths_from_parents(parents)  # raises on cycles


def depths_from_parents(parents: Sequence[int]) -> list[int]:
    """Hop count to the sink per node (1 = sink-adjacent).

    :data:`UNREACHABLE` nodes get depth 0; a cycle (which would mean a
    corrupt routing tree) raises ``ValueError``.
    """
    n = len(parents)
    depths = [0] * n
    for start in range(n):
        hops = 0
        node = start
        while node not in (SINK, UNREACHABLE):
            hops += 1
            if hops > n:
                raise ValueError(f"cycle in parent array involving node {start}")
            node = parents[node]
        depths[start] = hops if node == SINK else 0
    return depths


def accumulate_loads(
    parents: Sequence[int], own: Sequence[float]
) -> list[float]:
    """Per-node relayed load: subtree sum of ``own`` rates.

    Node ``i`` handles its own event rate plus everything its subtree
    generates — the convergecast traffic model behind
    :meth:`~repro.models.network.NetworkTopology.effective_rates`.
    With ``own = [1, 1, ...]`` the result is the subtree *size*.
    :data:`UNREACHABLE` nodes keep their own rate only and contribute
    nothing downstream (their packets have nowhere to go).
    """
    if len(own) != len(parents):
        raise ValueError(
            f"own rates ({len(own)}) and parents ({len(parents)}) differ in length"
        )
    depths = depths_from_parents(parents)
    loads = [float(r) for r in own]
    # Children must flush before their parents: walk deepest-first.
    order = sorted(range(len(parents)), key=lambda i: depths[i], reverse=True)
    for i in order:
        p = parents[i]
        if p >= 0 and depths[i] > 0:
            loads[p] += loads[i]
    return loads


def climb_rewire(
    parents: Sequence[int], alive: Sequence[bool]
) -> tuple[int, ...]:
    """Re-parent survivors to their nearest live *ancestor*.

    The default battery-death rewiring policy: when a relay dies, each
    orphaned node climbs its original parent chain until it finds a
    live ancestor (ultimately the mains-powered sink, so survivors are
    always reconnected).  This preserves the deployment's routing
    structure — geometry-aware topologies override it with a true
    recompute (see
    :meth:`~repro.topology.generators.RandomGeometricTopology.rewire`).

    Dead nodes are marked :data:`UNREACHABLE` in the returned array.
    """
    if len(alive) != len(parents):
        raise ValueError(
            f"alive ({len(alive)}) and parents ({len(parents)}) differ in length"
        )
    out = []
    for i, p in enumerate(parents):
        if not alive[i]:
            out.append(UNREACHABLE)
            continue
        hops = 0
        while p not in (SINK, UNREACHABLE) and not alive[p]:
            hops += 1
            if hops > len(parents):
                raise ValueError(f"cycle in parent array involving node {i}")
            p = parents[p]
        out.append(p)
    return tuple(out)


def geometric_parents(
    positions: np.ndarray,
    sink: np.ndarray,
    radius: float,
    alive: Sequence[bool] | None = None,
) -> tuple[int, ...]:
    """Shortest-path-to-sink parents over a unit-disk graph.

    Runs a breadth-first search from the sink across all ``alive``
    nodes whose pairwise (or node–sink) distance is within ``radius``.
    Each reached node's parent is its *nearest* neighbour one hop
    closer to the sink — "nearest live relay" — with the node index as
    the final tie-break, so the tree is a deterministic function of
    ``(positions, radius, alive)``.  Nodes the search cannot reach are
    :data:`UNREACHABLE`; dead nodes are too.
    """
    n = len(positions)
    alive_mask = (
        np.ones(n, dtype=bool) if alive is None else np.asarray(alive, dtype=bool)
    )
    delta = positions[:, None, :] - positions[None, :, :]
    dist = np.sqrt((delta**2).sum(axis=2))
    sink_dist = np.sqrt(((positions - sink) ** 2).sum(axis=1))
    linked = dist <= radius
    np.fill_diagonal(linked, False)
    linked &= alive_mask[:, None] & alive_mask[None, :]

    parents = [UNREACHABLE] * n
    unvisited = alive_mask.copy()
    current = np.nonzero(alive_mask & (sink_dist <= radius))[0]
    for i in current:
        parents[int(i)] = SINK
    unvisited[current] = False
    while current.size:
        cand_rows = linked[:, current]  # (n, |frontier|)
        reached = np.nonzero(cand_rows.any(axis=1) & unvisited)[0]
        for i in reached:
            js = current[cand_rows[i]]
            best = js[np.lexsort((js, dist[i, js]))[0]]
            parents[int(i)] = int(best)
        unvisited[reached] = False
        current = reached
    return tuple(parents)
