"""Generated topologies: random geometric deployments and cluster trees.

The paper's network section hand-builds three topologies (line, star,
grid).  This module generates the two families that cover realistic
deployments at 1000+ node scale:

* :class:`RandomGeometricTopology` — N nodes dropped uniformly in the
  unit square with a mains-powered sink at the centre, linked when
  within a connectivity ``radius``, routed along the
  shortest-path-to-sink tree (ties broken toward the nearest relay).
  The layout is drawn from a *dedicated* tagged
  :class:`~numpy.random.SeedSequence` sub-stream of the topology seed,
  so it can never collide with (or perturb) the per-node simulation
  streams derived from the same run seed.
* :class:`ClusterTreeTopology` — the classic cluster-head hierarchy: a
  complete ``fanout``-ary tree of ``depth`` levels below the sink,
  where every interior node is a cluster head relaying its subtree.

Both are frozen dataclasses: seed-deterministic (equal construction
arguments give bit-identical adjacency and rates), cheap to hash into
result-store keys, and safe to share across shards.

Connectivity policy (documented contract)
-----------------------------------------
A random geometric graph at a tight radius can come out disconnected.
:class:`RandomGeometricTopology` guarantees a sink-connected result
with a *retry-or-grow* policy: it draws up to :data:`LAYOUT_RETRIES`
independent layouts at the requested radius (each from its own tagged
sub-stream, so the sequence of attempts is itself deterministic); if
none connects, it keeps the first layout and grows the radius by
:data:`RADIUS_GROWTH` per step until every node reaches the sink.
Growth terminates because a radius covering the centre sink from the
far corner (``√2/2``) connects everything directly.  The radius that
actually shipped is exposed as :attr:`effective_radius`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from ..models.network import NetworkTopology
from ..runtime.seeding import substream_sequence
from .routing import (
    SINK,
    UNREACHABLE,
    accumulate_loads,
    geometric_parents,
)

__all__ = [
    "LAYOUT_STREAM",
    "LAYOUT_RETRIES",
    "RADIUS_GROWTH",
    "RandomGeometricTopology",
    "ClusterTreeTopology",
    "auto_radius",
]

#: Tag of the topology-layout seed sub-stream (see
#: :func:`repro.runtime.seeding.substream_sequence`).
LAYOUT_STREAM = 0x746F706F  # "topo"

#: Fresh layouts attempted at the requested radius before growing it.
LAYOUT_RETRIES = 3

#: Radius growth factor per step once retries are exhausted.
RADIUS_GROWTH = 1.3


def auto_radius(n_nodes: int) -> float:
    """Default connectivity radius for ``n_nodes`` in the unit square.

    The classic random-geometric-graph connectivity threshold scales as
    ``sqrt(log n / (π n))``; the factor 2 under the root keeps the
    graph connected with comfortable probability at every practical
    ``n``, while still thinning toward the theoretical optimum as the
    deployment densifies (≈ 0.066 at n = 1000).
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    return math.sqrt(2.0 * math.log(n_nodes + 1) / (math.pi * n_nodes))


@dataclass(frozen=True)
class _GeometricLayout:
    """Resolved deployment: positions plus the connected routing tree."""

    positions: np.ndarray
    sink: np.ndarray
    radius: float
    parents: tuple[int, ...]
    attempt: int


@dataclass(frozen=True)
class RandomGeometricTopology(NetworkTopology):
    """Uniform random deployment routed shortest-path to a centre sink.

    Parameters
    ----------
    n_nodes:
        Battery-powered nodes dropped in the unit square (the sink at
        ``(0.5, 0.5)`` is mains-powered and not counted).
    radius:
        Connectivity radius; ``None`` uses :func:`auto_radius`.  The
        retry-or-grow policy (module docstring) may ship a larger
        :attr:`effective_radius`.
    seed:
        Layout seed.  Positions come from the tagged
        ``(seed, LAYOUT_STREAM, attempt)`` sub-stream — independent of
        every per-node simulation stream derived from the run seed.
    """

    n_nodes: int
    radius: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.radius is not None and self.radius <= 0:
            raise ValueError(f"radius must be > 0, got {self.radius}")
        if self.seed < 0:
            raise ValueError("seed must be >= 0")

    def _draw_positions(self, attempt: int) -> np.ndarray:
        rng = np.random.default_rng(
            substream_sequence(self.seed, LAYOUT_STREAM, attempt)
        )
        return rng.random((self.n_nodes, 2))

    @cached_property
    def _layout(self) -> _GeometricLayout:
        """Deterministic retry-or-grow resolution of the deployment."""
        sink = np.array([0.5, 0.5])
        base_radius = (
            self.radius if self.radius is not None else auto_radius(self.n_nodes)
        )
        first: np.ndarray | None = None
        for attempt in range(LAYOUT_RETRIES):
            positions = self._draw_positions(attempt)
            if first is None:
                first = positions
            parents = geometric_parents(positions, sink, base_radius)
            if UNREACHABLE not in parents:
                return _GeometricLayout(
                    positions, sink, base_radius, parents, attempt
                )
        # Keep the first deployment, grow the radius until connected.
        assert first is not None
        radius = base_radius
        while True:
            radius *= RADIUS_GROWTH
            parents = geometric_parents(first, sink, radius)
            if UNREACHABLE not in parents:
                return _GeometricLayout(first, sink, radius, parents, 0)

    @property
    def positions(self) -> np.ndarray:
        """Node coordinates in the unit square (row per node)."""
        return self._layout.positions

    @property
    def effective_radius(self) -> float:
        """The radius actually used (>= ``radius`` if growth kicked in)."""
        return self._layout.radius

    def tree_parents(self) -> tuple[int, ...]:
        return self._layout.parents

    def rewire(self, alive) -> tuple[int, ...]:
        """True geometric rewiring: BFS over the surviving disk graph.

        Unlike the generic climb-the-ancestors default, orphaned nodes
        re-parent to their *nearest live relay* within radio range —
        survivors with no live path to the sink become
        :data:`~repro.topology.routing.UNREACHABLE` and keep only
        their own sensing load.
        """
        lay = self._layout
        return geometric_parents(lay.positions, lay.sink, lay.radius, alive)

    def effective_rates(self, base_rate: float) -> list[float]:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        return accumulate_loads(
            self._layout.parents, [base_rate] * self.n_nodes
        )

    def describe(self) -> str:
        return (
            f"random geometric deployment of {self.n_nodes} nodes "
            f"(radius {self.effective_radius:.4f}, centre sink, "
            f"seed {self.seed})"
        )


@dataclass(frozen=True)
class ClusterTreeTopology(NetworkTopology):
    """Complete ``fanout``-ary cluster-head tree of ``depth`` levels.

    Level 1 holds ``fanout`` cluster heads adjacent to the sink, level
    ``k`` holds ``fanout**k`` nodes; ``n_nodes = Σ fanout**k``.  Nodes
    are indexed breadth-first (level by level), so node 1 is the first
    sink-adjacent head and the deepest leaves come last.  Every
    interior node relays its complete subtree — the hierarchical
    aggregation structure of cluster-based WSN protocols.
    """

    fanout: int
    depth: int

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise ValueError(f"fanout must be >= 1, got {self.fanout}")
        if self.depth < 1:
            raise ValueError(f"depth must be >= 1, got {self.depth}")

    @property
    def n_nodes(self) -> int:  # type: ignore[override]
        return sum(self.fanout**k for k in range(1, self.depth + 1))

    def tree_parents(self) -> tuple[int, ...]:
        parents: list[int] = [SINK] * self.fanout
        level_start = 0
        level_size = self.fanout
        for _ in range(2, self.depth + 1):
            next_start = level_start + level_size
            next_size = level_size * self.fanout
            parents.extend(
                level_start + j // self.fanout for j in range(next_size)
            )
            level_start, level_size = next_start, next_size
        return tuple(parents)

    def effective_rates(self, base_rate: float) -> list[float]:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        return accumulate_loads(self.tree_parents(), [base_rate] * self.n_nodes)

    def describe(self) -> str:
        return (
            f"cluster tree of {self.n_nodes} nodes "
            f"(fanout {self.fanout}, depth {self.depth})"
        )
