"""Network dynamics: node churn, rewiring and duty-cycle variation.

The paper's network runs assume immortal nodes at identical duty
cycles.  :class:`ChurnModel` lifts both assumptions while keeping the
repo's bit-identity contract intact, by moving every random decision
into the *parent* process before any work is distributed:

1. per-node duty-cycle factors and failure times are drawn from
   dedicated tagged :class:`~numpy.random.SeedSequence` sub-streams of
   the run seed (:data:`DUTY_STREAM`, :data:`FAILURE_STREAM`);
2. the sorted failure times split the horizon into *epochs*; within an
   epoch the alive set is constant, so the routing tree — recomputed
   via :meth:`~repro.models.network.NetworkTopology.rewire` at each
   epoch boundary — and every node's effective rate are too;
3. the resulting :class:`ChurnSchedule` hands each node an independent
   list of ``(rate, duration, seed)`` *segments*.  A node's segments
   are simulated back-to-back by one worker task, so the node set
   still shards exactly as before and
   :meth:`~repro.models.network.NetworkResult.merge` stays exact:
   nothing a shard computes depends on any other shard.

The schedule is a pure function of ``(topology, base_rate, horizon,
seed)`` — any worker count, shard plan or backend sees the same one.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from ..runtime.seeding import substream_seed, substream_sequence
from .routing import UNREACHABLE, accumulate_loads

__all__ = [
    "DUTY_STREAM",
    "FAILURE_STREAM",
    "SEGMENT_STREAM",
    "ChurnModel",
    "ChurnEpoch",
    "ChurnSchedule",
    "ChurnReport",
    "NodeSegment",
]

#: Tag of the per-node duty-cycle factor sub-stream.
DUTY_STREAM = 0x64757479  # "duty"

#: Tag of the per-node failure-time sub-stream.
FAILURE_STREAM = 0x6661696C  # "fail"

#: Tag of the per-(node, epoch) simulation-seed sub-stream.
SEGMENT_STREAM = 0x73656773  # "segs"


@dataclass(frozen=True)
class NodeSegment:
    """One alive stretch of one node: simulate ``duration`` at ``rate``."""

    start_s: float
    duration_s: float
    rate: float
    seed: int


@dataclass(frozen=True)
class ChurnEpoch:
    """A maximal interval over which the alive set is constant."""

    start_s: float
    end_s: float
    alive: tuple[bool, ...]
    parents: tuple[int, ...]
    #: Effective rate per node; ``None`` for dead nodes.
    rates: tuple[float | None, ...]

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass(frozen=True)
class ChurnReport:
    """What the schedule did — attached to the merged network result."""

    failures: int
    survivors: int
    reparented: int
    unreachable: int


@dataclass(frozen=True)
class ChurnModel:
    """Deterministic churn configuration for a network run.

    Parameters
    ----------
    failure_rate:
        Per-node exponential failure rate (1/s); each node draws one
        failure time, and those landing inside the horizon kill it.
        ``0`` disables failures.
    duty_spread:
        Half-width of the uniform per-node duty-cycle factor: node
        ``i`` senses at ``base_rate × (1 + duty_spread · u_i)`` with
        ``u_i ~ U(-1, 1)``.  ``0`` disables variation.
    max_failures:
        Cap on scheduled failures (earliest-first), bounding the epoch
        count — and hence the per-node segment count — on big
        deployments.

    A model with both knobs at zero is *inert*:
    :meth:`is_active` is false and the network layer falls back to the
    exact legacy single-segment path, so existing runs and result-store
    keys are untouched.
    """

    failure_rate: float = 0.0
    duty_spread: float = 0.0
    max_failures: int = 32

    def __post_init__(self) -> None:
        if self.failure_rate < 0:
            raise ValueError(f"failure_rate must be >= 0, got {self.failure_rate}")
        if not 0 <= self.duty_spread < 1:
            raise ValueError(
                f"duty_spread must be in [0, 1), got {self.duty_spread}"
            )
        if self.max_failures < 0:
            raise ValueError(f"max_failures must be >= 0, got {self.max_failures}")

    def is_active(self) -> bool:
        """Whether this model changes anything at all."""
        return self.failure_rate > 0 or self.duty_spread > 0

    def schedule(
        self,
        topology,
        base_rate: float,
        horizon: float,
        seed: int | None,
    ) -> ChurnSchedule:
        """Precompute the full event schedule for one network run.

        Pure function of its arguments: the duty factors and failure
        times come from tagged sub-streams of ``seed``, the epochs from
        sorting the failures, and the per-epoch trees from
        ``topology.rewire`` — no randomness is left for the workers.
        """
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        n = topology.n_nodes

        if self.duty_spread > 0:
            rng = np.random.default_rng(substream_sequence(seed, DUTY_STREAM))
            duty = 1.0 + self.duty_spread * (2.0 * rng.random(n) - 1.0)
        else:
            duty = np.ones(n)
        own = [float(base_rate * d) for d in duty]

        failures: list[tuple[float, int]] = []
        if self.failure_rate > 0 and self.max_failures > 0:
            rng = np.random.default_rng(substream_sequence(seed, FAILURE_STREAM))
            times = rng.exponential(1.0 / self.failure_rate, n)
            failures = sorted(
                (float(t), i) for i, t in enumerate(times) if t < horizon
            )[: self.max_failures]

        epochs: list[ChurnEpoch] = []
        alive = [True] * n
        boundaries = [0.0, *(t for t, _ in failures), horizon]
        baseline = tuple(topology.tree_parents())
        parents = baseline
        for k in range(len(boundaries) - 1):
            if k > 0:
                alive[failures[k - 1][1]] = False
                parents = tuple(topology.rewire(alive))
            rates = _epoch_rates(parents, own, alive)
            epochs.append(
                ChurnEpoch(
                    start_s=boundaries[k],
                    end_s=boundaries[k + 1],
                    alive=tuple(alive),
                    parents=parents,
                    rates=rates,
                )
            )
        return ChurnSchedule(
            horizon_s=horizon,
            base_rate=base_rate,
            duty=tuple(float(d) for d in duty),
            failures=tuple(failures),
            epochs=tuple(epochs),
            baseline_parents=baseline,
        )


def _epoch_rates(
    parents: tuple[int, ...],
    own: Sequence[float],
    alive: Sequence[bool],
) -> tuple[float | None, ...]:
    """Effective rates on one epoch's tree (``None`` for the dead)."""
    loads = accumulate_loads(parents, own)
    return tuple(
        loads[i] if alive[i] else None for i in range(len(parents))
    )


@dataclass(frozen=True)
class ChurnSchedule:
    """The precomputed, shard-independent outcome of a churn draw."""

    horizon_s: float
    base_rate: float
    duty: tuple[float, ...]
    failures: tuple[tuple[float, int], ...]
    epochs: tuple[ChurnEpoch, ...]
    baseline_parents: tuple[int, ...]

    @property
    def n_nodes(self) -> int:
        return len(self.duty)

    def node_segments(self, node_index: int, node_seed: int) -> tuple[NodeSegment, ...]:
        """The alive ``(rate, duration, seed)`` stretches of one node.

        Each segment's simulation seed is a tagged sub-stream of the
        node's own seed keyed by the epoch index, so it depends only on
        ``(node seed, epoch)`` — never on which shard or worker runs
        it.  Segments end when the node dies; they cover ``[0, t_fail)``
        or the whole horizon for survivors.
        """
        out = []
        for k, epoch in enumerate(self.epochs):
            rate = epoch.rates[node_index]
            if rate is None or epoch.duration_s <= 0:
                continue
            out.append(
                NodeSegment(
                    start_s=epoch.start_s,
                    duration_s=epoch.duration_s,
                    rate=rate,
                    seed=substream_seed(node_seed, SEGMENT_STREAM, k),
                )
            )
        return tuple(out)

    def failure_time(self, node_index: int) -> float | None:
        """When the node dies, or ``None`` if it survives the run."""
        for t, i in self.failures:
            if i == node_index:
                return t
        return None

    def report(self) -> ChurnReport:
        """Aggregate churn statistics for result summaries."""
        n = self.n_nodes
        reparented: set[int] = set()
        unreachable: set[int] = set()
        for epoch in self.epochs:
            for i in range(n):
                if not epoch.alive[i]:
                    continue
                if epoch.parents[i] == UNREACHABLE:
                    unreachable.add(i)
                elif epoch.parents[i] != self.baseline_parents[i]:
                    reparented.add(i)
        return ChurnReport(
            failures=len(self.failures),
            survivors=n - len(self.failures),
            reparented=len(reparented),
            unreachable=len(unreachable),
        )
