"""``repro.topology`` — the scenario-diversity subsystem.

The paper evaluates its node model on three hand-built topologies with
immortal nodes and Poisson arrivals.  This package opens all three
axes while preserving the repo's bit-identity contract (every
``workers`` / ``shards`` / backend combination reproduces the serial
run exactly):

* :mod:`repro.topology.generators` — seed-deterministic generated
  deployments: :class:`RandomGeometricTopology` (unit-square random
  geometric graph, shortest-path-to-sink routing, retry-or-grow
  connectivity guarantee) and :class:`ClusterTreeTopology`
  (fanout/depth cluster-head hierarchy), both 1000+ node scale;
* :mod:`repro.topology.dynamics` — :class:`ChurnModel` node churn:
  failures, battery-death rewiring to the nearest live relay, and
  per-node duty-cycle variation, all precomputed in the parent as a
  :class:`ChurnSchedule` of per-node segments so shards stay
  independent and :meth:`~repro.models.network.NetworkResult.merge`
  stays exact;
* :mod:`repro.topology.traffic` — :class:`MMPPTraffic` bursty (on-off
  / Markov-modulated Poisson) arrivals that preserve each node's mean
  offered load, isolating the effect of arrival correlation;
* :mod:`repro.topology.routing` — the shared convergecast parent-array
  helpers (depths, subtree loads, rewiring) all of the above build on;
* :mod:`repro.topology.describe` — deterministic structural reports
  behind ``repro.cli topology describe``.

Everything surfaces through the existing seams: new ``params`` keys in
scenario schema v2, flags on the ``network`` CLI, and untouched
sharding/store/serving layers.
"""

from .describe import describe_topology
from .dynamics import (
    ChurnEpoch,
    ChurnModel,
    ChurnReport,
    ChurnSchedule,
    NodeSegment,
)
from .generators import (
    ClusterTreeTopology,
    RandomGeometricTopology,
    auto_radius,
)
from .routing import (
    SINK,
    UNREACHABLE,
    accumulate_loads,
    climb_rewire,
    depths_from_parents,
    validate_parents,
)
from .traffic import MMPPTraffic

__all__ = [
    "RandomGeometricTopology",
    "ClusterTreeTopology",
    "auto_radius",
    "ChurnModel",
    "ChurnSchedule",
    "ChurnEpoch",
    "ChurnReport",
    "NodeSegment",
    "MMPPTraffic",
    "describe_topology",
    "SINK",
    "UNREACHABLE",
    "accumulate_loads",
    "climb_rewire",
    "depths_from_parents",
    "validate_parents",
]
