"""Bursty arrival configuration: mean-rate-preserving MMPP traffic.

:class:`MMPPTraffic` is the *scenario-level* knob: it describes the
burst structure (dwell times, quiet-state fraction) independently of
any particular node's rate, and manufactures a per-node
:class:`~repro.models.workload.MMPPWorkload` whose **long-run mean
rate equals the node's topology-assigned effective rate**.  That
mean-matching is the whole point — a bursty run answers "same offered
load, different arrival correlation", so any lifetime shift against
the Poisson baseline is attributable to burstiness alone.

With ``off_fraction = 0`` (the default) the source is the classic
on-off / interrupted Poisson process: silent between bursts.  A
positive ``off_fraction`` keeps a trickle flowing in the quiet state
(``rate_off = off_fraction × rate_on``), the general 2-state MMPP.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.workload import MMPPWorkload

__all__ = ["MMPPTraffic"]


@dataclass(frozen=True)
class MMPPTraffic:
    """Burst shape for the network's arrival streams.

    Parameters
    ----------
    burst_on_s:
        Mean burst (ON state) duration, seconds.
    burst_off_s:
        Mean quiet (OFF state) duration, seconds.
    off_fraction:
        Quiet-state emission rate as a fraction of the burst rate, in
        ``[0, 1)``; ``0`` means fully silent between bursts.
    """

    burst_on_s: float = 5.0
    burst_off_s: float = 15.0
    off_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.burst_on_s <= 0 or self.burst_off_s <= 0:
            raise ValueError(
                "burst dwell times must be > 0, got "
                f"on={self.burst_on_s}, off={self.burst_off_s}"
            )
        if not 0 <= self.off_fraction < 1:
            raise ValueError(
                f"off_fraction must be in [0, 1), got {self.off_fraction}"
            )

    @property
    def on_probability(self) -> float:
        """Long-run fraction of time spent in the burst state."""
        return self.burst_on_s / (self.burst_on_s + self.burst_off_s)

    def rates(self, mean_rate: float) -> tuple[float, float]:
        """``(rate_on, rate_off)`` whose long-run mean is ``mean_rate``.

        Solves ``p·rate_on + (1-p)·rate_off = mean_rate`` with
        ``rate_off = off_fraction · rate_on`` and ``p`` the ON-state
        probability, so the bursty stream offers exactly the load the
        topology assigned.
        """
        if mean_rate <= 0:
            raise ValueError(f"mean_rate must be > 0, got {mean_rate}")
        p = self.on_probability
        rate_on = mean_rate / (p + (1.0 - p) * self.off_fraction)
        return rate_on, self.off_fraction * rate_on

    def workload(self, mean_rate: float) -> MMPPWorkload:
        """A node workload generator offering ``mean_rate`` on average."""
        rate_on, rate_off = self.rates(mean_rate)
        return MMPPWorkload(
            rate_on=rate_on,
            rate_off=rate_off,
            mean_on_s=self.burst_on_s,
            mean_off_s=self.burst_off_s,
        )

    def describe(self) -> str:
        """One-line traffic description for run summaries."""
        quiet = (
            "silent between bursts"
            if self.off_fraction == 0
            else f"quiet-state trickle {self.off_fraction:g}x"
        )
        return (
            f"bursty MMPP arrivals (mean burst {self.burst_on_s:g}s, "
            f"quiet {self.burst_off_s:g}s, {quiet})"
        )
