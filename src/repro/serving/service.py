"""The sweep-serving core: :class:`SweepService` and its job model.

A service instance owns one long-lived
:class:`~repro.runtime.config.ResolvedExecution` — backend and result
store resolved **once** and reused across every request — and executes
ScenarioSpec-shaped requests against it.  Each request is validated
through the same :class:`~repro.scenarios.ScenarioSpec` schema as
``repro.cli scenario run``, dispatched through the same
:func:`~repro.scenarios.run_scenario` runner, and keyed into the same
content-addressed store — which is what makes the serving invariant
hold *by construction*:

    **A served response is byte-identical to the equivalent
    ``scenario run``**, and a warm request (every task already in the
    store) submits **zero** tasks to the backend.

Request shape (plain JSON)::

    {
      "scenario":  { ... a ScenarioSpec mapping ... },   # required
      "overrides": ["params.horizon=2.0", ...],          # optional
      "smoke":     false                                 # optional
    }

``overrides``/``smoke`` mirror the ``scenario run`` flags exactly
(``smoke`` applies the spec's own ``smoke:`` block first, explicit
overrides win).  Schema violations raise :class:`ServiceError` naming
the offending key — the HTTP layer maps them to 400.

Placement is **server policy**: the request's ``execution`` block
still controls everything that shapes the output (replications,
``ci_target``, engine, shards — the spelling ``scenario run`` would
use), but the *live* backend and store are the service's own, so a
request can never point the server at a different store directory or
worker fleet.

Jobs run on a single worker thread, FIFO.  That serialisation is
deliberate: output capture redirects the process-global ``sys.stdout``
while a job's run functions print, and the result store counters are
snapshotted per job — one job at a time keeps both exact.  Job states
are ``queued → running → done | failed | cancelled``; identical
in-flight requests (same :func:`~repro.runtime.store.request_key`)
coalesce onto one job.
"""

from __future__ import annotations

import io
import threading
import time
from collections import deque
from collections.abc import Mapping
from contextlib import redirect_stdout
from typing import Any

from ..runtime.config import ExecutionConfig, ResolvedExecution
from ..runtime.store import request_key
from ..scenarios import ScenarioError, ScenarioSpec, run_scenario
from ..scenarios.spec import _validate_smoke, apply_overrides

__all__ = [
    "JOB_STATES",
    "Job",
    "ServiceError",
    "SweepService",
    "parse_request",
]

#: Every state a job can be in, in lifecycle order (the last three are
#: terminal).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

_REQUEST_KEYS = ("scenario", "overrides", "smoke")


class ServiceError(ValueError):
    """A serving request violates the request or scenario schema.

    Like :class:`~repro.scenarios.ScenarioError`, the message always
    names the offending key; the HTTP layer maps it to status 400.
    """


class JobCancelled(Exception):
    """Internal: a running job observed its cancellation flag."""


def parse_request(body: Any) -> ScenarioSpec:
    """Validate a raw request payload into a :class:`ScenarioSpec`.

    Mirrors :func:`~repro.scenarios.load_scenario` minus the file I/O:
    the ``smoke`` block is applied first when requested, explicit
    ``overrides`` win, and every rejection is a :class:`ServiceError`
    naming the bad key.
    """
    if not isinstance(body, Mapping):
        raise ServiceError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    unknown = sorted(set(body) - set(_REQUEST_KEYS))
    if unknown:
        raise ServiceError(
            f"unknown request key {unknown[0]!r} "
            f"(known keys: {', '.join(_REQUEST_KEYS)})"
        )
    if "scenario" not in body:
        raise ServiceError("missing required request key 'scenario'")
    scenario = body["scenario"]
    if not isinstance(scenario, Mapping):
        raise ServiceError(
            "request key 'scenario' must be a scenario mapping, "
            f"got {scenario!r}"
        )
    smoke = body.get("smoke", False)
    if not isinstance(smoke, bool):
        raise ServiceError(
            f"request key 'smoke' must be true or false, got {smoke!r}"
        )
    overrides = body.get("overrides", [])
    if not isinstance(overrides, (list, Mapping)) or (
        isinstance(overrides, list)
        and not all(isinstance(o, str) for o in overrides)
    ):
        raise ServiceError(
            "request key 'overrides' must be a list of KEY=VALUE strings "
            f"or a mapping, got {overrides!r}"
        )
    try:
        data = dict(scenario)
        if smoke:
            data = apply_overrides(data, _validate_smoke(data.get("smoke")))
        if overrides:
            data = apply_overrides(data, overrides)
        return ScenarioSpec.from_dict(data)
    except ScenarioError as exc:
        raise ServiceError(str(exc)) from exc


class Job:
    """One submitted request: its spec, lifecycle state, and events.

    Not constructed directly — :meth:`SweepService.submit` returns
    these.  Thread-safe views: :meth:`snapshot` (the JSON shape every
    endpoint serves), :meth:`events_since` (incremental event feed for
    streaming/polling), :meth:`wait` (block until terminal).
    """

    def __init__(
        self, job_id: str, spec: ScenarioSpec, digest: str,
        cond: threading.Condition,
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.request_digest = digest
        self.state = "queued"
        self.created = time.time()
        self.started: float | None = None
        self.finished: float | None = None
        self.result: dict[str, Any] | None = None
        self.error: str | None = None
        self.cancel_requested = False
        self.events: list[dict[str, Any]] = []
        self._cond = cond
        self.add_event("state", state="queued")

    @property
    def done(self) -> bool:
        """True once the job reached a terminal state."""
        return self.state in ("done", "failed", "cancelled")

    def add_event(self, kind: str, **payload: Any) -> None:
        """Append one event (holds the service condition; notifies)."""
        with self._cond:
            self.events.append(
                {"seq": len(self.events), "event": kind, **payload}
            )
            self._cond.notify_all()

    def events_since(self, seq: int) -> list[dict[str, Any]]:
        """Events with ``seq >= seq`` — the incremental stream read."""
        with self._cond:
            return list(self.events[seq:])

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self.done:
                remaining = (
                    None if deadline is None
                    else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                self._cond.wait(remaining)
        return True

    def snapshot(self) -> dict[str, Any]:
        """The JSON view of this job (what every endpoint returns)."""
        with self._cond:
            snap: dict[str, Any] = {
                "id": self.id,
                "state": self.state,
                "name": self.spec.name,
                "model": self.spec.model,
                "request_key": self.request_digest,
                "created": self.created,
                "started": self.started,
                "finished": self.finished,
                "events": len(self.events),
            }
            if self.error is not None:
                snap["error"] = self.error
            if self.result is not None:
                snap["result"] = dict(self.result)
            return snap


class _JobStore:
    """Per-job facade over the shared :class:`ResultStore`.

    Delegates reads/writes to the long-lived store while (a) counting
    this job's own hit/miss/put traffic — the numbers behind the
    "warm request submits zero tasks" assertion, independent of the
    shared store's flushed session counters — (b) emitting throttled
    per-task progress events, and (c) acting as the cooperative
    cancellation checkpoint (every task consults the store, so every
    task boundary observes a cancel request).
    """

    def __init__(self, store: Any, job: Job, interval: float) -> None:
        self._store = store
        self._job = job
        self._interval = interval
        self._last = float("-inf")
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @property
    def enabled(self) -> bool:
        return self._store.enabled

    def counters(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def _checkpoint(self) -> None:
        if self._job.cancel_requested:
            raise JobCancelled()

    def _progress(self, force: bool = False) -> None:
        now = time.monotonic()
        if force or now - self._last >= self._interval:
            self._last = now
            self._job.add_event("progress", **self.counters())

    def get(self, key: str) -> tuple[bool, Any]:
        self._checkpoint()
        hit, value = self._store.get(key)
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        self._progress()
        return hit, value

    def put(self, key: str, value: Any) -> None:
        self._checkpoint()
        self._store.put(key, value)
        self.puts += 1
        self._progress()

    def contains(self, key: str) -> bool:
        return self._store.contains(key)

    def flush_counters(self) -> None:
        self._store.flush_counters()


class _Latency:
    """Min/mean/max accumulator for request/job wall times."""

    def __init__(self) -> None:
        self.count = 0
        self.total_ms = 0.0
        self.min_ms: float | None = None
        self.max_ms: float | None = None

    def add(self, ms: float) -> None:
        self.count += 1
        self.total_ms += ms
        self.min_ms = ms if self.min_ms is None else min(self.min_ms, ms)
        self.max_ms = ms if self.max_ms is None else max(self.max_ms, ms)

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total_ms": round(self.total_ms, 3),
            "mean_ms": (
                round(self.total_ms / self.count, 3) if self.count else None
            ),
            "min_ms": self.min_ms,
            "max_ms": self.max_ms,
        }


class SweepService:
    """Serve sweep requests from one long-lived execution resolution.

    Parameters
    ----------
    execution:
        The server-side :class:`ExecutionConfig`.  Its ``store_dir``,
        ``backend``/``connect`` and ``workers`` decide *where* request
        tasks run and which cache serves them; it is resolved once
        (``keep_alive=True``, so a ``processes`` backend keeps its pool
        warm) and shared by every job.  Scalar knobs that shape output
        (replications, ``ci_target``, engine, ...) come from each
        *request's* own ``execution`` block instead — exactly what the
        equivalent ``scenario run`` would use.
    progress_interval:
        Minimum seconds between per-task progress events (0 emits one
        per store access — what the tests use).

    Use as a context manager (or call :meth:`close`) so the worker
    thread, persistent backend and store counters shut down cleanly.
    """

    def __init__(
        self,
        execution: ExecutionConfig | None = None,
        *,
        progress_interval: float = 0.2,
    ) -> None:
        self.execution = execution if execution is not None else ExecutionConfig()
        self._rx = self.execution.resolve(keep_alive=True)
        self._progress_interval = progress_interval
        self._cond = threading.Condition()
        self._jobs: dict[str, Job] = {}
        self._queue: deque[Job] = deque()
        self._closed = False
        self._next_id = 1
        self._requests = 0
        self._request_errors = 0
        self._by_endpoint: dict[str, int] = {}
        self._request_latency = _Latency()
        self._job_latency = _Latency()
        self._store_totals = {"hits": 0, "misses": 0, "puts": 0}
        self._worker = threading.Thread(
            target=self._drain, name="sweep-service-worker", daemon=True
        )
        self._worker.start()

    # -- request accounting (shared with the HTTP layer) ---------------

    def record_request(
        self, endpoint: str, ms: float | None = None, error: bool = False
    ) -> None:
        """Count one request against ``/stats`` (HTTP layer calls this)."""
        with self._cond:
            self._requests += 1
            if error:
                self._request_errors += 1
            self._by_endpoint[endpoint] = self._by_endpoint.get(endpoint, 0) + 1
            if ms is not None:
                self._request_latency.add(ms)

    # -- job lifecycle -------------------------------------------------

    def submit(self, body: Any) -> tuple[Job, bool]:
        """Validate and enqueue one request.

        Returns ``(job, created)``: submission is idempotent over
        in-flight work — a request whose
        :func:`~repro.runtime.store.request_key` digest matches a
        queued or running job coalesces onto it (``created=False``)
        instead of queueing duplicate computation.  Terminal jobs never
        coalesce; resubmitting a finished request runs it again (warm,
        so it is served from the store).
        """
        spec = parse_request(body)  # ServiceError on any schema violation
        digest = request_key({"scenario": spec.to_dict()})
        with self._cond:
            if self._closed:
                raise ServiceError("service is shut down")
            for existing in self._jobs.values():
                if (
                    existing.request_digest == digest
                    and not existing.done
                    and not existing.cancel_requested
                ):
                    return existing, False
            job = Job(f"job-{self._next_id}", spec, digest, self._cond)
            self._next_id += 1
            self._jobs[job.id] = job
            self._queue.append(job)
            self._cond.notify_all()
        return job, True

    def run(self, body: Any, timeout: float | None = None) -> Job:
        """Submit and block until the job is terminal (the sync path)."""
        job, _created = self.submit(body)
        if not job.wait(timeout):
            raise TimeoutError(
                f"job {job.id} still {job.state} after {timeout:g}s"
            )
        return job

    def job(self, job_id: str) -> Job | None:
        """Look one job up by id (``None`` when unknown)."""
        with self._cond:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every job this service has seen, in submission order."""
        with self._cond:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> Job | None:
        """Cancel a job: queued jobs immediately, running cooperatively.

        A queued job goes straight to ``cancelled``; a running job has
        its flag set and aborts at the next store checkpoint (between
        tasks — a cancelled run never leaves a partial task, and
        everything it already computed stays in the store).  Terminal
        jobs are returned unchanged.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            if job.state == "queued":
                job.cancel_requested = True
                self._finish(job, "cancelled", error="cancelled while queued")
            elif job.state == "running":
                job.cancel_requested = True
            return job

    # -- stats ---------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """The ``/stats`` payload: requests, jobs, latency, hit rate."""
        with self._cond:
            by_state = {state: 0 for state in JOB_STATES}
            for job in self._jobs.values():
                by_state[job.state] += 1
            lookups = self._store_totals["hits"] + self._store_totals["misses"]
            store = self._rx.store
            return {
                "requests": {
                    "total": self._requests,
                    "errors": self._request_errors,
                    "by_endpoint": dict(sorted(self._by_endpoint.items())),
                },
                "latency_ms": self._request_latency.snapshot(),
                "jobs": {
                    "total": len(self._jobs),
                    **by_state,
                    "latency_ms": self._job_latency.snapshot(),
                },
                "store": {
                    "enabled": store is not None and store.enabled,
                    **self._store_totals,
                    "hit_rate": (
                        round(self._store_totals["hits"] / lookups, 4)
                        if lookups else None
                    ),
                },
            }

    # -- worker --------------------------------------------------------

    def _finish(self, job: Job, state: str, *, error: str | None = None,
                result: dict[str, Any] | None = None) -> None:
        """Terminal transition; caller holds (or re-enters) the cond."""
        job.state = state
        job.finished = time.time()
        job.error = error
        job.result = result
        job.add_event("state", state=state)

    def _drain(self) -> None:
        while True:
            with self._cond:
                while not self._closed and not self._queue:
                    self._cond.wait()
                if self._closed and not self._queue:
                    return
                job = self._queue.popleft()
                if job.state != "queued":  # cancelled while queued
                    continue
                job.state = "running"
                job.started = time.time()
            job.add_event("state", state="running")
            self._execute(job)

    def _execute(self, job: Job) -> None:
        store = self._rx.store
        job_store = (
            _JobStore(store, job, self._progress_interval)
            if store is not None else None
        )
        ex = job.spec.execution
        rx = ResolvedExecution(
            workers=ex.workers,
            replications=ex.replications,
            engine=ex.engine,
            seed_mode=ex.seed_mode,
            shards=ex.shards,
            shard_strategy=ex.shard_strategy,
            ci_target=ex.ci_target,
            max_replications=ex.max_replications,
            min_replications=ex.min_replications,
            backend=self._rx.backend,
            store=job_store,
        )
        buffer = io.StringIO()
        t0 = time.perf_counter()
        try:
            if job.cancel_requested:
                raise JobCancelled()
            with redirect_stdout(buffer):
                exit_code = run_scenario(job.spec, rx=rx)
        except JobCancelled:
            self._account(job, job_store, t0)
            self._finish(
                job, "cancelled", error="cancelled while running",
                result=self._result(None, buffer, job_store, t0),
            )
            return
        except (ScenarioError, ValueError) as exc:
            # A spec-level misconfiguration (e.g. engine="vectorized"
            # on a network model) — the request's fault, not a crash.
            self._account(job, job_store, t0)
            self._finish(
                job, "failed", error=str(exc),
                result=self._result(None, buffer, job_store, t0),
            )
            return
        except Exception as exc:  # noqa: BLE001 - jobs must never kill the worker
            self._account(job, job_store, t0)
            self._finish(
                job, "failed", error=f"{type(exc).__name__}: {exc}",
                result=self._result(None, buffer, job_store, t0),
            )
            return
        if job_store is not None:
            job_store._progress(force=True)
        self._account(job, job_store, t0)
        self._finish(
            job, "done",
            result=self._result(exit_code, buffer, job_store, t0),
        )

    @staticmethod
    def _result(
        exit_code: int | None, buffer: io.StringIO,
        job_store: _JobStore | None, t0: float,
    ) -> dict[str, Any]:
        return {
            "exit_code": exit_code,
            "output": buffer.getvalue(),
            "store": job_store.counters() if job_store is not None else None,
            "elapsed_ms": round((time.perf_counter() - t0) * 1000.0, 3),
        }

    def _account(
        self, job: Job, job_store: _JobStore | None, t0: float
    ) -> None:
        with self._cond:
            self._job_latency.add((time.perf_counter() - t0) * 1000.0)
            if job_store is not None:
                for name, value in job_store.counters().items():
                    self._store_totals[name] += value

    # -- shutdown ------------------------------------------------------

    def close(self, timeout: float = 30.0) -> None:
        """Stop the worker, cancel queued jobs, release backend/store."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for job in list(self._queue):
                if job.state == "queued":
                    job.cancel_requested = True
                    self._finish(
                        job, "cancelled", error="service shut down"
                    )
            self._queue.clear()
            running = [j for j in self._jobs.values() if j.state == "running"]
            for job in running:
                job.cancel_requested = True
            self._cond.notify_all()
        self._worker.join(timeout)
        backend = self._rx.backend
        if backend is not None:
            backend.close()
        store = self._rx.store
        if store is not None:
            store.flush_counters()

    def __enter__(self) -> "SweepService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
