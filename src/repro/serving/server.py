"""Stdlib-only JSON/HTTP front end for :class:`~repro.serving.SweepService`.

One :class:`SweepHTTPServer` (a ``ThreadingHTTPServer`` with daemon
handler threads) wraps one service.  Handler threads only parse, queue
and serialise — every job still runs on the service's single worker
thread, so concurrent HTTP clients cannot interleave job output or
counters.

Endpoints (all request/response bodies are JSON)::

    GET  /health                 liveness probe
    GET  /stats                  request/job/store counters
    GET  /jobs                   every job, newest last
    POST /jobs                   submit; 202 + job snapshot
    GET  /jobs/<id>              one job snapshot
    GET  /jobs/<id>/events       events (``?since=N`` for increments)
    GET  /jobs/<id>/stream       NDJSON event stream until terminal
    POST /jobs/<id>/cancel       cancel (cooperative when running)
    POST /run                    submit + wait; ``?stream=1`` for NDJSON

Errors: 400 for malformed JSON or schema violations (body carries
``{"error": ...}`` naming the offending key), 404 for unknown jobs or
paths, 405 for wrong methods, 413 for oversized bodies.  A client that
disconnects mid-stream only ends its own response — the job keeps
running and stays pollable.

Streaming responses are newline-delimited JSON over ``HTTP/1.0`` with
``Connection: close`` (body framed by connection end — no chunked
encoding to parse), one event object per line, terminated by an
``{"event": "end", "job": {...}}`` line carrying the final snapshot.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from .service import SweepService

__all__ = ["MAX_BODY_BYTES", "SweepHTTPServer", "make_server", "serve_http"]

#: Reject request bodies larger than this (a scenario spec is tiny).
MAX_BODY_BYTES = 1 << 20


class SweepHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SweepService`."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], service: SweepService) -> None:
        super().__init__(address, _Handler)
        self.service = service


class _HandledError(Exception):
    """Internal: carries an HTTP status + message to the error writer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.0"  # connection-close framing for streams
    server: SweepHTTPServer

    # -- plumbing ------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # requests are accounted in /stats, not stderr

    @property
    def service(self) -> SweepService:
        return self.server.service

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _HandledError(
                413, f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise _HandledError(400, "request body must be a JSON object")
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise _HandledError(400, f"request body is not valid JSON: {exc}")

    def _stream_job(self, job: Any) -> None:
        """NDJSON: every event as it happens, then the final snapshot."""
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        seq = 0
        try:
            while True:
                for event in job.events_since(seq):
                    seq = event["seq"] + 1
                    self.wfile.write(
                        (json.dumps(event) + "\n").encode("utf-8")
                    )
                self.wfile.flush()
                if job.done:
                    break
                job.wait(0.1)
            self.wfile.write(
                (json.dumps({"event": "end", "job": job.snapshot()}) + "\n")
                .encode("utf-8")
            )
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            # The client hung up mid-stream.  Its choice — the job keeps
            # running on the worker thread and stays pollable.
            self.close_connection = True

    # -- routing -------------------------------------------------------

    def _dispatch(self, method: str) -> None:
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        import time

        t0 = time.perf_counter()
        endpoint = f"{method} /{parts[0] if parts else ''}"
        error = False
        try:
            self._route(method, parts, query)
        except _HandledError as exc:
            error = True
            self._send_json({"error": str(exc)}, status=exc.status)
        except (BrokenPipeError, ConnectionResetError):
            error = True
            self.close_connection = True
        except Exception as exc:  # noqa: BLE001 - handler must answer
            error = True
            try:
                self._send_json(
                    {"error": f"{type(exc).__name__}: {exc}"}, status=500
                )
            except OSError:
                self.close_connection = True
        finally:
            self.service.record_request(
                endpoint, (time.perf_counter() - t0) * 1000.0, error=error
            )

    def _route(
        self, method: str, parts: list[str], query: dict[str, list[str]]
    ) -> None:
        service = self.service
        if parts == ["health"]:
            self._need(method, "GET")
            self._send_json({"status": "ok"})
        elif parts == ["stats"]:
            self._need(method, "GET")
            self._send_json(service.stats())
        elif parts == ["run"]:
            self._need(method, "POST")
            body = self._read_json()
            try:
                if query.get("stream", ["0"])[0] in ("1", "true"):
                    job, _ = service.submit(body)
                    self._stream_job(job)
                else:
                    timeout = float(query.get("timeout", ["0"])[0]) or None
                    job = service.run(body, timeout=timeout)
                    self._send_json(job.snapshot())
            except ValueError as exc:  # ServiceError and bad floats
                raise _HandledError(400, str(exc))
            except TimeoutError as exc:
                raise _HandledError(504, str(exc))
        elif parts == ["jobs"]:
            if method == "GET":
                self._send_json(
                    {"jobs": [job.snapshot() for job in service.jobs()]}
                )
            elif method == "POST":
                body = self._read_json()
                try:
                    job, created = service.submit(body)
                except ValueError as exc:
                    raise _HandledError(400, str(exc))
                snap = job.snapshot()
                snap["created_now"] = created
                self._send_json(snap, status=202 if created else 200)
            else:
                raise _HandledError(405, f"method {method} not allowed")
        elif len(parts) >= 2 and parts[0] == "jobs":
            job = service.job(parts[1])
            if job is None:
                raise _HandledError(404, f"no such job {parts[1]!r}")
            rest = parts[2:]
            if not rest:
                self._need(method, "GET")
                self._send_json(job.snapshot())
            elif rest == ["events"]:
                self._need(method, "GET")
                try:
                    since = int(query.get("since", ["0"])[0])
                except ValueError:
                    raise _HandledError(400, "'since' must be an integer")
                self._send_json(
                    {
                        "id": job.id,
                        "state": job.state,
                        "events": job.events_since(since),
                    }
                )
            elif rest == ["stream"]:
                self._need(method, "GET")
                self._stream_job(job)
            elif rest == ["cancel"]:
                self._need(method, "POST")
                service.cancel(job.id)
                self._send_json(job.snapshot())
            else:
                raise _HandledError(404, f"no such path {self.path!r}")
        else:
            raise _HandledError(404, f"no such path {self.path!r}")

    def _need(self, method: str, expected: str) -> None:
        if method != expected:
            raise _HandledError(
                405, f"method {method} not allowed (use {expected})"
            )

    def do_GET(self) -> None:  # noqa: N802 - http.server contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def make_server(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> SweepHTTPServer:
    """Bind a server for ``service`` (``port=0`` picks an ephemeral one)."""
    return SweepHTTPServer((host, port), service)


def serve_http(
    service: SweepService, host: str = "127.0.0.1", port: int = 0
) -> tuple[SweepHTTPServer, threading.Thread]:
    """Start a server on a daemon thread; returns ``(server, thread)``.

    The caller owns shutdown: ``server.shutdown()`` then
    ``service.close()``.  Read the bound port off
    ``server.server_address`` (useful with ``port=0``).
    """
    server = make_server(service, host=host, port=port)
    thread = threading.Thread(
        target=server.serve_forever, name="sweep-http", daemon=True
    )
    thread.start()
    return server, thread
