"""A tiny urllib client for the sweep-serving HTTP API.

This is what ``repro.cli query`` is built on, and what CI uses to talk
to a server without curl.  It speaks all three request modes:

* ``sync`` — ``POST /run`` and block until the final job snapshot;
* ``poll`` — ``POST /jobs`` then poll ``/jobs/<id>/events`` until the
  job is terminal (the shape a dashboard would use);
* ``stream`` — ``POST /run?stream=1`` and read NDJSON events as the
  job produces them.

All three return the same final job snapshot, and ``on_event`` (when
given) sees every event exactly once in ``seq`` order in the poll and
stream modes.
"""

from __future__ import annotations

import json
import time
from collections.abc import Callable
from typing import Any
from urllib.error import HTTPError
from urllib.request import Request, urlopen

__all__ = ["ServerError", "fetch_json", "fetch_stats", "query_server"]

QUERY_MODES = ("sync", "poll", "stream")


class ServerError(RuntimeError):
    """The server answered with an error status; carries its message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server returned {status}: {message}")
        self.status = status


def _request(
    server: str, path: str, body: Any | None = None, timeout: float = 60.0
) -> Any:
    url = server.rstrip("/") + path
    data = None
    headers = {}
    if body is not None:
        data = json.dumps(body).encode("utf-8")
        headers["Content-Type"] = "application/json"
    try:
        with urlopen(Request(url, data=data, headers=headers),
                     timeout=timeout) as resp:
            return json.loads(resp.read())
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        try:
            detail = json.loads(detail)["error"]
        except (ValueError, KeyError, TypeError):
            pass
        raise ServerError(exc.code, detail) from exc


def fetch_json(server: str, path: str, timeout: float = 60.0) -> Any:
    """GET ``path`` from ``server`` and decode the JSON body."""
    return _request(server, path, timeout=timeout)


def fetch_stats(server: str, timeout: float = 60.0) -> dict[str, Any]:
    """The server's ``/stats`` payload."""
    return _request(server, "/stats", timeout=timeout)


def query_server(
    server: str,
    request: Any,
    mode: str = "sync",
    timeout: float = 600.0,
    on_event: Callable[[dict[str, Any]], None] | None = None,
) -> dict[str, Any]:
    """Run one sweep request against ``server``; returns the job snapshot.

    ``server`` is a base URL (``http://host:port``); ``request`` is the
    JSON request body (``{"scenario": ..., "overrides": ..., "smoke":
    ...}``).  Schema violations surface as :class:`ServerError` with
    the server's message (which names the offending key).
    """
    if mode not in QUERY_MODES:
        raise ValueError(f"mode must be one of {QUERY_MODES}, got {mode!r}")
    if mode == "sync":
        return _request(
            server, f"/run?timeout={timeout:g}", request, timeout=timeout
        )
    if mode == "poll":
        return _poll(server, request, timeout, on_event)
    return _stream(server, request, timeout, on_event)


def _poll(
    server: str, request: Any, timeout: float,
    on_event: Callable[[dict[str, Any]], None] | None,
) -> dict[str, Any]:
    job = _request(server, "/jobs", request, timeout=timeout)
    deadline = time.monotonic() + timeout
    seq = 0
    while True:
        page = _request(
            server, f"/jobs/{job['id']}/events?since={seq}", timeout=timeout
        )
        for event in page["events"]:
            seq = event["seq"] + 1
            if on_event is not None:
                on_event(event)
        if page["state"] in ("done", "failed", "cancelled"):
            return _request(server, f"/jobs/{job['id']}", timeout=timeout)
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"job {job['id']} still {page['state']} after {timeout:g}s"
            )
        time.sleep(0.05)


def _stream(
    server: str, request: Any, timeout: float,
    on_event: Callable[[dict[str, Any]], None] | None,
) -> dict[str, Any]:
    url = server.rstrip("/") + "/run?stream=1"
    data = json.dumps(request).encode("utf-8")
    req = Request(url, data=data, headers={"Content-Type": "application/json"})
    try:
        with urlopen(req, timeout=timeout) as resp:
            for line in resp:
                event = json.loads(line)
                if event.get("event") == "end":
                    return event["job"]
                if on_event is not None:
                    on_event(event)
    except HTTPError as exc:
        detail = exc.read().decode("utf-8", "replace")
        try:
            detail = json.loads(detail)["error"]
        except (ValueError, KeyError, TypeError):
            pass
        raise ServerError(exc.code, detail) from exc
    raise ServerError(502, "stream ended without a final job snapshot")
