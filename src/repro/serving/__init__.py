"""``repro.serving`` — the sweep-serving query service over the result store.

The layers below this package already guarantee that *what* you
compute is independent of *how* it is computed: task keys never
include execution knobs, every backend is bit-identical to the serial
reference, and the content-addressed store turns re-runs into reads.
This package turns those guarantees into a long-running service:

* :class:`SweepService` — the programmatic core.  Resolves one
  :class:`~repro.runtime.ExecutionConfig` (backend + store) at startup
  and executes ScenarioSpec-shaped requests against it through the
  same :func:`~repro.scenarios.run_scenario` dispatch as
  ``repro.cli scenario run`` — so a served response is byte-identical
  to the equivalent CLI run, a fully-warm request touches only the
  store (zero backend tasks), and a cold request computes exactly its
  misses.  Jobs carry ``queued → running → done/failed/cancelled``
  lifecycles, per-task progress events, idempotent submission (dup
  in-flight requests coalesce by
  :func:`~repro.runtime.store.request_key`) and cooperative
  cancellation.
* :mod:`repro.serving.server` — a stdlib-only threaded JSON/HTTP front
  end (``repro.cli serve``): sync ``/run``, pollable ``/jobs``,
  NDJSON streaming, and ``/stats`` counters.
* :mod:`repro.serving.client` — the urllib client behind
  ``repro.cli query`` (sync / poll / stream modes).

See ``docs/serving.md`` for the endpoint reference and a runnable
quickstart.
"""

from .client import QUERY_MODES, ServerError, fetch_json, fetch_stats, query_server
from .server import SweepHTTPServer, make_server, serve_http
from .service import (
    JOB_STATES,
    Job,
    ServiceError,
    SweepService,
    parse_request,
)

__all__ = [
    "JOB_STATES",
    "Job",
    "QUERY_MODES",
    "ServerError",
    "ServiceError",
    "SweepHTTPServer",
    "SweepService",
    "fetch_json",
    "fetch_stats",
    "make_server",
    "parse_request",
    "query_server",
    "serve_http",
]
