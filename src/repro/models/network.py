"""Multi-node sensor-network energy and lifetime analysis.

The paper's conclusion positions the node model as "a valuable
platform for energy optimization in wireless sensor networks", and its
related work (Coleri et al.) analyses power "based on [a node's]
location in the sensor network".  This module composes the Figs. 12/13
node model into that network view:

* a :class:`NetworkTopology` assigns each node an *effective event
  rate* — its own sensing events plus the traffic it relays toward the
  sink.  A line (chain) topology gives the classic hotspot: the node
  next to the sink relays everyone's traffic and dies first.  A star
  gives one hub doing all relaying;
* :class:`SensorNetworkModel` simulates each node at its effective
  rate (nodes are simulated independently — radio contention between
  nodes is out of scope and documented), accounts per-node energy, and
  converts it into per-node and network lifetime (first node death)
  for a given battery.

This turns the single-node ``Power_Down_Threshold`` question into the
deployment-level one: which threshold maximises the *network* lifetime,
given that the hotspot node sees a different workload than the leaves?
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..energy.battery import LinearBattery, NodeLifetimeEstimator, PeukertBattery
from .wsn_node import (
    NodeParameters,
    WSNNodeModel,
    WSNNodeResult,
    simulate_node_task,
)

__all__ = [
    "NetworkTopology",
    "LineTopology",
    "StarTopology",
    "NodeSummary",
    "NetworkResult",
    "SensorNetworkModel",
]


class NetworkTopology:
    """Assigns each node the event rate it must handle."""

    #: Number of nodes (excluding the sink, which is mains-powered).
    n_nodes: int

    def effective_rates(self, base_rate: float) -> list[float]:
        """Per-node event rate including relayed traffic."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line topology description."""
        raise NotImplementedError


@dataclass(frozen=True)
class LineTopology(NetworkTopology):
    """A chain: node i (1-indexed from the sink) relays nodes i+1..N.

    Node 1 (next to the sink) handles its own events plus everything
    upstream: rate ``N × base``.  Node N (the far end) handles only its
    own: rate ``base``.  The linear gradient is the canonical WSN
    energy-hole scenario.
    """

    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")

    def effective_rates(self, base_rate: float) -> list[float]:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        return [
            base_rate * (self.n_nodes - i) for i in range(self.n_nodes)
        ]

    def describe(self) -> str:
        return f"line of {self.n_nodes} nodes (node 1 adjacent to the sink)"


@dataclass(frozen=True)
class StarTopology(NetworkTopology):
    """A hub relaying ``n_leaves`` leaves to the sink.

    Node 1 is the hub (rate ``(n_leaves + 1) × base`` — its own events
    plus every leaf's); nodes 2..n are leaves at ``base``.
    """

    n_leaves: int

    def __post_init__(self) -> None:
        if self.n_leaves < 1:
            raise ValueError("n_leaves must be >= 1")

    @property
    def n_nodes(self) -> int:  # type: ignore[override]
        return self.n_leaves + 1

    def effective_rates(self, base_rate: float) -> list[float]:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        return [base_rate * (self.n_leaves + 1)] + [base_rate] * self.n_leaves

    def describe(self) -> str:
        return f"star with 1 hub and {self.n_leaves} leaves"


@dataclass(frozen=True)
class NodeSummary:
    """Per-node outcome of a network run."""

    node_id: int
    event_rate: float
    mean_power_mw: float
    energy_j: float
    lifetime_days: float
    cpu_wakeups: int
    events_completed: int


@dataclass
class NetworkResult:
    """Outcome of one network simulation."""

    topology: str
    power_down_threshold: float
    horizon_s: float
    nodes: list[NodeSummary]

    @property
    def total_energy_j(self) -> float:
        """Network-wide energy over the run."""
        return sum(n.energy_j for n in self.nodes)

    @property
    def network_lifetime_days(self) -> float:
        """Time to first node death — the usual WSN lifetime metric."""
        return min(n.lifetime_days for n in self.nodes)

    @property
    def hotspot(self) -> NodeSummary:
        """The node that dies first."""
        return min(self.nodes, key=lambda n: n.lifetime_days)

    def lifetime_imbalance(self) -> float:
        """max/min node lifetime — 1.0 means perfectly balanced."""
        lifetimes = [n.lifetime_days for n in self.nodes]
        lo = min(lifetimes)
        return max(lifetimes) / lo if lo > 0 else float("inf")


class SensorNetworkModel:
    """A network of Figs. 12/13 nodes with per-node relayed workloads.

    Parameters
    ----------
    topology:
        Rate-assignment scheme (:class:`LineTopology`, :class:`StarTopology`
        or custom).
    params:
        Shared node parameters; each node's ``arrival_rate`` is replaced
        by its topology-assigned effective rate.
    battery:
        Per-node battery for lifetime conversion.
    workload:
        ``"open"`` (default — relayed traffic arrives regardless of the
        relay's state, which is physically right) or ``"closed"``.

    Notes
    -----
    Nodes are simulated independently: inter-node radio contention and
    listen/forward coupling are not modelled (the per-node radio time
    already includes its own receive + transmit phases per handled
    event).  This matches the granularity of the paper's single-node
    model while exposing the network-level workload gradient.
    """

    def __init__(
        self,
        topology: NetworkTopology,
        params: NodeParameters | None = None,
        battery: LinearBattery | PeukertBattery | None = None,
        workload: str = "open",
    ) -> None:
        self.topology = topology
        self.params = params if params is not None else NodeParameters()
        self.battery = (
            battery
            if battery is not None
            else LinearBattery(capacity_mah=1000.0, voltage_v=4.5, usable_fraction=0.85)
        )
        if workload not in ("open", "closed"):
            raise ValueError(f"workload must be open or closed, got {workload!r}")
        self.workload = workload

    def simulate(
        self,
        horizon: float,
        seed: int = 0,
        base_rate: float = 1.0,
        workers: int = 1,
    ) -> NetworkResult:
        """Simulate every node at its effective rate.

        Nodes are independent, so with ``workers > 1`` their
        simulations are submitted through the :mod:`repro.runtime`
        process pool; per-node seeds (``seed + node_index``) are fixed
        before distribution, so results are identical for any
        ``workers``.
        """
        from ..runtime.executor import ParallelExecutor

        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        rates = self.topology.effective_rates(base_rate)
        estimator = NodeLifetimeEstimator(self.battery)
        tasks = [
            (replace(self.params, arrival_rate=rate), self.workload, horizon, seed + i)
            for i, rate in enumerate(rates)
        ]
        results = ParallelExecutor(workers=workers).map(
            simulate_node_task, tasks
        )
        summaries: list[NodeSummary] = []
        for i, (rate, result) in enumerate(zip(rates, results)):
            mean_power_mw = (
                result.total_energy_j / result.duration * 1000.0
                if result.duration > 0
                else 0.0
            )
            summaries.append(
                NodeSummary(
                    node_id=i + 1,
                    event_rate=rate,
                    mean_power_mw=mean_power_mw,
                    energy_j=result.total_energy_j,
                    lifetime_days=estimator.lifetime_days(mean_power_mw),
                    cpu_wakeups=result.cpu_wakeups,
                    events_completed=result.events_completed,
                )
            )
        return NetworkResult(
            topology=self.topology.describe(),
            power_down_threshold=self.params.power_down_threshold,
            horizon_s=horizon,
            nodes=summaries,
        )

    def sweep_thresholds(
        self,
        thresholds: list[float] | tuple[float, ...],
        horizon: float,
        seed: int = 0,
        base_rate: float = 1.0,
        workers: int = 1,
    ) -> list[NetworkResult]:
        """Network result per threshold (network-lifetime optimisation).

        ``workers`` parallelises across the nodes of each network run;
        the threshold points themselves are processed in order so each
        :class:`NetworkResult` is complete before the next starts.
        """
        out: list[NetworkResult] = []
        for t in thresholds:
            model = SensorNetworkModel(
                self.topology,
                replace(self.params, power_down_threshold=t),
                self.battery,
                self.workload,
            )
            out.append(
                model.simulate(
                    horizon, seed=seed, base_rate=base_rate, workers=workers
                )
            )
        return out
