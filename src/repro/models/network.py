"""Multi-node sensor-network energy and lifetime analysis.

The paper's conclusion positions the node model as "a valuable
platform for energy optimization in wireless sensor networks", and its
related work (Coleri et al.) analyses power "based on [a node's]
location in the sensor network".  This module composes the Figs. 12/13
node model into that network view:

* a :class:`NetworkTopology` assigns each node an *effective event
  rate* — its own sensing events plus the traffic it relays toward the
  sink.  A line (chain) topology gives the classic hotspot: the node
  next to the sink relays everyone's traffic and dies first.  A star
  gives one hub doing all relaying.  A :class:`GridTopology` scales the
  same structure to hundreds of nodes routed along a
  column-then-row tree to a corner sink;
* :class:`SensorNetworkModel` simulates each node at its effective
  rate (nodes are simulated independently — radio contention between
  nodes is out of scope and documented), accounts per-node energy, and
  converts it into per-node and network lifetime (first node death)
  for a given battery.

This turns the single-node ``Power_Down_Threshold`` question into the
deployment-level one: which threshold maximises the *network* lifetime,
given that the hotspot node sees a different workload than the leaves?

Because nodes are independent, the node set shards cleanly:
``simulate(..., shards=K)`` partitions the nodes via
:mod:`repro.runtime.sharding`, runs each shard as one worker-group
task, and merges the per-shard results with :meth:`NetworkResult.merge`
— per-node seeds are keyed by node index, so every ``(workers,
shards, strategy)`` combination is bit-identical to the serial run.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from ..energy.battery import LinearBattery, NodeLifetimeEstimator, PeukertBattery
from .wsn_node import (
    NodeParameters,
    WSNNodeModel,
    WSNNodeResult,
    simulate_node_task,
)

if TYPE_CHECKING:
    from ..topology.dynamics import ChurnModel, ChurnReport, NodeSegment
    from ..topology.traffic import MMPPTraffic

__all__ = [
    "NetworkTopology",
    "LineTopology",
    "StarTopology",
    "GridTopology",
    "NodeSummary",
    "NetworkResult",
    "SensorNetworkModel",
    "simulate_node_segments_task",
]

#: Seconds per day, for converting failure times to lifetime units.
_DAY_S = 86400.0


class NetworkTopology:
    """Assigns each node the event rate it must handle."""

    #: Number of nodes (excluding the sink, which is mains-powered).
    n_nodes: int

    def effective_rates(self, base_rate: float) -> list[float]:
        """Per-node event rate including relayed traffic."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line topology description."""
        raise NotImplementedError

    def tree_parents(self) -> tuple[int, ...]:
        """Convergecast routing tree as a parent array.

        Entry ``i`` is the 0-based index of the node that relays node
        ``i``'s traffic; :data:`repro.topology.routing.SINK` (``-1``)
        marks nodes that reach the sink directly.  Every topology's
        :meth:`effective_rates` must equal ``base_rate`` × the subtree
        sizes of this tree — the :mod:`repro.topology` dynamics layer
        relies on that consistency when it recomputes per-epoch rates.

        >>> from repro.models import LineTopology
        >>> LineTopology(4).tree_parents()
        (-1, 0, 1, 2)
        """
        raise NotImplementedError

    def rewire(self, alive: Sequence[bool]) -> tuple[int, ...]:
        """Routing tree after the nodes where ``alive`` is false died.

        The default policy re-parents each survivor to its nearest
        live *ancestor* on the original tree (ultimately the sink, so
        survivors always stay connected); geometry-aware topologies
        override this with a true shortest-path recompute.  Dead nodes
        are marked :data:`repro.topology.routing.UNREACHABLE` (``-2``).
        """
        from ..topology.routing import climb_rewire

        return climb_rewire(self.tree_parents(), alive)


@dataclass(frozen=True)
class LineTopology(NetworkTopology):
    """A chain: node i (1-indexed from the sink) relays nodes i+1..N.

    Node 1 (next to the sink) handles its own events plus everything
    upstream: rate ``N × base``.  Node N (the far end) handles only its
    own: rate ``base``.  The linear gradient is the canonical WSN
    energy-hole scenario.
    """

    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")

    def effective_rates(self, base_rate: float) -> list[float]:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        return [
            base_rate * (self.n_nodes - i) for i in range(self.n_nodes)
        ]

    def tree_parents(self) -> tuple[int, ...]:
        return tuple(i - 1 if i > 0 else -1 for i in range(self.n_nodes))

    def describe(self) -> str:
        return f"line of {self.n_nodes} nodes (node 1 adjacent to the sink)"


@dataclass(frozen=True)
class StarTopology(NetworkTopology):
    """A hub relaying ``n_leaves`` leaves to the sink.

    Node 1 is the hub (rate ``(n_leaves + 1) × base`` — its own events
    plus every leaf's); nodes 2..n are leaves at ``base``.
    """

    n_leaves: int

    def __post_init__(self) -> None:
        if self.n_leaves < 1:
            raise ValueError("n_leaves must be >= 1")

    @property
    def n_nodes(self) -> int:  # type: ignore[override]
        return self.n_leaves + 1

    def effective_rates(self, base_rate: float) -> list[float]:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        return [base_rate * (self.n_leaves + 1)] + [base_rate] * self.n_leaves

    def tree_parents(self) -> tuple[int, ...]:
        return (-1,) + (0,) * self.n_leaves

    def describe(self) -> str:
        return f"star with 1 hub and {self.n_leaves} leaves"


@dataclass(frozen=True)
class GridTopology(NetworkTopology):
    """A ``width × height`` grid routed to a mains-powered corner sink.

    Node ``(x, y)`` (0-indexed, ``x`` along the sink row) forwards to
    ``(x, y-1)`` within its column and, on the sink row ``y = 0``, to
    ``(x-1, 0)`` — the standard column-then-row convergecast tree.  Its
    effective rate is ``base × subtree size``:

    * interior node ``(x, y>0)`` drains the ``height - y`` nodes above
      it in its column;
    * sink-row node ``(x, 0)`` drains the ``(width - x) × height``
      nodes of every column at or beyond ``x``.

    Node 1 — grid position ``(0, 0)``, adjacent to the sink — carries
    the whole deployment (``width × height × base``) and is the
    hotspot, scaling the line topology's energy hole to
    hundreds-of-node scenarios.  Nodes are numbered column-major from
    the sink: index ``i`` is position ``(i // height, i % height)``.
    """

    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError("width and height must be >= 1")

    @property
    def n_nodes(self) -> int:  # type: ignore[override]
        return self.width * self.height

    def position(self, node_index: int) -> tuple[int, int]:
        """Grid coordinates ``(x, y)`` of a 0-based node index."""
        if not 0 <= node_index < self.n_nodes:
            raise ValueError(
                f"node_index must be in [0, {self.n_nodes}), got {node_index}"
            )
        return divmod(node_index, self.height)

    def subtree_size(self, node_index: int) -> int:
        """Nodes drained through this node, itself included."""
        x, y = self.position(node_index)
        if y > 0:
            return self.height - y
        return (self.width - x) * self.height

    def effective_rates(self, base_rate: float) -> list[float]:
        if base_rate <= 0:
            raise ValueError("base_rate must be > 0")
        return [
            base_rate * self.subtree_size(i) for i in range(self.n_nodes)
        ]

    def tree_parents(self) -> tuple[int, ...]:
        parents = []
        for i in range(self.n_nodes):
            x, y = self.position(i)
            if y > 0:
                parents.append(i - 1)  # (x, y-1) is the previous index
            elif x > 0:
                parents.append(i - self.height)  # (x-1, 0)
            else:
                parents.append(-1)
        return tuple(parents)

    def describe(self) -> str:
        return (
            f"{self.width}x{self.height} grid of {self.n_nodes} nodes "
            "(corner sink next to node 1)"
        )


@dataclass(frozen=True)
class NodeSummary:
    """Per-node outcome of a network run."""

    node_id: int
    event_rate: float
    mean_power_mw: float
    energy_j: float
    lifetime_days: float
    cpu_wakeups: int
    events_completed: int


@dataclass
class NetworkResult:
    """Outcome of one network simulation (or a merged set of shards).

    The aggregate metrics are all shard-decomposable, which is what
    makes :meth:`merge` exact rather than approximate: total energy is
    a sum over nodes, network lifetime is a min, and the hotspot is the
    argmin node — each distributes over any partition of the node set.
    """

    topology: str
    power_down_threshold: float
    horizon_s: float
    nodes: list[NodeSummary]
    #: Churn statistics, attached by the parent after any merge —
    #: shards never see or produce this, so merging stays exact.
    dynamics: ChurnReport | None = None

    @classmethod
    def merge(cls, results: Sequence["NetworkResult"]) -> "NetworkResult":
        """Combine per-shard results into one network-wide result.

        Requires every part to describe the same run (topology label,
        threshold, horizon) and the node ids to be disjoint; nodes are
        re-sorted by id so the merged result is independent of shard
        order and strategy, making ``merge`` associative and
        commutative.  The aggregates follow from the node list:
        lifetime = min over shards, hotspot = the argmin node, energy =
        sum of shard energies.
        """
        results = list(results)
        if not results:
            raise ValueError("merge needs at least one NetworkResult")
        first = results[0]
        for r in results[1:]:
            if (
                r.topology != first.topology
                or r.power_down_threshold != first.power_down_threshold
                or r.horizon_s != first.horizon_s
            ):
                raise ValueError(
                    "cannot merge results from different runs: "
                    f"({r.topology!r}, {r.power_down_threshold}, "
                    f"{r.horizon_s}) vs ({first.topology!r}, "
                    f"{first.power_down_threshold}, {first.horizon_s})"
                )
        nodes = sorted(
            (n for r in results for n in r.nodes), key=lambda n: n.node_id
        )
        ids = [n.node_id for n in nodes]
        if len(set(ids)) != len(ids):
            duplicates = sorted({i for i in ids if ids.count(i) > 1})
            raise ValueError(f"duplicate node ids across shards: {duplicates}")
        return cls(
            topology=first.topology,
            power_down_threshold=first.power_down_threshold,
            horizon_s=first.horizon_s,
            nodes=nodes,
        )

    @property
    def total_energy_j(self) -> float:
        """Network-wide energy over the run."""
        return sum(n.energy_j for n in self.nodes)

    @property
    def network_lifetime_days(self) -> float:
        """Time to first node death — the usual WSN lifetime metric."""
        return min(n.lifetime_days for n in self.nodes)

    @property
    def hotspot(self) -> NodeSummary:
        """The node that dies first."""
        return min(self.nodes, key=lambda n: n.lifetime_days)

    def lifetime_imbalance(self) -> float:
        """max/min node lifetime — 1.0 means perfectly balanced."""
        lifetimes = [n.lifetime_days for n in self.nodes]
        lo = min(lifetimes)
        return max(lifetimes) / lo if lo > 0 else float("inf")


def simulate_node_segments_task(
    task: tuple[
        NodeParameters, str, "MMPPTraffic | None", tuple["NodeSegment", ...]
    ],
) -> list[WSNNodeResult]:
    """Worker task: one churn-scheduled node, all its alive segments.

    ``task = (params, workload, traffic, segments)`` — the picklable
    unit the runtime maps under churn.  Each
    :class:`~repro.topology.dynamics.NodeSegment` is simulated
    back-to-back at its epoch's effective rate with its own
    deterministic seed; results come back per segment for the parent
    to fold into one :class:`NodeSummary`.  Keeping the whole node in
    one task preserves the node-granular sharding and result-store
    keying of the static path.
    """
    params, workload, traffic, segments = task
    results = []
    for seg in segments:
        seg_params = replace(params, arrival_rate=seg.rate)
        seg_workload = (
            traffic.workload(seg.rate) if traffic is not None else workload
        )
        results.append(
            WSNNodeModel(seg_params, seg_workload).simulate(
                seg.duration_s, seed=seg.seed
            )
        )
    return results


class SensorNetworkModel:
    """A network of Figs. 12/13 nodes with per-node relayed workloads.

    Parameters
    ----------
    topology:
        Rate-assignment scheme (:class:`LineTopology`, :class:`StarTopology`
        or custom).
    params:
        Shared node parameters; each node's ``arrival_rate`` is replaced
        by its topology-assigned effective rate.
    battery:
        Per-node battery for lifetime conversion.
    workload:
        ``"open"`` (default — relayed traffic arrives regardless of the
        relay's state, which is physically right) or ``"closed"``.
    dynamics:
        Optional :class:`~repro.topology.dynamics.ChurnModel`.  When
        active, every run precomputes a deterministic
        :class:`~repro.topology.dynamics.ChurnSchedule` in the parent
        (failures, rewiring, duty variation) and simulates each node's
        alive segments via :func:`simulate_node_segments_task`.  An
        inert model (both knobs zero) is normalised to ``None`` so the
        exact legacy path — and its result-store keys — is used.
    traffic:
        Optional :class:`~repro.topology.traffic.MMPPTraffic`.  Each
        node then draws bursty MMPP arrivals whose long-run mean
        equals its topology-assigned effective rate (open workload
        only).

    Notes
    -----
    Nodes are simulated independently: inter-node radio contention and
    listen/forward coupling are not modelled (the per-node radio time
    already includes its own receive + transmit phases per handled
    event).  This matches the granularity of the paper's single-node
    model while exposing the network-level workload gradient.

    Example
    -------
    >>> from repro.models import GridTopology, NodeParameters, SensorNetworkModel
    >>> net = SensorNetworkModel(
    ...     GridTopology(5, 4), NodeParameters(power_down_threshold=0.01)
    ... )
    >>> result = net.simulate(horizon=5.0, seed=7, base_rate=0.2, shards=4)
    >>> len(result.nodes)
    20
    >>> result.nodes[0].event_rate  # the sink-adjacent corner relays all 20
    4.0
    >>> result.total_energy_j == sum(n.energy_j for n in result.nodes)
    True
    """

    def __init__(
        self,
        topology: NetworkTopology,
        params: NodeParameters | None = None,
        battery: LinearBattery | PeukertBattery | None = None,
        workload: str = "open",
        dynamics: ChurnModel | None = None,
        traffic: MMPPTraffic | None = None,
    ) -> None:
        self.topology = topology
        self.params = params if params is not None else NodeParameters()
        self.battery = (
            battery
            if battery is not None
            else LinearBattery(capacity_mah=1000.0, voltage_v=4.5, usable_fraction=0.85)
        )
        if workload not in ("open", "closed"):
            raise ValueError(f"workload must be open or closed, got {workload!r}")
        if traffic is not None and workload != "open":
            raise ValueError(
                "bursty traffic requires the open workload "
                f"(relayed arrivals are state-independent), got {workload!r}"
            )
        self.workload = workload
        # An inert churn model changes nothing: normalise it away so
        # the legacy task path (and its store keys) stays byte-exact.
        self.dynamics = (
            dynamics if dynamics is not None and dynamics.is_active() else None
        )
        self.traffic = traffic

    def _summarise(
        self,
        node_index: int,
        rate: float,
        result: WSNNodeResult,
        estimator: NodeLifetimeEstimator,
    ) -> NodeSummary:
        """Fold one node run into its :class:`NodeSummary` row."""
        mean_power_mw = (
            result.total_energy_j / result.duration * 1000.0
            if result.duration > 0
            else 0.0
        )
        return NodeSummary(
            node_id=node_index + 1,
            event_rate=rate,
            mean_power_mw=mean_power_mw,
            energy_j=result.total_energy_j,
            lifetime_days=estimator.lifetime_days(mean_power_mw),
            cpu_wakeups=result.cpu_wakeups,
            events_completed=result.events_completed,
        )

    def _summarise_segments(
        self,
        node_index: int,
        segments: Sequence["NodeSegment"],
        results: Sequence[WSNNodeResult],
        estimator: NodeLifetimeEstimator,
        failure_time_s: float | None,
    ) -> NodeSummary:
        """Fold a churn-scheduled node's segment runs into one row.

        Energy and counters sum across segments; mean power averages
        over the node's *alive* time; the reported event rate is the
        duration-weighted mean of the per-epoch effective rates.  A
        node killed by churn has its lifetime clipped to the failure
        time — network lifetime (time to first node death) then
        reflects the churn event, exactly as it would a battery death.
        """
        energy = sum(r.total_energy_j for r in results)
        alive_s = sum(r.duration for r in results)
        mean_power_mw = energy / alive_s * 1000.0 if alive_s > 0 else 0.0
        lifetime_days = estimator.lifetime_days(mean_power_mw)
        if failure_time_s is not None:
            lifetime_days = min(lifetime_days, failure_time_s / _DAY_S)
        rate = (
            sum(s.rate * s.duration_s for s in segments) / alive_s
            if alive_s > 0
            else 0.0
        )
        return NodeSummary(
            node_id=node_index + 1,
            event_rate=rate,
            mean_power_mw=mean_power_mw,
            energy_j=energy,
            lifetime_days=lifetime_days,
            cpu_wakeups=sum(r.cpu_wakeups for r in results),
            events_completed=sum(r.events_completed for r in results),
        )

    def simulate(
        self,
        horizon: float,
        seed: int = 0,
        base_rate: float = 1.0,
        workers: int = 1,
        shards: int = 1,
        shard_strategy: str = "contiguous",
        seed_mode: str = "legacy",
        backend=None,
        store=None,
        *,
        exec_cfg=None,
    ) -> NetworkResult:
        """Simulate every node at its effective rate.

        Nodes are independent, so with ``workers > 1`` their
        simulations are submitted through the :mod:`repro.runtime`
        process pool.  With ``shards > 1`` the node set is partitioned
        by :func:`repro.runtime.sharding.partition_indices` and each
        shard runs as one coarse worker-group task whose
        :class:`NetworkResult` is folded in via
        :meth:`NetworkResult.merge` — the scaling path for
        hundreds-of-node topologies, where per-node task dispatch
        overhead would dominate.

        Per-node seeds are fixed *before* distribution and keyed by
        node index (``seed + node_index`` in the default ``"legacy"``
        mode, :meth:`~numpy.random.SeedSequence.spawn` children with
        ``seed_mode="spawn"``), so results are identical for any
        ``workers``, ``shards`` and ``shard_strategy``; ``shards=1``
        is bit-identical to the historical serial path.

        ``backend`` selects *where* node/shard tasks run — an explicit
        :class:`~repro.runtime.backend.Backend`, e.g. a
        :class:`~repro.runtime.remote.SocketBackend` over remote
        worker hosts.  Tasks are picklable data with their seeds
        inside, so the backend can never change the numbers either.

        ``store`` memoizes *per-node* results in a
        :class:`~repro.runtime.store.ResultStore` keyed by ``(node
        params incl. effective rate, workload, horizon, node seed)`` —
        node granularity means any topology, shard count or threshold
        sweep reuses every node simulation it shares with an earlier
        run.

        ``exec_cfg`` — an
        :class:`~repro.runtime.config.ExecutionConfig` (or resolved
        :class:`~repro.runtime.config.ResolvedExecution`) — supplies
        ``workers`` / ``shards`` / ``shard_strategy`` / ``seed_mode`` /
        ``backend`` / ``store`` in one object; mutually exclusive with
        passing them individually.
        """
        from ..runtime.config import resolve_execution
        from ..runtime.executor import ParallelExecutor
        from ..runtime.sharding import (
            map_shards,
            partition_indices,
            shard_node_seeds,
        )
        from ..runtime.store import cached_map

        rx = resolve_execution(
            exec_cfg,
            workers=workers,
            shards=shards,
            shard_strategy=shard_strategy,
            seed_mode=seed_mode,
            backend=backend,
            store=store,
        )
        workers, shards, backend = rx.workers, rx.shards, rx.backend
        shard_strategy, seed_mode, store = (
            rx.shard_strategy,
            rx.seed_mode,
            rx.store,
        )
        if horizon <= 0:
            raise ValueError("horizon must be > 0")
        rates = self.topology.effective_rates(base_rate)
        estimator = NodeLifetimeEstimator(self.battery)
        seeds = shard_node_seeds(seed, len(rates), mode=seed_mode)
        if self.dynamics is not None:
            # Churn: the whole schedule — failures, rewired trees,
            # per-epoch rates, per-segment seeds — is fixed here in
            # the parent, so the worker tasks below stay a pure
            # function of their own contents.
            schedule = self.dynamics.schedule(
                self.topology, base_rate, horizon, seed
            )
            task_fn = simulate_node_segments_task
            tasks = [
                (
                    self.params,
                    self.workload,
                    self.traffic,
                    schedule.node_segments(i, seeds[i]),
                )
                for i in range(len(rates))
            ]
        else:
            schedule = None
            task_fn = simulate_node_task
            tasks = [
                (
                    replace(self.params, arrival_rate=rate),
                    self.traffic.workload(rate)
                    if self.traffic is not None
                    else self.workload,
                    horizon,
                    seeds[i],
                )
                for i, rate in enumerate(rates)
            ]

        def summarise(i: int, result) -> NodeSummary:
            if schedule is None:
                return self._summarise(i, rates[i], result, estimator)
            return self._summarise_segments(
                i, tasks[i][3], result, estimator, schedule.failure_time(i)
            )

        if shards == 1:
            results = cached_map(
                ParallelExecutor(workers=workers, backend=backend),
                task_fn,
                tasks,
                store,
            )
            out = NetworkResult(
                topology=self.topology.describe(),
                power_down_threshold=self.params.power_down_threshold,
                horizon_s=horizon,
                nodes=[summarise(i, result) for i, result in enumerate(results)],
            )
        else:
            plan = partition_indices(len(tasks), shards, shard_strategy)
            per_shard = map_shards(
                task_fn,
                tasks,
                plan,
                workers=workers,
                backend=backend,
                store=store,
            )
            shard_results = [
                NetworkResult(
                    topology=self.topology.describe(),
                    power_down_threshold=self.params.power_down_threshold,
                    horizon_s=horizon,
                    nodes=[
                        summarise(i, result)
                        for i, result in zip(shard.node_indices, results)
                    ],
                )
                for shard, results in zip(plan.shards, per_shard)
            ]
            out = NetworkResult.merge(shard_results)
        if schedule is not None:
            out.dynamics = schedule.report()
        return out

    def sweep_thresholds(
        self,
        thresholds: list[float] | tuple[float, ...],
        horizon: float,
        seed: int = 0,
        base_rate: float = 1.0,
        workers: int = 1,
        shards: int = 1,
        shard_strategy: str = "contiguous",
        seed_mode: str = "legacy",
        backend=None,
        store=None,
        *,
        exec_cfg=None,
    ) -> list[NetworkResult]:
        """Network result per threshold (network-lifetime optimisation).

        ``workers`` parallelises across the nodes (or, with
        ``shards > 1``, the shards) of each network run; the threshold
        points themselves are processed in order so each
        :class:`NetworkResult` is complete before the next starts.
        ``exec_cfg`` bundles the execution keywords as in
        :meth:`simulate`.
        """
        from ..runtime.config import resolve_execution

        rx = resolve_execution(
            exec_cfg,
            workers=workers,
            shards=shards,
            shard_strategy=shard_strategy,
            seed_mode=seed_mode,
            backend=backend,
            store=store,
        )
        workers, shards, backend = rx.workers, rx.shards, rx.backend
        shard_strategy, seed_mode, store = (
            rx.shard_strategy,
            rx.seed_mode,
            rx.store,
        )
        out: list[NetworkResult] = []
        for t in thresholds:
            model = SensorNetworkModel(
                self.topology,
                replace(self.params, power_down_threshold=t),
                self.battery,
                self.workload,
                dynamics=self.dynamics,
                traffic=self.traffic,
            )
            out.append(
                model.simulate(
                    horizon,
                    seed=seed,
                    base_rate=base_rate,
                    workers=workers,
                    shards=shards,
                    shard_strategy=shard_strategy,
                    seed_mode=seed_mode,
                    backend=backend,
                    store=store,
                )
            )
        return out
