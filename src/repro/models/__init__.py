"""``repro.models`` — the paper's four models on top of the substrates.

* :mod:`repro.models.cpu_petri` — Fig. 3 EDSPN CPU model (Table I);
* :mod:`repro.models.cpu_markov` — the closed-form Markov CPU estimator
  with the shared comparison interface;
* :mod:`repro.models.simple_node` — Fig. 10 simple IMote2 duty cycle
  (Tables VII–IX validation);
* :mod:`repro.models.wsn_node` — Figs. 12/13 full node SCPN with CPU +
  radio + DVS and closed/open workload generators (Tables III, XI, XII);
* :mod:`repro.models.dvs` / :mod:`repro.models.workload` — shared
  building blocks.
"""

from .cpu_markov import CPUMarkovModel
from .cpu_petri import CPUPetriModel, build_cpu_petri_net
from .dvs import (
    DEFAULT_DVS_CLASSES,
    DVS_CLASS_1,
    DVS_CLASS_2,
    DVS_CLASS_3,
    DVS_MODE_SWITCH_DELAY_S,
    DVSClass,
)
from .network import (
    GridTopology,
    LineTopology,
    NetworkResult,
    NetworkTopology,
    NodeSummary,
    SensorNetworkModel,
    StarTopology,
)
from .simple_node import SimpleNodeModel, SimpleNodeParameters, SimpleNodeResult
from .workload import (
    ClosedWorkload,
    MMPPWorkload,
    OpenWorkload,
    TraceWorkload,
    WorkloadGenerator,
)
from .wsn_node import (
    NodeParameters,
    WSNNodeModel,
    WSNNodeResult,
    build_wsn_node_net,
)

__all__ = [
    "CPUPetriModel",
    "build_cpu_petri_net",
    "CPUMarkovModel",
    "SimpleNodeModel",
    "SimpleNodeParameters",
    "SimpleNodeResult",
    "WSNNodeModel",
    "WSNNodeResult",
    "NodeParameters",
    "build_wsn_node_net",
    "DVSClass",
    "DVS_CLASS_1",
    "DVS_CLASS_2",
    "DVS_CLASS_3",
    "DEFAULT_DVS_CLASSES",
    "DVS_MODE_SWITCH_DELAY_S",
    "WorkloadGenerator",
    "OpenWorkload",
    "ClosedWorkload",
    "TraceWorkload",
    "MMPPWorkload",
    "SensorNetworkModel",
    "NetworkTopology",
    "LineTopology",
    "StarTopology",
    "GridTopology",
    "NetworkResult",
    "NodeSummary",
]
