"""The Fig. 3 CPU Petri-net model (EDSPN, Table I parameters).

An open workload generator feeds jobs into ``CPU_Buffer``; the CPU
cycles through four power states held by explicit places:

* ``Stand_By`` (initial) — low-power sleep.
* ``Power_Up`` — deterministic wake-up (``Power_Up_Delay``).
* ``Idle`` — on, buffer empty.
* ``Active`` — serving a job (exponential ``Service_Rate``).

Transitions (paper's Table I):

==============  ============== ======== ==========================
name            distribution    priority semantics
==============  ============== ======== ==========================
Arrival_Rate    Exponential(λ)  —       open workload generator
T1              immediate       4        Stand_By → Power_Up on job
Power_Up_Delay  Deterministic   —       Power_Up → Idle after D
T2              immediate       1        Idle → Active on job
Service_Rate    Exponential(μ)  —       Active (+job) → Idle
PDT             Deterministic   —       Idle → Stand_By after T idle
==============  ============== ======== ==========================

The ``Power_Down_Threshold`` transition runs under *enabling memory*
with global guard ``#CPU_Buffer == 0``: a job arriving while idle
disables the guard and cancels the timer, exactly the reset-on-arrival
behaviour the Markov model needs supplementary variables to express.

Steady-state probabilities are the occupancies of the four state
places; a zero-duration ``Idle`` visit between back-to-back services
costs no time, so ``Active``/``Idle`` splits are exact.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.structural import check_model_invariants
from ..core.distributions import Deterministic, Exponential
from ..core.guards import tokens_eq, tokens_gt
from ..core.net import PetriNet
from ..core.simulator import Simulation, SimulationResult
from ..des.cpu import CPUSimResult, CPUStates

__all__ = ["CPUPetriModel", "build_cpu_petri_net"]

#: Place names of the four power states, in the paper's order.
STATE_PLACES = {
    CPUStates.STANDBY: "Stand_By",
    CPUStates.POWERUP: "Power_Up",
    CPUStates.IDLE: "Idle",
    CPUStates.ACTIVE: "Active",
}


def build_cpu_petri_net(
    arrival_rate: float,
    service_rate: float,
    power_down_threshold: float,
    power_up_delay: float,
) -> PetriNet:
    """Construct the Fig. 3 net with the given timing parameters."""
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("arrival_rate and service_rate must be > 0")
    if power_down_threshold < 0 or power_up_delay < 0:
        raise ValueError("threshold and delay must be >= 0")
    net = PetriNet("fig3-cpu")
    net.add_place("P0", initial_tokens=1, description="workload self-loop")
    net.add_place("CPU_Buffer", description="pending jobs")
    net.add_place("Stand_By", initial_tokens=1, description="CPU sleeping")
    net.add_place("Power_Up", description="CPU waking up")
    net.add_place("Idle", description="CPU on, no jobs")
    net.add_place("Active", description="CPU serving")

    net.add_transition(
        "Arrival_Rate",
        Exponential(arrival_rate),
        inputs=["P0"],
        outputs=["P0", "CPU_Buffer"],
        description="open workload generator",
    )
    net.add_transition(
        "T1",
        inputs=["Stand_By"],
        outputs=["Power_Up"],
        guard=tokens_gt("CPU_Buffer", 0),
        priority=4,
        description="wake on job arrival",
    )
    net.add_transition(
        "Power_Up_Delay",
        Deterministic(power_up_delay),
        inputs=["Power_Up"],
        outputs=["Idle"],
        description="deterministic wake-up",
    )
    net.add_transition(
        "T2",
        inputs=["Idle"],
        outputs=["Active"],
        guard=tokens_gt("CPU_Buffer", 0),
        priority=1,
        description="start service when on and jobs pending",
    )
    net.add_transition(
        "Service_Rate",
        Exponential(service_rate),
        inputs=["Active", "CPU_Buffer"],
        outputs=["Idle"],
        description="exponential service of one job",
    )
    net.add_transition(
        "Power_Down_Threshold",
        Deterministic(power_down_threshold),
        inputs=["Idle"],
        outputs=["Stand_By"],
        guard=tokens_eq("CPU_Buffer", 0),
        description="sleep after T of uninterrupted idleness",
    )
    # The CPU state token is conserved across the four state places.
    check_model_invariants(
        net,
        [("cpu-state-token", ["Stand_By", "Power_Up", "Idle", "Active"])],
    )
    return net


@dataclass
class CPUPetriModel:
    """Parameterised Fig. 3 model with a simulate-and-summarise API.

    Parameters mirror :class:`~repro.des.cpu.CPUPowerStateSimulator` so
    the comparison harness can treat the three estimators uniformly.
    """

    arrival_rate: float
    service_rate: float
    power_down_threshold: float
    power_up_delay: float

    def build(self) -> PetriNet:
        """A fresh net with this parameterisation."""
        return build_cpu_petri_net(
            self.arrival_rate,
            self.service_rate,
            self.power_down_threshold,
            self.power_up_delay,
        )

    def simulate(
        self,
        horizon: float,
        seed: int | None = None,
        warmup: float = 0.0,
    ) -> CPUSimResult:
        """Run the net and summarise state-time fractions.

        Returns the same :class:`~repro.des.cpu.CPUSimResult` shape the
        DES produces, so downstream energy code is estimator-agnostic.
        """
        net = self.build()
        sim = Simulation(net, seed=seed, warmup=warmup)
        result: SimulationResult = sim.run(horizon)
        return self._summarise(result, warmup)

    def simulate_ensemble(
        self,
        horizon: float,
        seeds,
        warmup: float = 0.0,
    ) -> list[CPUSimResult]:
        """All seeds of one sweep point through the vectorized engine.

        Bit-identical to ``[self.simulate(horizon, seed=s,
        warmup=warmup) for s in seeds]`` (see :mod:`repro.core.fast`),
        but run in lockstep as one NumPy ensemble.
        """
        from ..core.fast import run_ensemble

        results = run_ensemble(self.build(), horizon, seeds, warmup=warmup)
        return [self._summarise(r, warmup) for r in results]

    def _summarise(self, result: SimulationResult, warmup: float) -> CPUSimResult:
        fractions = {
            state: result.occupancy(place)
            for state, place in STATE_PLACES.items()
        }
        duration = result.end_time - warmup
        dwell = {s: f * duration for s, f in fractions.items()}
        return CPUSimResult(
            fractions=fractions,
            dwell=dwell,
            duration=duration,
            jobs_arrived=result.stats.firing_count("Arrival_Rate"),
            jobs_served=result.stats.firing_count("Service_Rate"),
            wakeups=result.stats.firing_count("T1"),
        )
