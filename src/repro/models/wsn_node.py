"""The Figs. 12/13 full WSN-node SCPN models (closed and open workload).

One event cycle (the paper's Wait/Receiving/Computation/Transmitting
stages, Table XI timing):

1. ``Wait`` — an event arrives (closed: drawn only while waiting;
   open: anytime, queueing).
2. **Receiving** — radio wakes (``RadioStartUpDelay_R`` 0.000194 s),
   listens for a slot (``Channel_Listening`` 0.001 s), receives the
   message (``Transmitting_Receiving`` 0.000576 s per packet), then the
   CPU is handed an *error-check* job (DVS class 2).
3. **Computation** — the CPU runs the main event computation (DVS
   class 3) while the radio idles.
4. **Transmitting** — radio wakes again, listens, transmits, goes to
   sleep; the CPU gets a *post-transmit housekeeping* job (DVS class 1)
   before the system returns to ``Wait``.

The CPU sleeps/wakes **independently** of the stage pipeline: any token
in ``Buffer`` wakes it (deterministic 0.253 s power-up) and it drops
back to sleep after ``Power_Down_Threshold`` seconds of uninterrupted
idleness (Table XI guard ``#Buffer == 0 && #Idle > 0``, enabling
memory).  Every job pays the ``DVS_Delay`` (0.05 s) mode switch and its
class's execution time, dispatched by token-colour local guards exactly
as the paper describes.

Reconstruction choices (the paper prints Table XI but not full arc
lists) are documented in DESIGN.md §5.  The structurally load-bearing
one: with ``com_packets = 1`` the radio phase lasts
0.000194 + 0.001 + 0.000576 = **0.00177 s** — precisely the paper's
closed-model optimum ``Power_Down_Threshold``, because a threshold just
above the transmit phase is what saves the CPU one wake-up per cycle.

Energy accounting follows Table III (PXA271 CPU + CC2420 radio) and the
radio wake-up cost is identical from sleep or idle (stated in
Section VI-A).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, replace

from ..analysis.structural import check_model_invariants
from ..core.arcs import FiringContext, OutputArc
from ..core.distributions import Deterministic
from ..core.guards import color_eq, tokens_eq, tokens_gt
from ..core.net import PetriNet
from ..core.simulator import Simulation
from ..energy.accounting import NodeEnergyAccount
from ..energy.breakdown import EnergyBreakdown
from ..energy.power import (
    PowerStateTable,
    cpu_power_table,
    radio_power_table,
)
from .dvs import DEFAULT_DVS_CLASSES, DVS_MODE_SWITCH_DELAY_S, DVSClass
from .workload import ClosedWorkload, OpenWorkload, WorkloadGenerator

__all__ = [
    "NodeParameters",
    "WSNNodeResult",
    "WSNNodeModel",
    "build_wsn_node_net",
    "simulate_node_task",
    "simulate_node_ensemble_task",
]


def simulate_node_task(
    task: "tuple[NodeParameters, str, float, int]",
) -> "WSNNodeResult":
    """One seeded node simulation from a picklable task tuple.

    The shared worker function for every :mod:`repro.runtime` fan-out
    over node simulations (threshold sweeps, network nodes):
    ``task = (params, workload, horizon, seed)``.
    """
    params, workload, horizon, seed = task
    return WSNNodeModel(params, workload).simulate(horizon, seed=seed)


def simulate_node_ensemble_task(
    task: "tuple[NodeParameters, str, float, tuple[int, ...]]",
) -> "list[WSNNodeResult]":
    """All replications of one node sweep point, vectorized.

    The ``engine="vectorized"`` counterpart of
    :func:`simulate_node_task`: ``task = (params, workload, horizon,
    seeds)`` and the whole seed tuple runs in lockstep through
    :func:`repro.core.fast.run_ensemble`, returning one
    :class:`WSNNodeResult` per seed — bit-identical to mapping
    :func:`simulate_node_task` over the seeds.
    """
    params, workload, horizon, seeds = task
    return WSNNodeModel(params, workload).simulate_ensemble(horizon, seeds)


#: System-stage places in pipeline order.
STAGE_PLACES = (
    "Wait",
    "RxStartup",
    "RxListen",
    "RxComm",
    "RxCheck",
    "Computation",
    "TxStartup",
    "TxListen",
    "TxComm",
    "TxCheck",
)

#: CPU-state token places (one token circulates).
CPU_PLACES = ("CPU_Sleep", "CPU_PowerUp", "CPU_Idle", "DVS_Wait", "Execute")

#: Radio-state token places (one token circulates).
RADIO_PLACES = ("Radio_Sleep", "Radio_PowerUp", "Radio_Active", "Radio_Idle")


@dataclass(frozen=True)
class NodeParameters:
    """Table XI timing parameters plus the swept threshold.

    All times in seconds; defaults are the paper's.
    """

    power_down_threshold: float = 0.01
    arrival_rate: float = 1.0
    radio_startup_delay: float = 0.000194
    channel_listening: float = 0.001
    transmit_receive: float = 0.000576
    cpu_power_up_delay: float = 0.253
    dvs_mode_switch: float = DVS_MODE_SWITCH_DELAY_S
    com_packets: int = 1
    dvs_classes: tuple[DVSClass, ...] = tuple(DEFAULT_DVS_CLASSES.values())

    def __post_init__(self) -> None:
        if self.power_down_threshold < 0:
            raise ValueError("power_down_threshold must be >= 0")
        if self.arrival_rate <= 0:
            raise ValueError("arrival_rate must be > 0")
        if self.com_packets < 1:
            raise ValueError("com_packets must be >= 1")
        ids = [c.class_id for c in self.dvs_classes]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate DVS class ids: {ids}")
        needed = {1, 2, 3}
        if not needed <= set(ids):
            raise ValueError(
                f"node model needs DVS classes {sorted(needed)}, got {sorted(ids)}"
            )

    def radio_phase_duration(self) -> float:
        """Startup + listening + per-packet transfer: one radio burst."""
        return (
            self.radio_startup_delay
            + self.channel_listening
            + self.com_packets * self.transmit_receive
        )

    def with_threshold(self, pdt: float) -> "NodeParameters":
        """Copy with a different ``power_down_threshold`` (sweep helper)."""
        return replace(self, power_down_threshold=pdt)

    def dvs_class(self, class_id: int) -> DVSClass:
        """Look up a DVS class by id."""
        for c in self.dvs_classes:
            if c.class_id == class_id:
                return c
        raise KeyError(f"no DVS class {class_id}")


def _black(ctx: FiringContext) -> None:
    """Output-token producer: always a plain (colourless) token."""
    return None


# Purity annotations for repro.core.fast (see compile.py): _black always
# deposits the colourless token; _buffer_color echoes the colour of the
# single token consumed from Buffer.
_black.fast_static_color = None


def _buffer_color(ctx: FiringContext) -> object:
    """Forward the DVS class colour of the dispatched buffer job."""
    return ctx.consumed["Buffer"][0].color


_buffer_color.fast_forward_place = "Buffer"


def build_wsn_node_net(
    params: NodeParameters,
    workload: WorkloadGenerator,
) -> PetriNet:
    """Construct the closed (Fig. 12) or open (Fig. 13) node net.

    The workload generator decides which figure this is; everything
    else is shared, mirroring how close the two figures are in the
    paper.
    """
    p = params
    net = PetriNet("wsn-node")

    # -- places ---------------------------------------------------------
    for stage in STAGE_PLACES:
        net.add_place(stage, initial_tokens=1 if stage == "Wait" else 0)
    net.add_place("Event_Queue", description="pending external events")
    net.add_place("Radio_Sleep", initial_tokens=1)
    net.add_place("Radio_PowerUp")
    net.add_place("Radio_Active")
    net.add_place("Radio_Idle")
    net.add_place("CPU_Sleep", initial_tokens=1)
    net.add_place("CPU_PowerUp")
    net.add_place("CPU_Idle")
    net.add_place("DVS_Wait", description="job switching DVS mode")
    net.add_place("Execute", description="job executing at its DVS level")
    net.add_place("Buffer", description="CPU job queue (colour = DVS class)")
    net.add_place("JobComplete", description="finished jobs (colour = class)")
    net.add_place("RxPackets")
    net.add_place("RxDonePk")
    net.add_place("TxPackets")
    net.add_place("TxDonePk")

    # -- workload --------------------------------------------------------
    workload.attach(net, "Event_Queue")

    # -- receive phase ---------------------------------------------------
    net.add_transition(
        "Start_Receive",
        inputs=["Wait", "Event_Queue", "Radio_Sleep"],
        outputs=["RxStartup", "Radio_PowerUp"],
        priority=3,
        description="event begins a cycle; radio starts waking",
    )
    net.add_transition(
        "RadioStartUpDelay_R",
        Deterministic(p.radio_startup_delay),
        inputs=["RxStartup", "Radio_PowerUp"],
        outputs=["RxListen", "Radio_Active"],
    )
    net.add_transition(
        "Channel_Listening_R",
        Deterministic(p.channel_listening),
        inputs=["RxListen"],
        outputs=["RxComm", ("RxPackets", p.com_packets)],
    )
    net.add_transition(
        "Transmitting_Receiving_R",
        Deterministic(p.transmit_receive),
        inputs=["RxPackets"],
        outputs=["RxDonePk"],
        description="per-packet reception",
    )
    net.add_transition(
        "T17",
        inputs=["RxComm", ("RxDonePk", p.com_packets), "Radio_Active"],
        outputs=[
            "RxCheck",
            OutputArc("Buffer", color=2),
            "Radio_Idle",
        ],
        priority=3,
        description="reception done: radio idles, CPU error-checks (class 2)",
    )

    # -- computation phase -------------------------------------------------
    net.add_transition(
        "T7",
        inputs=["RxCheck", ("JobComplete", 1, color_eq(2))],
        outputs=["Computation", OutputArc("Buffer", color=3)],
        priority=1,
        description="error check done: main computation job (class 3)",
    )

    # -- transmit phase ----------------------------------------------------
    net.add_transition(
        "T19",
        inputs=["Computation", ("JobComplete", 1, color_eq(3)), "Radio_Idle"],
        outputs=["TxStartup", "Radio_PowerUp"],
        priority=3,
        description="computation done: radio wakes for transmission",
    )
    net.add_transition(
        "RadioStartUpDelay_T",
        Deterministic(p.radio_startup_delay),
        inputs=["TxStartup", "Radio_PowerUp"],
        outputs=["TxListen", "Radio_Active"],
    )
    net.add_transition(
        "Channel_Listening_T",
        Deterministic(p.channel_listening),
        inputs=["TxListen"],
        outputs=["TxComm", ("TxPackets", p.com_packets)],
    )
    net.add_transition(
        "Transmitting_Receiving_T",
        Deterministic(p.transmit_receive),
        inputs=["TxPackets"],
        outputs=["TxDonePk"],
        description="per-packet transmission",
    )
    net.add_transition(
        "Wait_Transmitting",
        inputs=["TxComm", ("TxDonePk", p.com_packets), "Radio_Active"],
        outputs=[
            "TxCheck",
            OutputArc("Buffer", color=1),
            "Radio_Sleep",
        ],
        priority=3,
        description="transmission done: radio sleeps, CPU housekeeping (class 1)",
    )
    net.add_transition(
        "Wait_Begin",
        inputs=["TxCheck", ("JobComplete", 1, color_eq(1))],
        outputs=["Wait"],
        priority=3,
        description="housekeeping done: back to Wait",
    )

    # -- CPU sleep/wake + DVS pipeline --------------------------------------
    net.add_transition(
        "T3",
        inputs=["CPU_Sleep"],
        outputs=["CPU_PowerUp"],
        guard=tokens_gt("Buffer", 0),
        priority=2,
        description="any buffered job wakes the CPU",
    )
    net.add_transition(
        "Power_Up_Delay",
        Deterministic(p.cpu_power_up_delay),
        inputs=["CPU_PowerUp"],
        outputs=["CPU_Idle"],
    )
    net.add_transition(
        "Dispatch",
        inputs=["CPU_Idle", "Buffer"],
        outputs=[OutputArc("DVS_Wait", producer=_buffer_color)],
        priority=2,
        description="idle CPU picks the oldest buffered job",
    )
    net.add_transition(
        "DVS_Delay",
        Deterministic(p.dvs_mode_switch),
        inputs=["DVS_Wait"],
        outputs=["Execute"],
        description="voltage/frequency mode switch",
    )
    for cls in p.dvs_classes:
        net.add_transition(
            cls.transition_name,
            Deterministic(cls.execute_delay_s),
            inputs=[("Execute", 1, color_eq(cls.class_id))],
            outputs=[
                OutputArc("CPU_Idle", producer=_black),
                OutputArc("JobComplete", color=cls.class_id),
            ],
            description=f"execute class-{cls.class_id} job ({cls.description})",
        )
    net.add_transition(
        "Power_Down_Threshold",
        Deterministic(p.power_down_threshold),
        inputs=["CPU_Idle"],
        outputs=[OutputArc("CPU_Sleep", producer=_black)],
        guard=tokens_eq("Buffer", 0),
        description="sleep after uninterrupted idleness (enabling memory)",
    )

    check_model_invariants(
        net,
        [
            ("cpu-state-token", list(CPU_PLACES)),
            ("radio-state-token", list(RADIO_PLACES)),
            ("system-stage-token", list(STAGE_PLACES)),
        ],
    )
    return net


@dataclass
class WSNNodeResult:
    """Everything one node run reports (the Figs. 14/15 quantities)."""

    power_down_threshold: float
    duration: float
    cpu_fractions: dict[str, float]
    radio_fractions: dict[str, float]
    stage_fractions: dict[str, float]
    events_completed: int
    cpu_wakeups: int
    radio_wakeups: int
    breakdown: EnergyBreakdown

    @property
    def total_energy_j(self) -> float:
        """Node energy over the run, Joules."""
        return self.breakdown.total_j()


class WSNNodeModel:
    """Simulatable node model with energy accounting.

    Parameters
    ----------
    params:
        Timing parameters (Table XI defaults + the swept threshold).
    workload:
        ``"closed"`` (Fig. 12), ``"open"`` (Fig. 13) or any custom
        :class:`~repro.models.workload.WorkloadGenerator`.
    cpu_table / radio_table:
        Power tables; Table III defaults.
    """

    def __init__(
        self,
        params: NodeParameters,
        workload: str | WorkloadGenerator = "closed",
        cpu_table: PowerStateTable | None = None,
        radio_table: PowerStateTable | None = None,
    ) -> None:
        self.params = params
        if isinstance(workload, str):
            if workload == "closed":
                self.workload: WorkloadGenerator = ClosedWorkload(
                    params.arrival_rate, wait_place="Wait"
                )
            elif workload == "open":
                self.workload = OpenWorkload(params.arrival_rate)
            else:
                raise ValueError(
                    f"workload must be 'closed', 'open' or a generator, "
                    f"got {workload!r}"
                )
        else:
            self.workload = workload
        self.cpu_table = cpu_table if cpu_table is not None else cpu_power_table()
        self.radio_table = (
            radio_table if radio_table is not None else radio_power_table()
        )

    def build(self) -> PetriNet:
        """A fresh net for this parameterisation."""
        return build_wsn_node_net(self.params, self.workload)

    # -- state predicates -------------------------------------------------
    @staticmethod
    def _cpu_active(view) -> bool:
        return view.count("DVS_Wait") + view.count("Execute") > 0

    def simulate(
        self,
        horizon: float,
        seed: int | None = None,
        warmup: float = 0.0,
    ) -> WSNNodeResult:
        """Run the node for ``horizon`` seconds and account energy."""
        net = self.build()
        sim = Simulation(net, seed=seed, warmup=warmup)
        sim.add_predicate("cpu_active", self._cpu_active)
        result = sim.run(horizon)
        return self._account(result, warmup)

    def simulate_ensemble(
        self,
        horizon: float,
        seeds: "Sequence[int | None]",
        warmup: float = 0.0,
    ) -> list[WSNNodeResult]:
        """All replications of one sweep point through the fast engine.

        Runs every seed in lockstep via
        :func:`repro.core.fast.run_ensemble` and accounts energy with
        the exact post-processing of :meth:`simulate`, so the returned
        list is bit-identical to ``[self.simulate(horizon, seed=s,
        warmup=warmup) for s in seeds]``.
        """
        from ..core.fast import VectorPredicate, run_ensemble

        results = run_ensemble(
            self.build(),
            horizon,
            seeds,
            warmup=warmup,
            predicates={"cpu_active": VectorPredicate(self._cpu_active)},
        )
        return [self._account(r, warmup) for r in results]

    def _account(self, result, warmup: float) -> WSNNodeResult:
        """Turn one engine result into the Figs. 14/15 quantities."""
        duration = result.end_time - warmup

        cpu_fractions = {
            "standby": result.occupancy("CPU_Sleep"),
            "powerup": result.occupancy("CPU_PowerUp"),
            "idle": result.occupancy("CPU_Idle"),
            "active": result.predicate_probability("cpu_active"),
        }
        radio_fractions = {
            "standby": result.occupancy("Radio_Sleep"),
            "powerup": result.occupancy("Radio_PowerUp"),
            "active": result.occupancy("Radio_Active"),
            "idle": result.occupancy("Radio_Idle"),
        }
        stage_fractions = {
            stage: result.occupancy(stage) for stage in STAGE_PLACES
        }

        account = NodeEnergyAccount()
        cpu_acc = account.add_component("cpu", self.cpu_table)
        radio_acc = account.add_component("radio", self.radio_table)
        for state, frac in cpu_fractions.items():
            cpu_acc.credit(state, frac * duration)
        for state, frac in radio_fractions.items():
            radio_acc.credit(state, frac * duration)
        breakdown = EnergyBreakdown.from_component_states(account.breakdown_j())

        radio_wakeups = result.stats.firing_count(
            "Start_Receive"
        ) + result.stats.firing_count("T19")
        return WSNNodeResult(
            power_down_threshold=self.params.power_down_threshold,
            duration=duration,
            cpu_fractions=cpu_fractions,
            radio_fractions=radio_fractions,
            stage_fractions=stage_fractions,
            events_completed=result.stats.firing_count("Wait_Begin"),
            cpu_wakeups=result.stats.firing_count("T3"),
            radio_wakeups=radio_wakeups,
            breakdown=breakdown,
        )
