"""Workload generators: the paper's open and closed event sources.

The distinction (Section VI):

* **Open** — events arrive by an exponential clock *independently of
  the system state* (Fig. 13's ``T0`` with places ``P2`` and
  ``Event_Arrival``): bursts can queue while the node is busy.
* **Closed** — the generator waits for the system to return to its
  ``Wait`` state before drawing the next event (Fig. 12's ``T0`` with
  global guard ``#Wait > 0``): exactly one event is in flight.

Both are implemented as subnet attachments: given a target
:class:`~repro.core.net.PetriNet` and the name of the place where event
tokens should appear, ``attach()`` adds the generator places and
transitions.  A trace-driven generator replays recorded event times via
an :class:`~repro.core.distributions.Empirical` inter-arrival
distribution.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.distributions import Empirical, Exponential
from ..core.guards import TRUE, Guard, tokens_gt
from ..core.net import PetriNet

__all__ = [
    "WorkloadGenerator",
    "OpenWorkload",
    "ClosedWorkload",
    "TraceWorkload",
    "MMPPWorkload",
]


class WorkloadGenerator:
    """Base class: a subnet that emits event tokens into a place."""

    #: Name of the transition that emits events (for throughput stats).
    emit_transition: str = "T0"

    def attach(self, net: PetriNet, event_place: str) -> None:
        """Add this generator's places/transitions to ``net``.

        ``event_place`` must already exist; one token is deposited there
        per generated event.
        """
        raise NotImplementedError

    def mean_interarrival(self) -> float:
        """Mean gap between generated events (seconds)."""
        raise NotImplementedError


@dataclass
class OpenWorkload(WorkloadGenerator):
    """Poisson event source firing regardless of system state (Fig. 13).

    Parameters
    ----------
    rate:
        Events per second (the figures use 1 event/s).
    source_place:
        Name for the self-loop place (the paper's ``P2``).
    """

    rate: float
    source_place: str = "P2"
    emit_transition: str = "T0"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def attach(self, net: PetriNet, event_place: str) -> None:
        net.add_place(self.source_place, initial_tokens=1)
        net.add_transition(
            self.emit_transition,
            Exponential(self.rate),
            inputs=[self.source_place],
            outputs=[self.source_place, event_place],
            description="open workload generator (fires independently)",
        )

    def mean_interarrival(self) -> float:
        return 1.0 / self.rate


@dataclass
class ClosedWorkload(WorkloadGenerator):
    """Event source gated on the system being in ``Wait`` (Fig. 12).

    Parameters
    ----------
    rate:
        Rate of the exponential think time drawn once the system is
        back in ``Wait``.
    wait_place:
        Name of the system's wait-state place for the ``#Wait > 0``
        global guard (Table XI's guard on ``T0``).
    source_place:
        Name for the generator's self-loop place (the paper's ``P0``
        feeds the system; we keep a separate ``Gen`` place so the event
        token itself can be consumed downstream).
    """

    rate: float
    wait_place: str = "Wait"
    source_place: str = "Gen"
    emit_transition: str = "T0"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def attach(self, net: PetriNet, event_place: str) -> None:
        net.add_place(self.source_place, initial_tokens=1)
        net.add_transition(
            self.emit_transition,
            Exponential(self.rate),
            inputs=[self.source_place],
            outputs=[self.source_place, event_place],
            guard=tokens_gt(self.wait_place, 0),
            description="closed workload generator (guard: #Wait > 0)",
        )

    def mean_interarrival(self) -> float:
        """Think-time mean only — the effective cycle adds service time."""
        return 1.0 / self.rate


@dataclass
class MMPPWorkload(WorkloadGenerator):
    """Bursty open source: a 2-state Markov-modulated Poisson process.

    A modulating token alternates between ``BurstOn`` and ``BurstOff``
    via exponential dwell times (means ``mean_on_s`` / ``mean_off_s``);
    events are emitted at ``rate_on`` while the token sits in
    ``BurstOn`` and at ``rate_off`` (often 0 — the classic on-off /
    interrupted-Poisson source) in ``BurstOff``.  Like
    :class:`OpenWorkload` it fires regardless of system state, so
    bursts queue while the node is busy — which is exactly the regime
    where a bursty arrival stream stresses a ``Power_Down_Threshold``
    policy differently from a Poisson stream of the same mean rate.

    All four parameters are plain data; use
    :meth:`repro.topology.MMPPTraffic.workload` to build one that
    preserves a target mean rate.
    """

    rate_on: float
    rate_off: float
    mean_on_s: float
    mean_off_s: float
    on_place: str = "BurstOn"
    off_place: str = "BurstOff"
    emit_transition: str = "T0"

    def __post_init__(self) -> None:
        if self.rate_on <= 0:
            raise ValueError(f"rate_on must be > 0, got {self.rate_on}")
        if self.rate_off < 0:
            raise ValueError(f"rate_off must be >= 0, got {self.rate_off}")
        if self.mean_on_s <= 0 or self.mean_off_s <= 0:
            raise ValueError(
                "burst dwell times must be > 0, got "
                f"on={self.mean_on_s}, off={self.mean_off_s}"
            )

    def attach(self, net: PetriNet, event_place: str) -> None:
        net.add_place(self.on_place, initial_tokens=1)
        net.add_place(self.off_place)
        net.add_transition(
            self.emit_transition,
            Exponential(self.rate_on),
            inputs=[self.on_place],
            outputs=[self.on_place, event_place],
            description="MMPP generator, burst (ON) state",
        )
        if self.rate_off > 0:
            net.add_transition(
                f"{self.emit_transition}_off",
                Exponential(self.rate_off),
                inputs=[self.off_place],
                outputs=[self.off_place, event_place],
                description="MMPP generator, quiet (OFF) state",
            )
        net.add_transition(
            "Burst_End",
            Exponential(1.0 / self.mean_on_s),
            inputs=[self.on_place],
            outputs=[self.off_place],
            description="modulating chain: ON -> OFF",
        )
        net.add_transition(
            "Burst_Begin",
            Exponential(1.0 / self.mean_off_s),
            inputs=[self.off_place],
            outputs=[self.on_place],
            description="modulating chain: OFF -> ON",
        )

    def mean_rate(self) -> float:
        """Long-run event rate across both modulating states."""
        p_on = self.mean_on_s / (self.mean_on_s + self.mean_off_s)
        return p_on * self.rate_on + (1.0 - p_on) * self.rate_off

    def mean_interarrival(self) -> float:
        return 1.0 / self.mean_rate()


@dataclass
class TraceWorkload(WorkloadGenerator):
    """Replay recorded inter-arrival gaps (empirical resampling).

    Useful for driving the node models with measured event traces; the
    gaps are resampled i.i.d. from the supplied list, preserving the
    marginal distribution (not autocorrelation).
    """

    interarrival_s: Sequence[float]
    source_place: str = "TraceSrc"
    emit_transition: str = "T0"
    guard: Guard = TRUE

    def attach(self, net: PetriNet, event_place: str) -> None:
        net.add_place(self.source_place, initial_tokens=1)
        net.add_transition(
            self.emit_transition,
            Empirical(list(self.interarrival_s)),
            inputs=[self.source_place],
            outputs=[self.source_place, event_place],
            guard=self.guard,
            description="trace-driven workload generator",
        )

    def mean_interarrival(self) -> float:
        vals = list(self.interarrival_s)
        return sum(vals) / len(vals)
