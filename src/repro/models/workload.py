"""Workload generators: the paper's open and closed event sources.

The distinction (Section VI):

* **Open** — events arrive by an exponential clock *independently of
  the system state* (Fig. 13's ``T0`` with places ``P2`` and
  ``Event_Arrival``): bursts can queue while the node is busy.
* **Closed** — the generator waits for the system to return to its
  ``Wait`` state before drawing the next event (Fig. 12's ``T0`` with
  global guard ``#Wait > 0``): exactly one event is in flight.

Both are implemented as subnet attachments: given a target
:class:`~repro.core.net.PetriNet` and the name of the place where event
tokens should appear, ``attach()`` adds the generator places and
transitions.  A trace-driven generator replays recorded event times via
an :class:`~repro.core.distributions.Empirical` inter-arrival
distribution.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..core.distributions import Empirical, Exponential
from ..core.guards import TRUE, Guard, tokens_gt
from ..core.net import PetriNet

__all__ = [
    "WorkloadGenerator",
    "OpenWorkload",
    "ClosedWorkload",
    "TraceWorkload",
]


class WorkloadGenerator:
    """Base class: a subnet that emits event tokens into a place."""

    #: Name of the transition that emits events (for throughput stats).
    emit_transition: str = "T0"

    def attach(self, net: PetriNet, event_place: str) -> None:
        """Add this generator's places/transitions to ``net``.

        ``event_place`` must already exist; one token is deposited there
        per generated event.
        """
        raise NotImplementedError

    def mean_interarrival(self) -> float:
        """Mean gap between generated events (seconds)."""
        raise NotImplementedError


@dataclass
class OpenWorkload(WorkloadGenerator):
    """Poisson event source firing regardless of system state (Fig. 13).

    Parameters
    ----------
    rate:
        Events per second (the figures use 1 event/s).
    source_place:
        Name for the self-loop place (the paper's ``P2``).
    """

    rate: float
    source_place: str = "P2"
    emit_transition: str = "T0"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def attach(self, net: PetriNet, event_place: str) -> None:
        net.add_place(self.source_place, initial_tokens=1)
        net.add_transition(
            self.emit_transition,
            Exponential(self.rate),
            inputs=[self.source_place],
            outputs=[self.source_place, event_place],
            description="open workload generator (fires independently)",
        )

    def mean_interarrival(self) -> float:
        return 1.0 / self.rate


@dataclass
class ClosedWorkload(WorkloadGenerator):
    """Event source gated on the system being in ``Wait`` (Fig. 12).

    Parameters
    ----------
    rate:
        Rate of the exponential think time drawn once the system is
        back in ``Wait``.
    wait_place:
        Name of the system's wait-state place for the ``#Wait > 0``
        global guard (Table XI's guard on ``T0``).
    source_place:
        Name for the generator's self-loop place (the paper's ``P0``
        feeds the system; we keep a separate ``Gen`` place so the event
        token itself can be consumed downstream).
    """

    rate: float
    wait_place: str = "Wait"
    source_place: str = "Gen"
    emit_transition: str = "T0"

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ValueError(f"rate must be > 0, got {self.rate}")

    def attach(self, net: PetriNet, event_place: str) -> None:
        net.add_place(self.source_place, initial_tokens=1)
        net.add_transition(
            self.emit_transition,
            Exponential(self.rate),
            inputs=[self.source_place],
            outputs=[self.source_place, event_place],
            guard=tokens_gt(self.wait_place, 0),
            description="closed workload generator (guard: #Wait > 0)",
        )

    def mean_interarrival(self) -> float:
        """Think-time mean only — the effective cycle adds service time."""
        return 1.0 / self.rate


@dataclass
class TraceWorkload(WorkloadGenerator):
    """Replay recorded inter-arrival gaps (empirical resampling).

    Useful for driving the node models with measured event traces; the
    gaps are resampled i.i.d. from the supplied list, preserving the
    marginal distribution (not autocorrelation).
    """

    interarrival_s: Sequence[float]
    source_place: str = "TraceSrc"
    emit_transition: str = "T0"
    guard: Guard = TRUE

    def attach(self, net: PetriNet, event_place: str) -> None:
        net.add_place(self.source_place, initial_tokens=1)
        net.add_transition(
            self.emit_transition,
            Empirical(list(self.interarrival_s)),
            inputs=[self.source_place],
            outputs=[self.source_place, event_place],
            guard=self.guard,
            description="trace-driven workload generator",
        )

    def mean_interarrival(self) -> float:
        vals = list(self.interarrival_s)
        return sum(vals) / len(vals)
