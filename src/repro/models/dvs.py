"""Dynamic Voltage Scaling task classes (Table XI's ``DVS_1/2/3``).

The paper's node models carry a DVS class as token colour; the class
selects which of the three ``DVS_k`` transitions executes the job
("tokens of different values result in different execution speeds
simulating the change in the operating parameters").  Class delays are
Table XI's:

=====  ==========  =============================
class  delay (s)   role in the node duty cycle
=====  ==========  =============================
1      0.03        post-transmit housekeeping
2      0.01        received-packet error check
3      0.081578    main event computation
=====  ==========  =============================

Every job additionally pays the ``DVS_Delay`` mode-switch overhead
(0.05 s) before execution — the paper's "practical variable voltage
system where the processor stops executing while changing operating
parameters".
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DVSClass",
    "DVS_CLASS_1",
    "DVS_CLASS_2",
    "DVS_CLASS_3",
    "DEFAULT_DVS_CLASSES",
    "DVS_MODE_SWITCH_DELAY_S",
]

#: Table XI ``DVS_Delay``: mode-switch overhead paid before every job (s).
DVS_MODE_SWITCH_DELAY_S: float = 0.05


@dataclass(frozen=True)
class DVSClass:
    """One DVS execution class.

    Attributes
    ----------
    class_id:
        The token colour value (the paper uses 1.0/2.0/3.0; we use the
        integer ids 1/2/3).
    execute_delay_s:
        Deterministic execution time at this voltage/frequency setting.
    description:
        Role of the class in the node duty cycle.
    """

    class_id: int
    execute_delay_s: float
    description: str = ""

    def __post_init__(self) -> None:
        if self.execute_delay_s < 0:
            raise ValueError(
                f"execute_delay_s must be >= 0, got {self.execute_delay_s}"
            )

    @property
    def transition_name(self) -> str:
        """Name of the ``DVS_k`` transition executing this class."""
        return f"DVS_{self.class_id}"

    def total_service_time(
        self, mode_switch_delay: float = DVS_MODE_SWITCH_DELAY_S
    ) -> float:
        """Mode switch + execution (the job's full CPU occupancy)."""
        return mode_switch_delay + self.execute_delay_s


DVS_CLASS_1 = DVSClass(1, 0.03, "post-transmit housekeeping")
DVS_CLASS_2 = DVSClass(2, 0.01, "received-packet error check")
DVS_CLASS_3 = DVSClass(3, 0.081578, "main event computation")

#: The Table XI classes keyed by id.
DEFAULT_DVS_CLASSES: dict[int, DVSClass] = {
    1: DVS_CLASS_1,
    2: DVS_CLASS_2,
    3: DVS_CLASS_3,
}
