"""The Fig. 10 simple sensor-node Petri net (Section V validation).

A single token cycles through the node's operating stages:

    Wait --Job_Arrival(exp, mean 3 s)--> Temp_Place
         --Temp(det 1 s)--> Receiving
         --Receive_Delay(det 0.00597 s)--> Computation
         --Computation_Delay(det 1.0274 s)--> Transmitting
         --Transmit_Delay(det 0.0059 s)--> Wait

``Temp``/``Temp_Place`` encode the IMote2's inability to handle events
less than one second apart (stated in the paper); both count as *wait*
time for energy purposes (Eq. 8 charges ``P_Wait`` for
``p_Wait + p_Temp_Place``).

Transition delays are Table VIII's.  Table VIII/IX print 19.7 % for
``Transmitting``; that is inconsistent with its own 0.0059 s delay in a
≈5.04 s cycle and with the printed energy (0.326519 J), which matches
the consistent ≈0.12 % — see DESIGN.md.  We reproduce the energy and
the consistent probability.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.structural import check_model_invariants
from ..core.distributions import Deterministic, Exponential
from ..core.net import PetriNet
from ..core.simulator import Simulation
from ..energy.power import PowerStateTable, imote2_power_table

__all__ = ["SimpleNodeParameters", "SimpleNodeResult", "SimpleNodeModel"]

#: Stage places in cycle order.
STAGES = ("Wait", "Temp_Place", "Receiving", "Computation", "Transmitting")


@dataclass(frozen=True)
class SimpleNodeParameters:
    """Table VIII timing parameters (seconds)."""

    mean_event_gap: float = 3.0
    min_event_separation: float = 1.0
    receive_delay: float = 0.00597
    computation_delay: float = 1.0274
    transmit_delay: float = 0.0059

    def cycle_time(self) -> float:
        """Expected duration of one full event cycle."""
        return (
            self.mean_event_gap
            + self.min_event_separation
            + self.receive_delay
            + self.computation_delay
            + self.transmit_delay
        )

    def analytic_fractions(self) -> dict[str, float]:
        """Renewal-theoretic stage probabilities (exact for this cycle)."""
        cycle = self.cycle_time()
        return {
            "Wait": self.mean_event_gap / cycle,
            "Temp_Place": self.min_event_separation / cycle,
            "Receiving": self.receive_delay / cycle,
            "Computation": self.computation_delay / cycle,
            "Transmitting": self.transmit_delay / cycle,
        }


@dataclass
class SimpleNodeResult:
    """Simulated stage probabilities and the Eq. (8) energy."""

    stage_probabilities: dict[str, float]
    duration: float
    events: int
    mean_power_mw: float

    @property
    def energy_j(self) -> float:
        """Total energy over ``duration`` in Joules."""
        return self.mean_power_mw * self.duration / 1000.0

    def energy_over(self, duration_s: float) -> float:
        """Energy for an arbitrary duration at the steady mean power."""
        return self.mean_power_mw * duration_s / 1000.0


class SimpleNodeModel:
    """Buildable/simulatable Fig. 10 model.

    Parameters
    ----------
    params:
        Timing parameters (Table VIII defaults).
    power_table:
        Stage power rates; defaults to the measured Table VII values.
        The ``Temp_Place`` stage is charged at the ``wait`` rate.
    """

    #: stage place → power-table state (Eq. 8's grouping).
    STAGE_POWER_STATE = {
        "Wait": "wait",
        "Temp_Place": "wait",
        "Receiving": "receiving",
        "Computation": "computation",
        "Transmitting": "transmitting",
    }

    def __init__(
        self,
        params: SimpleNodeParameters | None = None,
        power_table: PowerStateTable | None = None,
    ) -> None:
        self.params = params if params is not None else SimpleNodeParameters()
        self.power_table = (
            power_table if power_table is not None else imote2_power_table()
        )

    def build(self) -> PetriNet:
        """Construct the Fig. 10 net."""
        p = self.params
        net = PetriNet("fig10-simple-node")
        net.add_place("Wait", initial_tokens=1)
        net.add_place("Temp_Place")
        net.add_place("Receiving")
        net.add_place("Computation")
        net.add_place("Transmitting")
        net.add_transition(
            "Job_Arrival",
            Exponential.from_mean(p.mean_event_gap),
            inputs=["Wait"],
            outputs=["Temp_Place"],
            description="random event trigger",
        )
        net.add_transition(
            "Temp",
            Deterministic(p.min_event_separation),
            inputs=["Temp_Place"],
            outputs=["Receiving"],
            description="IMote2 1 s minimum event separation",
        )
        net.add_transition(
            "Receive_Delay",
            Deterministic(p.receive_delay),
            inputs=["Receiving"],
            outputs=["Computation"],
        )
        net.add_transition(
            "Computation_Delay",
            Deterministic(p.computation_delay),
            inputs=["Computation"],
            outputs=["Transmitting"],
        )
        net.add_transition(
            "Transmit_Delay",
            Deterministic(p.transmit_delay),
            inputs=["Transmitting"],
            outputs=["Wait"],
        )
        check_model_invariants(net, [("stage-token", list(STAGES))])
        return net

    def mean_power_mw(self, stage_probabilities: dict[str, float]) -> float:
        """Eq. (8): stage-probability-weighted power."""
        grouped: dict[str, float] = {}
        for stage, prob in stage_probabilities.items():
            state = self.STAGE_POWER_STATE[stage]
            grouped[state] = grouped.get(state, 0.0) + prob
        return self.power_table.mean_power_mw(grouped)

    def simulate(
        self,
        horizon: float,
        seed: int | None = None,
        warmup: float = 0.0,
    ) -> SimpleNodeResult:
        """Simulate the net and evaluate Eq. (8)."""
        net = self.build()
        sim = Simulation(net, seed=seed, warmup=warmup)
        result = sim.run(horizon)
        return self._summarise(result, warmup)

    def simulate_ensemble(
        self,
        horizon: float,
        seeds,
        warmup: float = 0.0,
    ) -> list[SimpleNodeResult]:
        """All seeds of one validation point through the fast engine.

        Bit-identical to ``[self.simulate(horizon, seed=s,
        warmup=warmup) for s in seeds]`` (see :mod:`repro.core.fast`),
        but run in lockstep as one NumPy ensemble.
        """
        from ..core.fast import run_ensemble

        results = run_ensemble(self.build(), horizon, seeds, warmup=warmup)
        return [self._summarise(r, warmup) for r in results]

    def _summarise(self, result, warmup: float) -> SimpleNodeResult:
        probs = {stage: result.occupancy(stage) for stage in STAGES}
        return SimpleNodeResult(
            stage_probabilities=probs,
            duration=result.end_time - warmup,
            events=result.stats.firing_count("Job_Arrival"),
            mean_power_mw=self.mean_power_mw(probs),
        )

    def analytic_result(self, duration: float) -> SimpleNodeResult:
        """Exact renewal-theory answer (for convergence tests)."""
        probs = self.params.analytic_fractions()
        return SimpleNodeResult(
            stage_probabilities=probs,
            duration=duration,
            events=int(duration / self.params.cycle_time()),
            mean_power_mw=self.mean_power_mw(probs),
        )
