"""Markov CPU estimator with the shared three-way comparison interface.

Wraps :class:`repro.markov.supplementary.SupplementaryVariableCPUModel`
(the paper's Eqs. 1–6) so the figure harness can ask all three
estimators — DES ground truth, Markov model, Petri net — the same two
questions: *state-time fractions* and *energy over a horizon*.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..des.cpu import CPUSimResult, CPUStates
from ..markov.supplementary import SupplementaryVariableCPUModel

__all__ = ["CPUMarkovModel"]


@dataclass
class CPUMarkovModel:
    """Closed-form Markov CPU estimator (no simulation involved).

    ``simulate`` mirrors the stochastic estimators' signature; the seed
    and warm-up are accepted and ignored (the answer is analytic).
    """

    arrival_rate: float
    service_rate: float
    power_down_threshold: float
    power_up_delay: float

    def _model(self) -> SupplementaryVariableCPUModel:
        return SupplementaryVariableCPUModel(
            self.arrival_rate,
            self.service_rate,
            self.power_down_threshold,
            self.power_up_delay,
        )

    def state_fractions(self) -> dict[str, float]:
        """The four steady-state probabilities keyed by canonical name."""
        ss = self._model().steady_state()
        return {
            CPUStates.STANDBY: ss.standby,
            CPUStates.IDLE: ss.idle,
            CPUStates.POWERUP: ss.powerup,
            CPUStates.ACTIVE: ss.active,
        }

    def simulate(
        self,
        horizon: float,
        seed: int | None = None,
        warmup: float = 0.0,
    ) -> CPUSimResult:
        """Analytic 'run': fractions are exact, counters are expectations."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        fractions = self.state_fractions()
        duration = horizon - warmup
        expected_jobs = self.arrival_rate * duration
        model = self._model()
        # Expected wake-ups per unit time: each idle→standby excursion is
        # ended by exactly one arrival; the standby exit rate is the
        # arrival rate while in standby.
        expected_wakeups = self.arrival_rate * fractions[CPUStates.STANDBY] * duration
        return CPUSimResult(
            fractions=fractions,
            dwell={s: f * duration for s, f in fractions.items()},
            duration=duration,
            jobs_arrived=int(round(expected_jobs)),
            jobs_served=int(round(expected_jobs)),
            wakeups=int(round(expected_wakeups)),
        )

    def energy_j(self, powers_mw: dict[str, float], duration: float) -> float:
        """Eq. (6)-style energy in Joules over ``duration`` seconds."""
        model = self._model()
        return model.energy_over_time(powers_mw, duration) / 1000.0
