"""State-dwell ledgers shared between the DES and the energy layer.

A :class:`StateDwellLedger` records how long a component spends in each
named power state.  The energy layer turns a ledger into Joules by
multiplying dwell times with a power table (Eq. 7/8 of the paper); the
experiment harness turns it into the "Percentage of time" series of
Figs. 4–6.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DwellInterval", "StateDwellLedger"]


@dataclass(frozen=True)
class DwellInterval:
    """One contiguous stay in a state (kept only when history is enabled)."""

    state: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Length of the stay."""
        return self.end - self.start


class StateDwellLedger:
    """Accumulates per-state dwell time for one component.

    Parameters
    ----------
    initial_state:
        State at time zero.
    warmup:
        Dwell time before this instant is discarded.
    keep_history:
        When true, every interval is retained (memory grows with run
        length — for tests and debugging, not for long sweeps).
    """

    def __init__(
        self,
        initial_state: str,
        warmup: float = 0.0,
        keep_history: bool = False,
    ) -> None:
        self.warmup = float(warmup)
        self.state = initial_state
        self.dwell: dict[str, float] = {}
        self.visits: dict[str, int] = {initial_state: 1}
        self._since = 0.0
        self._history: list[DwellInterval] | None = [] if keep_history else None
        self._closed = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def transition(self, now: float, new_state: str) -> None:
        """Move to ``new_state`` at time ``now``."""
        if self._closed:
            raise RuntimeError("ledger already closed")
        if now < self._since:
            raise ValueError(f"time went backwards: {now} < {self._since}")
        self._credit(now)
        if new_state != self.state:
            self.visits[new_state] = self.visits.get(new_state, 0) + 1
            if self._history is not None:
                pass  # interval closed inside _credit
            self.state = new_state
        self._since = now

    def close(self, end_time: float) -> None:
        """Credit the final stay and freeze the ledger."""
        if self._closed:
            return
        self._credit(end_time)
        self._since = end_time
        self._closed = True

    def _credit(self, now: float) -> None:
        lo = max(self._since, self.warmup)
        if now > lo:
            self.dwell[self.state] = self.dwell.get(self.state, 0.0) + (now - lo)
            if self._history is not None:
                self._history.append(DwellInterval(self.state, lo, now))

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def total_time(self) -> float:
        """Total credited time."""
        return sum(self.dwell.values())

    def time_in(self, state: str) -> float:
        """Credited time in ``state``."""
        return self.dwell.get(state, 0.0)

    def fraction(self, state: str) -> float:
        """Fraction of credited time in ``state``."""
        total = self.total_time()
        return self.dwell.get(state, 0.0) / total if total > 0 else 0.0

    def fractions(self) -> dict[str, float]:
        """All state fractions (sum to 1 when any time is credited)."""
        total = self.total_time()
        if total <= 0:
            return {}
        return {s: t / total for s, t in self.dwell.items()}

    def visit_count(self, state: str) -> int:
        """Number of entries into ``state`` (including the initial one)."""
        return self.visits.get(state, 0)

    def history(self) -> list[DwellInterval]:
        """Recorded intervals (empty unless ``keep_history``)."""
        return list(self._history or [])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StateDwellLedger(state={self.state!r}, "
            f"total={self.total_time():g})"
        )
