"""IMote2 "hardware" simulator — substitute for the Section V measurement rig.

The paper measured a physical IMote2 node (power supply, 1 Ohm sense
resistor, oscilloscope — Fig. 11) to obtain (a) the mean power per
operating state (Table VII) and (b) the total energy over 100 random
events (Table X).  Without the hardware we regenerate (b) from (a):

* The node's duty cycle follows Fig. 10: a random wait (exponential,
  mean 3 s) plus the 1 s minimum event separation the IMote2 imposes
  (the paper's ``Temp`` transition), then receive (0.00597 s), compute
  (1.0274 s), transmit (0.0059 s).
* Each state draws its Table VII mean power, plus a small
  **unmodeled-overhead** term: the real node consumed ≈1.261 mW on
  average while the state-power model accounts for ≈1.225 mW — the
  difference (OS ticks, leakage, regulator loss) is exactly what makes
  the paper's Petri-net estimate land ≈3 % below the measurement.
  We calibrate this term once (0.036 mW) from Table X and document it
  in DESIGN.md; the validation experiment then reproduces the ≈3 % gap
  honestly rather than by construction.
* Optional white measurement noise perturbs per-interval power to mimic
  scope quantisation; zero by default so tests are crisp.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.power import IMOTE2_MEASURED_POWER_MW
from .rng import RngStreams
from .trace import StateDwellLedger

__all__ = ["IMote2States", "IMote2RunResult", "IMote2HardwareSimulator"]


class IMote2States:
    """State names of the simple-node duty cycle (Fig. 10)."""

    WAIT = "wait"
    RECEIVING = "receiving"
    COMPUTATION = "computation"
    TRANSMITTING = "transmitting"

    ALL = (WAIT, RECEIVING, COMPUTATION, TRANSMITTING)


#: Calibrated unmodeled baseline draw (mW); see module docstring.
DEFAULT_OVERHEAD_MW = 0.036


@dataclass(frozen=True)
class IMote2RunResult:
    """Outcome of one triggered-events run (the Table X quantities)."""

    events: int
    duration_s: float
    energy_mj: float
    mean_power_mw: float
    dwell: dict[str, float]

    @property
    def energy_j(self) -> float:
        """Energy in Joules."""
        return self.energy_mj / 1000.0


class IMote2HardwareSimulator:
    """Replays the Fig. 10 duty cycle with measured state powers.

    Parameters
    ----------
    mean_event_gap:
        Mean of the exponential inter-event wait (paper: 3.0 s).
    min_event_separation:
        The IMote2's 1 s minimum handling gap (the ``Temp`` delay).
    receive_s / compute_s / transmit_s:
        Deterministic stage durations (paper Table VIII).
    power_mw:
        State → mean power (mW); defaults to Table VII.
    overhead_mw:
        Unmodeled baseline draw added to every state (see module doc).
    noise_rel:
        Relative std-dev of per-interval power noise (0 disables).
    seed / streams:
        Randomness control.
    """

    def __init__(
        self,
        mean_event_gap: float = 3.0,
        min_event_separation: float = 1.0,
        receive_s: float = 0.00597,
        compute_s: float = 1.0274,
        transmit_s: float = 0.0059,
        power_mw: dict[str, float] | None = None,
        overhead_mw: float = DEFAULT_OVERHEAD_MW,
        noise_rel: float = 0.0,
        seed: int | None = None,
        streams: RngStreams | None = None,
    ) -> None:
        if mean_event_gap <= 0:
            raise ValueError("mean_event_gap must be > 0")
        if min(min_event_separation, receive_s, compute_s, transmit_s) < 0:
            raise ValueError("durations must be >= 0")
        if noise_rel < 0:
            raise ValueError("noise_rel must be >= 0")
        self.mean_event_gap = float(mean_event_gap)
        self.min_event_separation = float(min_event_separation)
        self.receive_s = float(receive_s)
        self.compute_s = float(compute_s)
        self.transmit_s = float(transmit_s)
        self.power_mw = dict(
            power_mw if power_mw is not None else IMOTE2_MEASURED_POWER_MW
        )
        missing = set(IMote2States.ALL) - set(self.power_mw)
        if missing:
            raise ValueError(f"power_mw missing states: {sorted(missing)}")
        self.overhead_mw = float(overhead_mw)
        self.noise_rel = float(noise_rel)
        streams = streams if streams is not None else RngStreams(seed)
        self._gap_rng = streams.get("imote2.gaps")
        self._noise_rng = streams.get("imote2.noise")

    # ------------------------------------------------------------------
    def _interval_power(self, state: str) -> float:
        base = self.power_mw[state] + self.overhead_mw
        if self.noise_rel > 0:
            base *= max(0.0, 1.0 + self.noise_rel * self._noise_rng.standard_normal())
        return base

    def run_events(self, n_events: int = 100) -> IMote2RunResult:
        """Trigger ``n_events`` random events and integrate power.

        Mirrors the paper's measurement protocol: "triggering the node
        randomly for 100 events while the power consumption was
        monitored."
        """
        if n_events < 1:
            raise ValueError(f"n_events must be >= 1, got {n_events}")
        now = 0.0
        energy_mj = 0.0
        ledger = StateDwellLedger(IMote2States.WAIT)

        def spend(state: str, duration: float) -> float:
            nonlocal energy_mj, now
            if duration <= 0:
                return now
            ledger.transition(now, state)
            energy_mj += self._interval_power(state) * duration
            now += duration
            return now

        for _ in range(n_events):
            gap = float(self._gap_rng.exponential(self.mean_event_gap))
            spend(IMote2States.WAIT, gap + self.min_event_separation)
            spend(IMote2States.RECEIVING, self.receive_s)
            spend(IMote2States.COMPUTATION, self.compute_s)
            spend(IMote2States.TRANSMITTING, self.transmit_s)
        ledger.transition(now, IMote2States.WAIT)
        ledger.close(now)
        return IMote2RunResult(
            events=n_events,
            duration_s=now,
            energy_mj=energy_mj,
            mean_power_mw=energy_mj / now if now > 0 else 0.0,
            dwell=dict(ledger.dwell),
        )

    def expected_cycle_time(self) -> float:
        """Mean seconds per event cycle."""
        return (
            self.mean_event_gap
            + self.min_event_separation
            + self.receive_s
            + self.compute_s
            + self.transmit_s
        )

    def expected_mean_power_mw(self) -> float:
        """Analytic mean power (cycle-weighted state powers + overhead)."""
        cycle = self.expected_cycle_time()
        wait_t = self.mean_event_gap + self.min_event_separation
        acc = (
            self.power_mw[IMote2States.WAIT] * wait_t
            + self.power_mw[IMote2States.RECEIVING] * self.receive_s
            + self.power_mw[IMote2States.COMPUTATION] * self.compute_s
            + self.power_mw[IMote2States.TRANSMITTING] * self.transmit_s
        )
        return acc / cycle + self.overhead_mw
