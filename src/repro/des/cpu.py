"""Ground-truth CPU power-state simulator (the paper's Section IV baseline).

Emulates the exact state machine both the Markov model and the Petri
net approximate:

* Jobs arrive in a Poisson stream (rate λ) into an unbounded buffer.
* The CPU serves one job at a time with exponential service (rate μ).
* When the buffer drains the CPU idles; after ``power_down_threshold``
  seconds of *uninterrupted* idleness it drops to standby.
* A job arriving in standby triggers a deterministic
  ``power_up_delay``-second wake-up, after which service resumes.
* A job arriving while idle resumes service instantly (cancelling the
  pending power-down timer).

This is deliberately the straightest possible event-driven encoding —
the ground truth the other two models are judged against in Figs. 4–9.
"""

from __future__ import annotations

from dataclasses import dataclass

from .kernel import EventHandle, Scheduler
from .rng import RngStreams
from .trace import StateDwellLedger

__all__ = ["CPUStates", "CPUSimResult", "CPUPowerStateSimulator"]


class CPUStates:
    """Canonical state names shared across all three CPU models."""

    ACTIVE = "active"
    IDLE = "idle"
    STANDBY = "standby"
    POWERUP = "powerup"

    ALL = (ACTIVE, IDLE, STANDBY, POWERUP)


@dataclass(frozen=True)
class CPUSimResult:
    """Outcome of one CPU simulation run.

    Attributes
    ----------
    fractions:
        Long-run fraction of time per state (Figs. 4–6 series).
    dwell:
        Absolute seconds per state.
    duration:
        Credited observation time.
    jobs_arrived / jobs_served:
        Workload counters.
    wakeups:
        Number of standby → power-up transitions (the transitional-energy
        driver of Figs. 14–15).
    """

    fractions: dict[str, float]
    dwell: dict[str, float]
    duration: float
    jobs_arrived: int
    jobs_served: int
    wakeups: int

    def fraction(self, state: str) -> float:
        """Fraction of time in ``state`` (0 when never visited)."""
        return self.fractions.get(state, 0.0)


class CPUPowerStateSimulator:
    """Event-driven CPU with power-down threshold and power-up delay.

    Parameters
    ----------
    arrival_rate:
        λ, jobs/second.
    service_rate:
        μ, jobs/second.
    power_down_threshold:
        T, seconds of idleness before standby (0 = immediate).
    power_up_delay:
        D, seconds to wake from standby.
    initial_state:
        ``"standby"`` (paper's Fig. 3 starting place) or ``"idle"``.
    streams:
        Optional shared :class:`~repro.des.rng.RngStreams` (for common
        random numbers across sweep points).
    seed:
        Convenience seed when ``streams`` is not given.
    """

    def __init__(
        self,
        arrival_rate: float,
        service_rate: float,
        power_down_threshold: float,
        power_up_delay: float,
        initial_state: str = CPUStates.STANDBY,
        streams: RngStreams | None = None,
        seed: int | None = None,
        warmup: float = 0.0,
    ) -> None:
        if arrival_rate <= 0 or service_rate <= 0:
            raise ValueError("arrival_rate and service_rate must be > 0")
        if power_down_threshold < 0 or power_up_delay < 0:
            raise ValueError("threshold and delay must be >= 0")
        if initial_state not in (CPUStates.STANDBY, CPUStates.IDLE):
            raise ValueError(
                f"initial_state must be standby or idle, got {initial_state!r}"
            )
        self.lam = float(arrival_rate)
        self.mu = float(service_rate)
        self.T = float(power_down_threshold)
        self.D = float(power_up_delay)
        self.streams = streams if streams is not None else RngStreams(seed)
        self._arrival_rng = self.streams.get("cpu.arrivals")
        self._service_rng = self.streams.get("cpu.service")
        self.scheduler = Scheduler()
        self.ledger = StateDwellLedger(initial_state, warmup=warmup)
        self.queue = 0
        self.jobs_arrived = 0
        self.jobs_served = 0
        self.wakeups = 0
        self._powerdown_timer: EventHandle | None = None
        self._initial_state = initial_state

    # ------------------------------------------------------------------
    # State helpers
    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current power state."""
        return self.ledger.state

    def _set_state(self, new_state: str) -> None:
        self.ledger.transition(self.scheduler.now, new_state)

    def _cancel_powerdown(self) -> None:
        if self._powerdown_timer is not None:
            self._powerdown_timer.cancel()
            self._powerdown_timer = None

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_arrival(self) -> None:
        self.jobs_arrived += 1
        self.queue += 1
        state = self.state
        if state == CPUStates.STANDBY:
            self.wakeups += 1
            self._set_state(CPUStates.POWERUP)
            self.scheduler.schedule(self.D, self._on_powerup_complete)
        elif state == CPUStates.IDLE:
            self._cancel_powerdown()
            self._start_service()
        # ACTIVE / POWERUP: the job queues; nothing else changes.
        self._schedule_next_arrival()

    def _schedule_next_arrival(self) -> None:
        gap = float(self._arrival_rng.exponential(1.0 / self.lam))
        self.scheduler.schedule(gap, self._on_arrival)

    def _start_service(self) -> None:
        self._set_state(CPUStates.ACTIVE)
        duration = float(self._service_rng.exponential(1.0 / self.mu))
        self.scheduler.schedule(duration, self._on_service_complete)

    def _on_service_complete(self) -> None:
        self.queue -= 1
        self.jobs_served += 1
        if self.queue > 0:
            self._start_service()
            return
        self._set_state(CPUStates.IDLE)
        if self.T == 0.0:
            # Immediate power-down: zero-length idle visit.
            self._set_state(CPUStates.STANDBY)
        else:
            self._powerdown_timer = self.scheduler.schedule(
                self.T, self._on_powerdown_timeout
            )

    def _on_powerdown_timeout(self) -> None:
        self._powerdown_timer = None
        # The timer is cancelled on arrival, so reaching here means the
        # CPU idled uninterrupted for T seconds.
        self._set_state(CPUStates.STANDBY)

    def _on_powerup_complete(self) -> None:
        if self.queue > 0:
            self._start_service()
        else:
            # Cannot happen with this workload (wake-ups are triggered
            # by arrivals and jobs are never revoked) but stay safe.
            self._set_state(CPUStates.IDLE)
            if self.T > 0:
                self._powerdown_timer = self.scheduler.schedule(
                    self.T, self._on_powerdown_timeout
                )
            else:
                self._set_state(CPUStates.STANDBY)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, horizon: float) -> CPUSimResult:
        """Simulate ``horizon`` seconds and return the dwell summary."""
        if horizon <= 0:
            raise ValueError(f"horizon must be > 0, got {horizon}")
        self._schedule_next_arrival()
        self.scheduler.run_until(horizon)
        self.ledger.close(horizon)
        return CPUSimResult(
            fractions=self.ledger.fractions(),
            dwell=dict(self.ledger.dwell),
            duration=self.ledger.total_time(),
            jobs_arrived=self.jobs_arrived,
            jobs_served=self.jobs_served,
            wakeups=self.wakeups,
        )
