"""``repro.des`` — the discrete-event-simulation substrate.

* :mod:`repro.des.kernel` — minimal cancellable-event scheduler;
* :mod:`repro.des.rng` — named independent RNG streams (common random
  numbers across sweep points);
* :mod:`repro.des.trace` — state-dwell ledgers feeding energy accounting;
* :mod:`repro.des.cpu` — the paper's Section IV ground-truth CPU
  power-state simulator;
* :mod:`repro.des.imote2` — the Section V "hardware" substitute
  replaying the measured IMote2 duty cycle.
"""

from .cpu import CPUPowerStateSimulator, CPUSimResult, CPUStates
from .imote2 import (
    DEFAULT_OVERHEAD_MW,
    IMote2HardwareSimulator,
    IMote2RunResult,
    IMote2States,
)
from .kernel import EventHandle, Scheduler
from .rng import RngStreams
from .trace import DwellInterval, StateDwellLedger

__all__ = [
    "Scheduler",
    "EventHandle",
    "RngStreams",
    "StateDwellLedger",
    "DwellInterval",
    "CPUPowerStateSimulator",
    "CPUSimResult",
    "CPUStates",
    "IMote2HardwareSimulator",
    "IMote2RunResult",
    "IMote2States",
    "DEFAULT_OVERHEAD_MW",
]
