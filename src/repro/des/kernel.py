"""A minimal discrete-event-simulation kernel.

The paper validates its Petri nets against "a discrete event simulator
that emulates the timings of state transitions of CPU" (Section IV).
This kernel is that simulator's foundation: a time-ordered event queue
with cancellable events and a run loop.

Design notes
------------
* Events are callbacks with an absolute due time; ties break by
  schedule order (deterministic replay).
* Cancellation is O(1) via a ``cancelled`` flag (lazy deletion).
* The kernel is deliberately tiny — process-style coroutines would be
  overkill for the handful of state machines in this reproduction and
  would obscure the timing semantics the comparison hinges on.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable

__all__ = ["EventHandle", "Scheduler"]


class EventHandle:
    """A scheduled event; call :meth:`cancel` to revoke it."""

    __slots__ = ("time", "seq", "action", "cancelled")

    def __init__(self, time: float, seq: int, action: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.action = action
        self.cancelled = False

    def cancel(self) -> None:
        """Revoke the event (no-op if already fired or cancelled)."""
        self.cancelled = True

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(t={self.time:g}, {state})"


class Scheduler:
    """Time-ordered event loop.

    Attributes
    ----------
    now:
        Current simulation time; advances monotonically.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[EventHandle] = []
        self._seq = itertools.count()
        self._fired = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` to run ``delay`` from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Schedule ``action`` at absolute ``time`` (≥ now)."""
        if time < self.now:
            raise ValueError(
                f"cannot schedule in the past: {time} < now {self.now}"
            )
        handle = EventHandle(time, next(self._seq), action)
        heapq.heappush(self._heap, handle)
        return handle

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def peek(self) -> float | None:
        """Due time of the next live event, or ``None``."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Run the next live event; ``False`` when the queue is empty."""
        while self._heap:
            handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = handle.time
            handle.action()
            self._fired += 1
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run every event due at or before ``horizon``; clock ends there.

        Events scheduled beyond the horizon stay queued (a subsequent
        ``run_until`` may consume them).
        """
        if horizon < self.now:
            raise ValueError(
                f"horizon {horizon} is before current time {self.now}"
            )
        while True:
            t = self.peek()
            if t is None or t > horizon:
                break
            self.step()
        self.now = horizon

    def run_events(self, n: int) -> int:
        """Run at most ``n`` events; returns the number actually run."""
        done = 0
        while done < n and self.step():
            done += 1
        return done

    @property
    def events_fired(self) -> int:
        """Total events executed."""
        return self._fired

    def pending(self) -> int:
        """Live (non-cancelled) events still queued (O(n))."""
        return sum(1 for h in self._heap if not h.cancelled)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scheduler(now={self.now:g}, pending={self.pending()})"
