"""Named independent random-number streams.

All stochastic components draw from :class:`numpy.random.Generator`
instances derived from a single root seed through
:class:`numpy.random.SeedSequence` spawning, which guarantees
statistically independent streams.  Naming streams (``"arrivals"``,
``"service"``) gives *common random numbers* across design points: when
the CPU simulator is swept over ``Power_Down_Threshold``, every sweep
point sees the same arrival epochs, which slashes comparison variance —
the same trick the paper's "Simulation" baseline benefits from by
construction.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RngStreams"]


class RngStreams:
    """A family of named, independent random generators.

    Parameters
    ----------
    root_seed:
        Seed of the family.  Two families with the same seed produce
        identical streams; streams within a family are independent.

    Notes
    -----
    Stream identity is by *name*: ``streams.get("arrivals")`` returns
    the same generator object on every call, so consuming order is
    well-defined within a run.
    """

    def __init__(self, root_seed: int | None = None) -> None:
        self.root_seed = root_seed
        self._root = np.random.SeedSequence(root_seed)
        self._streams: dict[str, np.random.Generator] = {}
        self._children_spawned = 0

    def get(self, name: str) -> np.random.Generator:
        """The generator for ``name`` (created deterministically on first use).

        Stream seeds are derived from the root seed *and the name*, so
        the set of other streams in use never affects a stream's values
        — adding instrumentation cannot perturb the workload.
        """
        gen = self._streams.get(name)
        if gen is None:
            # Extend the family's spawn key with a name-derived key so
            # (a) streams are independent of creation order and (b)
            # spawned child families stay distinct from the parent.
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=tuple(self._root.spawn_key) + (self._stable_key(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    @staticmethod
    def _stable_key(name: str) -> int:
        """Deterministic 64-bit key for a stream name (FNV-1a)."""
        h = 0xCBF29CE484222325
        for byte in name.encode("utf-8"):
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        return h

    def spawn(self) -> "RngStreams":
        """An independent child family (for replications)."""
        self._children_spawned += 1
        child = RngStreams()
        child._root = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=(0xFFFFFFFF, self._children_spawned),
        )
        child.root_seed = None
        return child

    def names(self) -> list[str]:
        """Names of streams created so far."""
        return sorted(self._streams)
