"""Execute a validated :class:`~repro.scenarios.spec.ScenarioSpec`.

The runner dispatches to the *same* run functions the CLI subcommands
call (``repro.cli.run_fig`` and friends), with the spec's
``ExecutionConfig`` resolved exactly once — so ``repro.cli scenario
run fig14.yaml`` prints output byte-identical to the equivalent
flag-spelled ``repro.cli fig 14 ...`` invocation.  That bit-identity
is asserted per gallery scenario, across engines and backends, in
``tests/scenarios/test_runner.py`` and diffed in CI by the
``scenario`` group of ``scripts/ci_smoke.sh``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .spec import ScenarioSpec

if TYPE_CHECKING:
    from ..runtime.config import ResolvedExecution

__all__ = ["run_scenario"]


def run_scenario(
    spec: ScenarioSpec, rx: "ResolvedExecution | None" = None
) -> int:
    """Run one scenario; returns the process exit code.

    The spec's ``execution`` is resolved here (backend and store built
    once), and store counters are flushed on the way out — mirroring
    what ``repro.cli main`` does for flag-spelled runs.

    ``rx`` overrides that resolution with an already-live
    :class:`~repro.runtime.config.ResolvedExecution` — the seam the
    serving layer uses to reuse one long-lived backend/store across
    requests while keeping this exact dispatch (and therefore
    byte-identical output) for every spelling of a run.
    """
    # Imported here, not at module top: the CLI imports this package
    # for its `scenario` subcommand, and the run functions live there.
    from .. import cli

    if rx is None:
        rx = spec.execution.resolve()
    p = spec.params
    try:
        if spec.model == "fig":
            return cli.run_fig(
                p["number"], horizon=p["horizon"], seed=p["seed"], rx=rx
            )
        if spec.model == "table":
            return cli.run_table(
                p["number"], horizon=p["horizon"], seed=p["seed"], rx=rx
            )
        if spec.model == "node-sweep":
            return cli.run_node_sweep(
                workload=p["workload"],
                horizon=p["horizon"],
                seed=p["seed"],
                rx=rx,
            )
        if spec.model == "validate":
            return cli.run_validate(seed=p["seed"], rx=rx)
        if spec.model == "network":
            # Scenario-diversity keys exist from schema v2 on; v1
            # specs don't carry them, so fall back to the defaults.
            return cli.run_network(
                topology=p["topology"],
                nodes=p["nodes"],
                grid=p["grid"],
                threshold=p["threshold"],
                sweep=p["sweep"],
                horizon=p["horizon"],
                base_rate=p["base_rate"],
                seed=p["seed"],
                radius=p.get("radius"),
                fanout=p.get("fanout", 3),
                depth=p.get("depth", 3),
                failure_rate=p.get("failure_rate", 0.0),
                duty_spread=p.get("duty_spread", 0.0),
                traffic=p.get("traffic", "poisson"),
                burst_on=p.get("burst_on", 5.0),
                burst_off=p.get("burst_off", 15.0),
                burst_off_fraction=p.get("burst_off_fraction", 0.0),
                rx=rx,
            )
        raise AssertionError(f"unhandled scenario model {spec.model!r}")
    finally:
        if rx.store is not None:
            rx.store.flush_counters()
