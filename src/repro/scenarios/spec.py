"""The versioned declarative scenario schema: ``ScenarioSpec``.

A scenario file (YAML or JSON) names *what* to run (``model`` +
``params``), *how* to run it (``execution`` — an
:class:`~repro.runtime.config.ExecutionConfig`), and what to emit
(``outputs``), making a CLI run a reproducible artifact::

    version: 1
    name: fig14-node-sweep
    model: fig
    params:
      number: 14
      horizon: 900.0
      seed: 2010
    execution:
      replications: 4
      workers: 2
    outputs:
      format: text
    smoke:
      params.horizon: 2.0
      execution.replications: 2

Design rules:

* **Every rejection names the bad key.**  Schema errors are
  :class:`ScenarioError` (a :class:`ValueError`) whose message contains
  the offending key (``params.horizon``, ``execution.workers``, ...),
  so CI can fuzz the schema and assert precise diagnostics.
* **Round-trippable.**  ``ScenarioSpec.from_dict(spec.to_dict()) ==
  spec`` holds for every valid spec: parameters are normalised (and
  defaults filled) at construction.
* **Execution is not identity.**  :meth:`ScenarioSpec.canonical_dict`
  reuses :func:`repro.runtime.store.canonicalize` over the *semantic*
  content only (version, model, params) — two specs that differ only
  in workers/backend/engine/store canonicalise identically, exactly as
  the result store never keys on execution knobs, so scenario runs
  share the store with programmatic/flag runs.
* ``smoke`` holds the spec's own CI-scale overrides (dotted paths, the
  same syntax as ``repro.cli scenario run --override``), applied by
  ``--smoke`` so ``scripts/ci_smoke.sh`` can run every gallery file in
  seconds without knowing each model's knobs.
"""

from __future__ import annotations

import copy
import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any, Callable

from ..runtime.config import ExecutionConfig

__all__ = [
    "SPEC_VERSION",
    "SUPPORTED_VERSIONS",
    "ScenarioError",
    "ScenarioSpec",
    "apply_overrides",
    "load_scenario",
    "parse_override",
]

#: Current schema version; bumped on incompatible schema changes.
#: Version 2 added the scenario-diversity keys (generated topologies,
#: churn, bursty traffic) to the ``network`` model.
SPEC_VERSION = 2

#: Versions this build reads.  A spec is validated against the schema
#: *of the version it declares*: version-1 files only see the v1 keys
#: and only get v1 defaults filled, so their round-trip
#: (:meth:`ScenarioSpec.to_dict`) and canonical forms are byte-for-byte
#: what the v1 reader produced — old gallery files and cached request
#: keys stay valid.  Using a v2-only key under ``version: 1`` is an
#: error naming the key and the version it needs.
SUPPORTED_VERSIONS = (1, 2)

#: Models a scenario can run — the CLI run-subcommand namespace.
SCENARIO_MODELS = ("fig", "table", "node-sweep", "validate", "network")


class ScenarioError(ValueError):
    """A scenario file/spec violates the schema.

    The message always names the offending key (``params.number``,
    ``execution.workers``, ...), which the schema fuzzer asserts on.
    """


_REQUIRED = object()


def _int(key: str, value: Any) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(f"{key} must be an integer, got {value!r}")
    return value


def _pos_int(key: str, value: Any) -> int:
    value = _int(key, value)
    if value < 1:
        raise ScenarioError(f"{key} must be >= 1, got {value}")
    return value


def _pos_float(key: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{key} must be a number, got {value!r}")
    if value <= 0:
        raise ScenarioError(f"{key} must be > 0, got {value}")
    return float(value)

def _opt_pos_float(key: str, value: Any) -> float | None:
    return None if value is None else _pos_float(key, value)


def _nonneg_float(key: str, value: Any) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ScenarioError(f"{key} must be a number, got {value!r}")
    if value < 0:
        raise ScenarioError(f"{key} must be >= 0, got {value}")
    return float(value)


def _fraction(key: str, value: Any) -> float:
    value = _nonneg_float(key, value)
    if value >= 1:
        raise ScenarioError(f"{key} must be in [0, 1), got {value}")
    return value


def _bool(key: str, value: Any) -> bool:
    if not isinstance(value, bool):
        raise ScenarioError(f"{key} must be true or false, got {value!r}")
    return value


def _choice(choices: tuple[Any, ...]) -> Callable[[str, Any], Any]:
    def check(key: str, value: Any) -> Any:
        if isinstance(value, bool) or value not in choices:
            raise ScenarioError(
                f"{key} must be one of {choices}, got {value!r}"
            )
        return value

    return check


def _grid(key: str, value: Any) -> tuple[int, int]:
    """A grid spec: ``[width, height]`` or a ``"WxH"`` string."""
    if isinstance(value, str):
        parts = value.lower().split("x")
        if len(parts) != 2:
            raise ScenarioError(
                f"{key} must be [width, height] or 'WxH', got {value!r}"
            )
        try:
            value = [int(p) for p in parts]
        except ValueError:
            raise ScenarioError(
                f"{key} must be [width, height] or 'WxH', got {value!r}"
            ) from None
    if (
        not isinstance(value, (list, tuple))
        or len(value) != 2
        or any(isinstance(v, bool) or not isinstance(v, int) for v in value)
    ):
        raise ScenarioError(
            f"{key} must be [width, height] or 'WxH', got {value!r}"
        )
    width, height = value
    if width < 1 or height < 1:
        raise ScenarioError(
            f"{key} dimensions must be >= 1, got {list(value)!r}"
        )
    return (width, height)


@dataclass(frozen=True)
class _Param:
    """One model parameter: its default (or required) and its check."""

    default: Any
    check: Callable[[str, Any], Any]


#: Per-model parameter schema.  Defaults mirror the CLI flag defaults
#: exactly, so an empty ``params`` block equals the bare subcommand.
_MODEL_PARAMS: dict[str, dict[str, _Param]] = {
    "fig": {
        "number": _Param(_REQUIRED, _choice((4, 5, 6, 7, 8, 9, 14, 15))),
        "horizon": _Param(None, _opt_pos_float),
        "seed": _Param(2010, _int),
    },
    "table": {
        "number": _Param(_REQUIRED, _choice((4, 5, 6))),
        "horizon": _Param(1000.0, _pos_float),
        "seed": _Param(2010, _int),
    },
    "node-sweep": {
        "workload": _Param("closed", _choice(("closed", "open"))),
        "horizon": _Param(900.0, _pos_float),
        "seed": _Param(2010, _int),
    },
    "validate": {
        "seed": _Param(2010, _int),
    },
    "network": {
        "topology": _Param("line", _choice(("line", "star", "grid"))),
        "nodes": _Param(5, _pos_int),
        "grid": _Param((10, 10), _grid),
        "threshold": _Param(0.01, _pos_float),
        "sweep": _Param(False, _bool),
        "horizon": _Param(300.0, _pos_float),
        "base_rate": _Param(0.5, _pos_float),
        "seed": _Param(2010, _int),
    },
}

#: Keys added (or widened) by schema version 2: the scenario-diversity
#: subsystem — generated topologies, node churn and bursty traffic.
#: Merged over :data:`_MODEL_PARAMS` for specs declaring version >= 2;
#: version-1 specs never see these (not even as filled defaults).
_MODEL_PARAMS_V2: dict[str, dict[str, _Param]] = {
    "network": {
        "topology": _Param(
            "line",
            _choice(("line", "star", "grid", "geometric", "cluster-tree")),
        ),
        "radius": _Param(None, _opt_pos_float),
        "fanout": _Param(3, _pos_int),
        "depth": _Param(3, _pos_int),
        "failure_rate": _Param(0.0, _nonneg_float),
        "duty_spread": _Param(0.0, _fraction),
        "traffic": _Param("poisson", _choice(("poisson", "bursty"))),
        "burst_on": _Param(5.0, _pos_float),
        "burst_off": _Param(15.0, _pos_float),
        "burst_off_fraction": _Param(0.0, _fraction),
    },
}

_OUTPUT_FORMATS = ("text",)


def _params_schema(model: str, version: int) -> dict[str, _Param]:
    """The parameter schema a spec of ``version`` validates against."""
    schema = dict(_MODEL_PARAMS[model])
    if version >= 2:
        schema.update(_MODEL_PARAMS_V2.get(model, {}))
    return schema


def _validate_params(
    model: str, params: Any, version: int = SPEC_VERSION
) -> dict[str, Any]:
    """Check/normalise a params mapping; fill model defaults."""
    if params is None:
        params = {}
    if not isinstance(params, Mapping):
        raise ScenarioError(
            f"params must be a mapping, got {params!r}"
        )
    schema = _params_schema(model, version)
    unknown = sorted(set(params) - set(schema))
    if unknown:
        key = unknown[0]
        if key in _params_schema(model, SPEC_VERSION):
            raise ScenarioError(
                f"params key 'params.{key}' requires scenario schema "
                f"version 2 or later (this spec declares version {version})"
            )
        raise ScenarioError(
            f"unknown params key 'params.{key}' for model "
            f"{model!r} (known: {', '.join(sorted(schema))})"
        )
    out: dict[str, Any] = {}
    for key, param in schema.items():
        if key in params:
            out[key] = param.check(f"params.{key}", params[key])
        elif param.default is _REQUIRED:
            raise ScenarioError(
                f"missing required key 'params.{key}' for model {model!r}"
            )
        else:
            out[key] = param.default
    return out


def _validate_outputs(outputs: Any) -> dict[str, Any]:
    if outputs is None:
        outputs = {}
    if not isinstance(outputs, Mapping):
        raise ScenarioError(f"outputs must be a mapping, got {outputs!r}")
    unknown = sorted(set(outputs) - {"format"})
    if unknown:
        raise ScenarioError(
            f"unknown outputs key 'outputs.{unknown[0]}' "
            f"(known: format)"
        )
    fmt = outputs.get("format", "text")
    if fmt not in _OUTPUT_FORMATS:
        raise ScenarioError(
            f"outputs.format must be one of {_OUTPUT_FORMATS}, got {fmt!r}"
        )
    return {"format": fmt}


def _validate_smoke(smoke: Any) -> dict[str, Any]:
    if smoke is None:
        smoke = {}
    if not isinstance(smoke, Mapping):
        raise ScenarioError(
            "smoke must be a mapping of dotted override paths "
            f"(e.g. 'params.horizon: 2.0'), got {smoke!r}"
        )
    out: dict[str, Any] = {}
    for key, value in smoke.items():
        if not isinstance(key, str) or not key:
            raise ScenarioError(
                f"smoke keys must be dotted override paths, got {key!r}"
            )
        head = key.split(".", 1)[0]
        if head not in ("params", "execution", "outputs"):
            raise ScenarioError(
                f"smoke override 'smoke.{key}' must target params.*, "
                "execution.* or outputs.*"
            )
        out[key] = value
    return out


def _jsonable(value: Any) -> Any:
    """Tuples → lists, recursively — plain JSON for ``to_dict``."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, Mapping):
        return {k: _jsonable(v) for k, v in value.items()}
    return value


@dataclass(frozen=True)
class ScenarioSpec:
    """One validated scenario: model + params + execution + outputs.

    Construct via :meth:`from_dict` / :func:`load_scenario` (or
    directly — ``__post_init__`` runs the same validation either way).
    Parameters are normalised with model defaults filled, so two specs
    spelling the same run compare equal and round-trip through
    :meth:`to_dict` exactly.
    """

    name: str
    model: str
    params: dict[str, Any] = field(default_factory=dict)
    execution: ExecutionConfig = ExecutionConfig()
    outputs: dict[str, Any] = field(default_factory=dict)
    smoke: dict[str, Any] = field(default_factory=dict)
    version: int = SPEC_VERSION

    def __post_init__(self) -> None:
        if isinstance(self.version, bool) or not isinstance(self.version, int):
            raise ScenarioError(
                f"version must be an integer, got {self.version!r}"
            )
        if self.version not in SUPPORTED_VERSIONS:
            raise ScenarioError(
                f"version {self.version} is not supported "
                "(this build reads scenario schema versions "
                f"{SUPPORTED_VERSIONS})"
            )
        if not isinstance(self.name, str) or not self.name:
            raise ScenarioError(
                f"name must be a non-empty string, got {self.name!r}"
            )
        if self.model not in SCENARIO_MODELS:
            raise ScenarioError(
                f"model must be one of {SCENARIO_MODELS}, got {self.model!r}"
            )
        object.__setattr__(
            self,
            "params",
            _validate_params(self.model, self.params, self.version),
        )
        if isinstance(self.execution, Mapping):
            try:
                object.__setattr__(
                    self,
                    "execution",
                    ExecutionConfig.from_dict(self.execution),
                )
            except (ValueError, TypeError) as exc:
                raise ScenarioError(f"execution: {exc}") from None
        elif not isinstance(self.execution, ExecutionConfig):
            raise ScenarioError(
                "execution must be a mapping of ExecutionConfig fields, "
                f"got {self.execution!r}"
            )
        object.__setattr__(self, "outputs", _validate_outputs(self.outputs))
        object.__setattr__(self, "smoke", _validate_smoke(self.smoke))

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Validate a raw mapping (parsed YAML/JSON) into a spec."""
        if not isinstance(data, Mapping):
            raise ScenarioError(
                f"a scenario spec must be a mapping, got {data!r}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ScenarioError(
                f"unknown scenario key {unknown[0]!r} "
                f"(known keys: {', '.join(sorted(known))})"
            )
        for required in ("name", "model"):
            if required not in data:
                raise ScenarioError(
                    f"missing required scenario key {required!r}"
                )
        return cls(**dict(data))

    def to_dict(self) -> dict[str, Any]:
        """The plain JSON-able form; inverse of :meth:`from_dict`."""
        return {
            "version": self.version,
            "name": self.name,
            "model": self.model,
            "params": _jsonable(self.params),
            "execution": self.execution.to_dict(),
            "outputs": _jsonable(self.outputs),
            "smoke": _jsonable(self.smoke),
        }

    def canonical_dict(self) -> Any:
        """Canonical form of the spec's *semantic* content.

        Reuses :func:`repro.runtime.store.canonicalize`, so the same
        rules that make the result store execution-agnostic apply here:
        ``execution``, ``outputs``, ``smoke`` and the display ``name``
        are excluded, floats are bit-exact, mapping order is
        irrelevant.  Two specs with equal ``canonical_dict()`` describe
        the same simulations and therefore hit the same
        :func:`~repro.runtime.store.task_key` entries.
        """
        from ..runtime.store import canonicalize

        return canonicalize(
            {
                "version": self.version,
                "model": self.model,
                "params": self.params,
            }
        )

    def validate(self) -> "ScenarioSpec":
        """Explicit no-op hook: construction already validated.

        Exists so call sites can spell their intent
        (``load_scenario(p).validate()``) and as the seam where future
        schema versions would run migrations.
        """
        return self

    def with_overrides(
        self, overrides: Mapping[str, Any] | list[str]
    ) -> "ScenarioSpec":
        """A re-validated copy with dotted-path overrides applied."""
        return ScenarioSpec.from_dict(
            apply_overrides(self.to_dict(), overrides)
        )


def parse_override(text: str) -> tuple[str, Any]:
    """Parse one ``KEY=VALUE`` override.

    The value is parsed as JSON when possible (numbers, booleans,
    lists), else kept as a literal string — so
    ``params.horizon=2.5``, ``execution.backend=processes`` and
    ``params.grid=[3,3]`` all do the obvious thing.
    """
    key, sep, value = text.partition("=")
    if not sep or not key:
        raise ScenarioError(
            f"override must be KEY=VALUE (e.g. params.horizon=2.5), "
            f"got {text!r}"
        )
    try:
        return key, json.loads(value)
    except json.JSONDecodeError:
        return key, value


def apply_overrides(
    data: Mapping[str, Any], overrides: Mapping[str, Any] | list[str]
) -> dict[str, Any]:
    """Apply dotted-path overrides to a raw spec mapping.

    ``overrides`` is either a mapping ``{"params.horizon": 2.0}`` (the
    ``smoke`` block shape) or a list of ``KEY=VALUE`` strings (the CLI
    ``--override`` shape).  Returns a deep copy; the input is never
    mutated.  Intermediate mappings are created as needed; overriding
    *through* a non-mapping value is an error naming the path.
    """
    if isinstance(overrides, Mapping):
        pairs = list(overrides.items())
    else:
        pairs = [parse_override(text) for text in overrides]
    out: dict[str, Any] = copy.deepcopy(dict(data))
    for key, value in pairs:
        parts = key.split(".")
        if not all(parts):
            raise ScenarioError(f"override path {key!r} has an empty segment")
        node = out
        for i, part in enumerate(parts[:-1]):
            child = node.get(part)
            if child is None:
                child = {}
                node[part] = child
            elif not isinstance(child, (dict, Mapping)):
                raise ScenarioError(
                    f"cannot override {key!r}: "
                    f"{'.'.join(parts[: i + 1])!r} is not a mapping"
                )
            elif not isinstance(child, dict):
                child = dict(child)
                node[part] = child
            node = child
        node[parts[-1]] = copy.deepcopy(value)
    return out


def _parse_text(path: Path, text: str) -> Any:
    suffix = path.suffix.lower()
    if suffix in (".yaml", ".yml"):
        try:
            import yaml
        except ImportError:
            raise ScenarioError(
                f"reading {path.name} requires the optional PyYAML "
                "dependency; install pyyaml or write the spec as JSON"
            ) from None
        try:
            return yaml.safe_load(text)
        except yaml.YAMLError as exc:
            raise ScenarioError(f"invalid YAML in {path}: {exc}") from None
    if suffix == ".json":
        try:
            return json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid JSON in {path}: {exc}") from None
    raise ScenarioError(
        f"unsupported scenario file extension {suffix!r} for {path} "
        "(use .yaml, .yml or .json)"
    )


def load_scenario(
    path: str | Path,
    overrides: Mapping[str, Any] | list[str] = (),
    smoke: bool = False,
) -> ScenarioSpec:
    """Load and validate a scenario file.

    With ``smoke=True`` the spec's own ``smoke`` block of dotted-path
    overrides is applied first (the CI-scale shape of the scenario);
    explicit ``overrides`` are applied after, so they win.
    """
    p = Path(path)
    try:
        text = p.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read scenario file {path}: {exc}") from None
    data = _parse_text(p, text)
    if not isinstance(data, Mapping):
        raise ScenarioError(
            f"a scenario spec must be a mapping, got {data!r} in {path}"
        )
    data = dict(data)
    if smoke:
        data = apply_overrides(data, _validate_smoke(data.get("smoke")))
    if overrides:
        data = apply_overrides(data, overrides)
    return ScenarioSpec.from_dict(data)
