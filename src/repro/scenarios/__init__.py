"""``repro.scenarios`` — declarative scenario files for every driver.

New scenarios are data, not code: a YAML/JSON file names the model and
its parameters, the :class:`~repro.runtime.config.ExecutionConfig`,
and the outputs, and ``repro.cli scenario run FILE`` reproduces the
equivalent flag-spelled invocation byte for byte.  See
:mod:`repro.scenarios.spec` for the schema and the repository's
``scenarios/`` directory for the gallery (the paper's Figs. 14/15,
the Section V validation, a 100-node grid network).
"""

from .runner import run_scenario
from .spec import (
    SPEC_VERSION,
    SUPPORTED_VERSIONS,
    ScenarioError,
    ScenarioSpec,
    apply_overrides,
    load_scenario,
    parse_override,
)

__all__ = [
    "SPEC_VERSION",
    "SUPPORTED_VERSIONS",
    "ScenarioError",
    "ScenarioSpec",
    "apply_overrides",
    "load_scenario",
    "parse_override",
    "run_scenario",
]
