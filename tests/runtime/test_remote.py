"""Socket backend: protocol, bit-identity, drop re-queue, CLI workers.

The heavier tests launch real worker subprocesses (``python -m
repro.cli worker --serve 0``) on localhost and assert the headline
multi-host contract: a sharded network sweep dispatched over TCP is
bit-identical to the serial backend, and a worker lost mid-run only
costs capacity, never results.
"""

import multiprocessing
import os
import pathlib
import socket
import subprocess
import sys
import threading

import pytest

from repro.experiments.network import (
    NetworkScenarioConfig,
    run_network_lifetime_sweep,
)
from repro.models import LineTopology
from repro.runtime import ParallelExecutor, SerialBackend, TaskError
from repro.runtime.remote import (
    PROTOCOL_VERSION,
    ConnectionClosed,
    ProtocolError,
    SocketBackend,
    WorkerPoolError,
    parse_address,
    recv_frame,
    send_frame,
    serve_worker,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]

#: Env var that makes ``suicidal_task`` kill its host process — set on
#: one worker to simulate a host dropping mid-run.
SUICIDE_ENV = "REPRO_TEST_WORKER_SUICIDE"


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise ValueError("boom at three")
    return x


def suicidal_task(x):
    if os.environ.get(SUICIDE_ENV):
        os._exit(17)  # hard kill: no frame goes back, the socket drops
    return x * x


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.0.0.7:9000") == ("10.0.0.7", 9000)

    def test_bare_port_defaults_to_localhost(self):
        assert parse_address(":9000") == ("127.0.0.1", 9000)
        assert parse_address("9000") == ("127.0.0.1", 9000)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_address("hostname")
        with pytest.raises(ValueError, match="port must be"):
            parse_address("host:0")
        with pytest.raises(ValueError, match="port must be"):
            parse_address("host:70000")


class TestFrames:
    def test_round_trip(self):
        a, b = socket.socketpair()
        with a, b:
            payload = {"seeds": list(range(5)), "nested": ("x", 1.5)}
            send_frame(a, payload)
            send_frame(a, ("chunk", 0))
            assert recv_frame(b) == payload
            assert recv_frame(b) == ("chunk", 0)

    def test_eof_raises_connection_closed(self):
        a, b = socket.socketpair()
        with b:
            a.close()
            with pytest.raises(ConnectionClosed):
                recv_frame(b)

    def test_version_mismatch_refused(self):
        a, b = socket.socketpair()
        with a, b:
            send_frame(b, ("hello", PROTOCOL_VERSION + 1))
            from repro.runtime.remote import _handshake

            with pytest.raises(ProtocolError, match="version mismatch"):
                _handshake(a)


def _threaded_worker(max_sessions=1):
    """In-process worker on an ephemeral port; returns (thread, port)."""
    ready = threading.Event()
    ports = []

    def announce(line):
        ports.append(int(line.rsplit(":", 1)[1]))
        ready.set()

    thread = threading.Thread(
        target=serve_worker,
        args=(0,),
        kwargs={"max_sessions": max_sessions, "announce": announce},
        daemon=True,
    )
    thread.start()
    assert ready.wait(10), "worker never announced its port"
    return thread, ports[0]


class TestSocketBackendInProcess:
    def test_bit_identical_to_serial(self):
        thread, port = _threaded_worker()
        backend = SocketBackend([f"127.0.0.1:{port}"])
        items = list(range(23))
        assert backend.map(square, items) == SerialBackend().map(square, items)
        thread.join(10)

    def test_chunk_size_never_changes_results(self):
        thread, port = _threaded_worker(max_sessions=3)
        backend = SocketBackend([f"127.0.0.1:{port}"])
        expected = [x * x for x in range(11)]
        for chunk in (1, 3, 100):
            assert backend.map(square, range(11), chunk_size=chunk) == expected
        thread.join(10)

    def test_executor_routes_through_socket(self):
        thread, port = _threaded_worker()
        pool = ParallelExecutor(backend=SocketBackend([f"127.0.0.1:{port}"]))
        assert pool.map(square, range(7)) == [x * x for x in range(7)]
        thread.join(10)

    def test_remote_task_error_carries_global_index(self):
        thread, port = _threaded_worker()
        backend = SocketBackend([f"127.0.0.1:{port}"])
        with pytest.raises(TaskError) as exc_info:
            backend.map(fail_on_three, [0, 1, 2, 3, 4], chunk_size=5)
        assert exc_info.value.index == 3
        assert exc_info.value.item == 3
        assert "boom at three" in exc_info.value.message
        thread.join(10)

    def test_unreachable_worker_fails_fast(self):
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        backend = SocketBackend(
            [f"127.0.0.1:{free_port}"], connect_timeout=0.5
        )
        with pytest.raises(WorkerPoolError, match="could not connect"):
            backend.map(square, [1, 2, 3])

    def test_empty_items(self):
        backend = SocketBackend(["127.0.0.1:1"])  # never connected
        assert backend.map(square, []) == []

    def test_duplicate_address_degrades_instead_of_deadlocking(self):
        # A worker serves one dispatcher session at a time, so the
        # second connection to the same address can never handshake;
        # it must time out and leave a 1-link pool, not hang the run.
        thread, port = _threaded_worker()
        backend = SocketBackend(
            [f"127.0.0.1:{port}", f"127.0.0.1:{port}"], connect_timeout=1.0
        )
        assert backend.map(square, range(8)) == [x * x for x in range(8)]
        thread.join(10)

    def test_unpicklable_item_raises_instead_of_hanging(self):
        # A task item pickle rejects is a *caller* bug: it must surface
        # as the real error, not retry on every worker until a
        # misleading WorkerPoolError (or a hang — the original bug).
        thread, port = _threaded_worker()
        backend = SocketBackend([f"127.0.0.1:{port}"])
        with pytest.raises(TypeError, match="pickle"):
            backend.map(square, [1, threading.Lock(), 3], chunk_size=3)
        thread.join(10)

    def test_worker_survives_bad_client_then_serves(self):
        # A version-mismatched (or garbage) client must cost one
        # session, not the worker: the next dispatcher still gets
        # served.
        thread, port = _threaded_worker(max_sessions=2)
        with socket.create_connection(("127.0.0.1", port), timeout=10) as bad:
            send_frame(bad, ("hello", PROTOCOL_VERSION + 1))
            with pytest.raises((ConnectionClosed, OSError)):
                while True:  # worker drops us once it sees the mismatch
                    recv_frame(bad)
        backend = SocketBackend([f"127.0.0.1:{port}"])
        assert backend.map(square, [2, 3]) == [4, 9]
        thread.join(10)


def _forked_worker(env=None):
    """Worker in a forked process; returns (process, port).

    ``env`` entries are set around the fork so the child inherits them
    (the suicide switch for drop tests).
    """
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    saved = {}
    for key, value in (env or {}).items():
        saved[key] = os.environ.get(key)
        os.environ[key] = value
    try:
        process = ctx.Process(
            target=serve_worker,
            args=(0,),
            kwargs={"max_sessions": 1, "announce": queue.put},
            daemon=True,
        )
        process.start()
    finally:
        for key, value in saved.items():
            if value is None:
                del os.environ[key]
            else:
                os.environ[key] = value
    line = queue.get(timeout=20)
    return process, int(line.rsplit(":", 1)[1])


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="drop tests fork worker processes",
)
class TestDroppedWorkers:
    def test_dropped_worker_chunks_are_requeued(self):
        # Worker A dies on its first chunk (hard os._exit, socket
        # drops); worker B must finish the whole map regardless.
        dying, port_a = _forked_worker(env={SUICIDE_ENV: "1"})
        surviving, port_b = _forked_worker()
        backend = SocketBackend(
            [f"127.0.0.1:{port_a}", f"127.0.0.1:{port_b}"]
        )
        items = list(range(20))
        try:
            result = backend.map(suicidal_task, items, chunk_size=2)
            assert result == [x * x for x in items]
        finally:
            dying.join(10)
            surviving.terminate()
            surviving.join(10)
        assert dying.exitcode == 17  # it really was killed mid-chunk

    def test_all_workers_dropped_raises(self):
        dying, port = _forked_worker(env={SUICIDE_ENV: "1"})
        backend = SocketBackend([f"127.0.0.1:{port}"])
        try:
            with pytest.raises(WorkerPoolError, match="every worker"):
                backend.map(suicidal_task, list(range(6)), chunk_size=2)
        finally:
            dying.join(10)


def _cli_worker(extra_env=None):
    """Real ``repro.cli worker`` subprocess; returns (Popen, port)."""
    env = os.environ.copy()
    env.update(extra_env or {})
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--serve",
            "0",
            "--max-sessions",
            "64",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    line = process.stdout.readline()  # blocks until the announce line
    assert "listening on" in line, f"unexpected worker output: {line!r}"
    return process, int(line.strip().rsplit(":", 1)[1])


class TestEndToEndCliWorkers:
    """The flagship contract: 2 worker subprocesses, sharded sweep."""

    def test_sharded_network_sweep_bit_identical_to_serial(self):
        config = NetworkScenarioConfig(
            topology=LineTopology(4),
            horizon=5.0,
            thresholds=(0.00178, 0.1),
            seed=2010,
        )
        serial = run_network_lifetime_sweep(config, shards=2)
        worker_a, port_a = _cli_worker()
        worker_b, port_b = _cli_worker()
        try:
            backend = SocketBackend(
                [f"127.0.0.1:{port_a}", f"127.0.0.1:{port_b}"]
            )
            remote = run_network_lifetime_sweep(
                config, shards=2, backend=backend
            )
        finally:
            worker_a.terminate()
            worker_b.terminate()
            worker_a.wait(10)
            worker_b.wait(10)
        assert remote.thresholds == serial.thresholds
        for remote_result, serial_result in zip(
            remote.results, serial.results
        ):
            assert remote_result == serial_result  # bit-identical dataclasses
