"""Tests for the ExecutionConfig seam (repro.runtime.config)."""

import pytest

from repro.runtime.backend import ProcessPoolBackend, SerialBackend
from repro.runtime.config import (
    ExecutionConfig,
    ResolvedExecution,
    resolve_execution,
)
from repro.runtime.executor import ParallelExecutor
from repro.runtime.store import ResultStore


class TestValidation:
    def test_defaults_are_valid(self):
        cfg = ExecutionConfig()
        assert cfg.workers == 1
        assert cfg.engine == "interpreted"
        assert cfg.backend is None
        assert cfg.store_dir is None

    @pytest.mark.parametrize(
        "field", ["workers", "replications", "shards", "max_replications"]
    )
    def test_positive_int_fields_name_the_field(self, field):
        for bad in (0, -1, 1.5, "2", True):
            with pytest.raises(ValueError, match=field):
                ExecutionConfig(**{field: bad})

    @pytest.mark.parametrize(
        ("field", "bad"),
        [
            ("engine", "turbo"),
            ("backend", "quantum"),
            ("seed_mode", "fixed"),
            ("shard_strategy", "random"),
        ],
    )
    def test_choice_fields_name_the_field(self, field, bad):
        with pytest.raises(ValueError, match=field):
            ExecutionConfig(**{field: bad})

    def test_bare_string_connect_rejected(self):
        # A bare string would silently iterate per character.
        with pytest.raises(ValueError, match="connect"):
            ExecutionConfig(backend="socket", connect="host:9000")

    def test_connect_requires_socket_backend(self):
        with pytest.raises(ValueError, match="connect"):
            ExecutionConfig(backend="processes", connect=("h:1",))

    def test_socket_backend_requires_connect(self):
        with pytest.raises(ValueError, match="socket"):
            ExecutionConfig(backend="socket")

    def test_list_connect_coerced_to_tuple(self):
        cfg = ExecutionConfig(backend="socket", connect=["h:1", "h:2"])
        assert cfg.connect == ("h:1", "h:2")

    def test_ci_target_must_be_positive(self):
        with pytest.raises(ValueError, match="ci_target"):
            ExecutionConfig(ci_target=0.0)
        with pytest.raises(ValueError, match="ci_target"):
            ExecutionConfig(ci_target=True)

    def test_replication_floor_above_cap_rejected_under_ci_target(self):
        with pytest.raises(ValueError, match="max_replications"):
            ExecutionConfig(ci_target=0.1, replications=65)
        # Without adaptive control the same counts are fine.
        ExecutionConfig(replications=65)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            ExecutionConfig().workers = 4


class TestSerialisation:
    def test_round_trip(self):
        cfg = ExecutionConfig(
            workers=4,
            replications=8,
            backend="socket",
            connect=("a:1", "b:2"),
            engine="vectorized",
            store_dir="/tmp/s",
            shards=3,
            shard_strategy="round-robin",
            ci_target=0.05,
        )
        assert ExecutionConfig.from_dict(cfg.to_dict()) == cfg

    def test_to_dict_is_json_plain(self):
        import json

        data = ExecutionConfig(backend="socket", connect=("a:1",)).to_dict()
        assert data["connect"] == ["a:1"]
        json.dumps(data)  # must not raise

    def test_from_dict_unknown_key_named(self):
        with pytest.raises(ValueError, match="turbo_mode"):
            ExecutionConfig.from_dict({"turbo_mode": True})

    def test_with_overrides_revalidates(self):
        cfg = ExecutionConfig(workers=2)
        assert cfg.with_overrides(workers=4).workers == 4
        with pytest.raises(ValueError, match="workers"):
            cfg.with_overrides(workers=0)


class TestFromEnv:
    def test_reads_store_workers_engine(self):
        cfg = ExecutionConfig.from_env(
            {
                "REPRO_STORE": "/tmp/store",
                "REPRO_WORKERS": "3",
                "REPRO_ENGINE": "vectorized",
            }
        )
        assert cfg.store_dir == "/tmp/store"
        assert cfg.workers == 3
        assert cfg.engine == "vectorized"

    def test_overrides_win_over_environment(self):
        cfg = ExecutionConfig.from_env({"REPRO_WORKERS": "3"}, workers=5)
        assert cfg.workers == 5

    def test_bad_workers_named(self):
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            ExecutionConfig.from_env({"REPRO_WORKERS": "many"})

    def test_empty_environment_is_defaults(self):
        assert ExecutionConfig.from_env({}) == ExecutionConfig()


class TestResolve:
    def test_default_resolves_to_no_backend_no_store(self):
        rx = ExecutionConfig().resolve()
        assert isinstance(rx, ResolvedExecution)
        assert rx.backend is None
        assert rx.store is None

    def test_backend_and_store_constructed(self, tmp_path):
        rx = ExecutionConfig(
            backend="processes", workers=2, store_dir=str(tmp_path)
        ).resolve()
        assert isinstance(rx.backend, ProcessPoolBackend)
        assert isinstance(rx.store, ResultStore)

    def test_local_backend(self):
        rx = ExecutionConfig(backend="local").resolve()
        assert isinstance(rx.backend, SerialBackend)

    def test_executor_carries_placement(self):
        rx = ExecutionConfig(backend="local", workers=2).resolve()
        executor = rx.executor()
        assert isinstance(executor, ParallelExecutor)
        assert executor.map(_square, [1, 2, 3]) == [1, 4, 9]


class TestResolveExecutionShim:
    def test_legacy_keywords_alone(self):
        rx = resolve_execution(workers=3, engine="vectorized")
        assert rx.workers == 3
        assert rx.engine == "vectorized"
        assert rx.backend is None

    def test_exec_cfg_resolved(self):
        rx = resolve_execution(ExecutionConfig(workers=2))
        assert isinstance(rx, ResolvedExecution)
        assert rx.workers == 2

    def test_resolved_passthrough(self):
        rx = ResolvedExecution(workers=7)
        assert resolve_execution(rx) is rx

    def test_default_legacy_keywords_ignored_with_exec_cfg(self):
        rx = resolve_execution(ExecutionConfig(workers=2), workers=1)
        assert rx.workers == 2

    def test_conflicting_non_default_keyword_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_execution(ExecutionConfig(), workers=4)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="turbo"):
            resolve_execution(turbo=True)

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError, match="ExecutionConfig"):
            resolve_execution({"workers": 2})


class TestDriversAcceptExecCfg:
    """exec_cfg must be bit-identical to the legacy keyword spelling."""

    def test_node_sweep_equivalence(self):
        from repro.experiments import NodeSweepConfig, run_node_energy_sweep

        cfg = NodeSweepConfig(horizon=2.0, seed=5)
        legacy = run_node_energy_sweep(cfg, replications=2)
        seamed = run_node_energy_sweep(
            cfg, exec_cfg=ExecutionConfig(replications=2)
        )
        assert seamed.breakdowns == legacy.breakdowns
        assert seamed.replicates == legacy.replicates

    def test_network_equivalence(self):
        from repro.experiments import (
            NetworkScenarioConfig,
            run_network_scenario,
        )
        from repro.models import LineTopology

        cfg = NetworkScenarioConfig(
            topology=LineTopology(3), horizon=5.0, seed=5
        )
        legacy = run_network_scenario(cfg, shards=2)
        seamed = run_network_scenario(cfg, exec_cfg=ExecutionConfig(shards=2))
        assert seamed == legacy

    def test_mixing_styles_rejected(self):
        from repro.experiments import NodeSweepConfig, run_node_energy_sweep

        with pytest.raises(TypeError, match="not both"):
            run_node_energy_sweep(
                NodeSweepConfig(horizon=2.0),
                replications=2,
                exec_cfg=ExecutionConfig(),
            )


def _square(x):
    return x * x
