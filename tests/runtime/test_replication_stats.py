"""The replication aggregator against closed-form t-intervals."""

import math

import numpy as np
import pytest
from scipy import stats

from repro.core.statistics import ConfidenceInterval, replication_interval


class TestReplicationInterval:
    def test_half_width_matches_closed_form(self):
        # Known data: mean 2, sample variance 2.5 -> s = sqrt(2.5).
        values = [0.0, 1.0, 2.0, 3.0, 4.0]
        n = len(values)
        s = math.sqrt(2.5)
        for confidence in (0.90, 0.95, 0.99):
            ci = replication_interval(values, confidence)
            tcrit = stats.t.ppf(0.5 + confidence / 2.0, df=n - 1)
            assert ci.mean == pytest.approx(2.0)
            assert ci.half_width == pytest.approx(tcrit * s / math.sqrt(n))
            assert ci.batches == n
            assert ci.confidence == confidence

    def test_known_variance_synthetic_data(self):
        # sigma = 3 normal data: the sample half-width should approach
        # the closed-form t * s / sqrt(n) computed from the sample.
        rng = np.random.default_rng(7)
        values = rng.normal(10.0, 3.0, size=40)
        ci = replication_interval(values, 0.95)
        s = float(np.std(values, ddof=1))
        expected = stats.t.ppf(0.975, df=39) * s / math.sqrt(40)
        assert ci.half_width == pytest.approx(expected)
        assert ci.contains(float(np.mean(values)))

    def test_single_value_gives_infinite_half_width(self):
        ci = replication_interval([4.2])
        assert ci.mean == pytest.approx(4.2)
        assert math.isinf(ci.half_width)
        assert ci.batches == 1

    def test_zero_variance_gives_zero_half_width(self):
        ci = replication_interval([1.5, 1.5, 1.5])
        assert ci.half_width == pytest.approx(0.0)
        assert ci.low == ci.high == pytest.approx(1.5)

    def test_returns_confidence_interval_type(self):
        assert isinstance(replication_interval([1.0, 2.0]), ConfidenceInterval)

    def test_rejects_empty_and_bad_confidence(self):
        with pytest.raises(ValueError):
            replication_interval([])
        with pytest.raises(ValueError):
            replication_interval([1.0, 2.0], confidence=1.0)

    def test_coverage_simulation(self):
        # ~95% of intervals from normal replications should contain the
        # true mean; with 200 trials the failure probability of the
        # bound below is negligible.
        rng = np.random.default_rng(123)
        hits = sum(
            replication_interval(rng.normal(5.0, 1.0, size=10)).contains(5.0)
            for _ in range(200)
        )
        assert hits >= 175
