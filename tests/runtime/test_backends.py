"""Backend seam contracts: bit-identity, chunking, error provenance.

Every :class:`~repro.runtime.backend.Backend` must be interchangeable:
same results in the same order as the serial reference, same
:class:`~repro.runtime.TaskError` provenance for a failing item —
whatever chunking was used and wherever the chunk ran.
"""

import math
import pickle

import pytest

from repro.runtime import (
    BACKEND_NAMES,
    ParallelExecutor,
    ProcessPoolBackend,
    SerialBackend,
    TaskError,
    make_backend,
)
from repro.runtime.backend import Backend


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise ValueError("boom at three")
    return x


class RecordingBackend(SerialBackend):
    """Serial backend that records the chunks it was handed."""

    def __init__(self):
        self.chunks = []

    def submit_chunks(self, fn, chunks):
        self.chunks.append([(start, list(items)) for start, items in chunks])
        return super().submit_chunks(fn, chunks)

    # Route map() through submit_chunks so the recording sees chunking.
    map = Backend.map


class TestSerialBackend:
    def test_map_matches_plain_loop(self):
        assert SerialBackend().map(square, [3, 1, 2]) == [9, 1, 4]

    def test_map_empty(self):
        assert SerialBackend().map(square, []) == []

    def test_closures_allowed(self):
        assert SerialBackend().map(lambda x: x + 1, [1, 2]) == [2, 3]

    def test_error_keeps_cause_and_index(self):
        with pytest.raises(TaskError) as exc_info:
            SerialBackend().map(fail_on_three, [1, 3, 5])
        assert exc_info.value.index == 1
        assert exc_info.value.item == 3
        assert "boom at three" in str(exc_info.value.__cause__)

    def test_submit_chunks_orders_and_offsets(self):
        chunks = [(0, [1, 2]), (2, [3, 4])]
        with pytest.raises(TaskError) as exc_info:
            SerialBackend().submit_chunks(fail_on_three, chunks)
        assert exc_info.value.index == 2  # global, not chunk-local
        out = SerialBackend().submit_chunks(square, chunks)
        assert out == [[1, 4], [9, 16]]

    def test_parallelism_is_one(self):
        assert SerialBackend().parallelism == 1


class TestProcessPoolBackend:
    def test_bit_identical_to_serial(self):
        items = list(range(17))
        assert ProcessPoolBackend(4).map(square, items) == SerialBackend().map(
            square, items
        )

    def test_chunk_size_never_changes_results(self):
        items = list(range(11))
        expected = [square(x) for x in items]
        for chunk in (1, 2, 5, 100):
            assert (
                ProcessPoolBackend(2).map(square, items, chunk_size=chunk)
                == expected
            )

    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ProcessPoolBackend(0)

    def test_mid_chunk_error_carries_global_index(self):
        # One chunk of five items: the failure happens mid-chunk inside
        # a worker process and must surface with the global index.
        with pytest.raises(TaskError) as exc_info:
            ProcessPoolBackend(2).map(
                fail_on_three, [0, 1, 2, 3, 4], chunk_size=5
            )
        assert exc_info.value.index == 3
        assert exc_info.value.item == 3
        assert "boom at three" in exc_info.value.message

    def test_parallelism_is_worker_count(self):
        assert ProcessPoolBackend(6).parallelism == 6


class TestChunkPolicy:
    def test_default_targets_four_chunks_per_slot(self):
        backend = ProcessPoolBackend(4)
        assert backend.resolve_chunk_size(160) == 10
        assert backend.resolve_chunk_size(16) == 1
        assert SerialBackend().resolve_chunk_size(0) == 1

    def test_explicit_chunk_size_wins(self):
        assert ProcessPoolBackend(4).resolve_chunk_size(160, 7) == 7

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            SerialBackend().resolve_chunk_size(10, 0)

    def test_matches_executor_resolution(self):
        for workers in (1, 2, 4):
            for n in (1, 7, 23, 160):
                assert ProcessPoolBackend(workers).resolve_chunk_size(
                    n
                ) == ParallelExecutor(workers=workers)._resolve_chunk_size(n)

    def test_map_chunks_cover_items_in_order(self):
        backend = RecordingBackend()
        out = backend.map(square, list(range(10)), chunk_size=3)
        assert out == [x * x for x in range(10)]
        [chunks] = backend.chunks
        assert [start for start, _ in chunks] == [0, 3, 6, 9]
        assert [item for _, items in chunks for item in items] == list(
            range(10)
        )


class TestExecutorResolveChunkSize:
    """Direct coverage of the executor's historical chunk policy."""

    def test_explicit_chunk_size_wins(self):
        assert ParallelExecutor(workers=4, chunk_size=3)._resolve_chunk_size(
            100
        ) == 3

    def test_default_is_ceil_over_four_times_workers(self):
        for workers in (1, 2, 3, 8):
            pool = ParallelExecutor(workers=workers)
            for n_items in (1, 5, 23, 97, 160):
                assert pool._resolve_chunk_size(n_items) == max(
                    1, math.ceil(n_items / (4 * workers))
                )

    def test_zero_items_still_positive(self):
        assert ParallelExecutor(workers=2)._resolve_chunk_size(0) == 1


class TestTaskErrorReduce:
    """TaskError must survive pickling across any process boundary."""

    def test_round_trip_preserves_fields(self):
        error = TaskError(7, {"threshold": 0.01}, "boom\ntraceback")
        clone = pickle.loads(pickle.dumps(error))
        assert isinstance(clone, TaskError)
        assert clone.index == 7
        assert clone.item == {"threshold": 0.01}
        assert clone.message == "boom\ntraceback"
        assert str(clone) == str(error)

    def test_reduce_rebuilds_from_real_fields(self):
        error = TaskError(3, (1, 2), "msg")
        cls, args = error.__reduce__()
        assert cls is TaskError
        assert args == (3, (1, 2), "msg")

    def test_worker_raised_error_survives_pool_round_trip(self):
        # The real path: raised in a worker process, pickled by the
        # pool machinery, re-raised in the parent with fields intact.
        with pytest.raises(TaskError) as exc_info:
            ProcessPoolBackend(2).map(
                fail_on_three, [3, 0, 1], chunk_size=1
            )
        assert exc_info.value.index == 0
        assert exc_info.value.item == 3


class TestExecutorBackendDelegation:
    def test_explicit_backend_is_used(self):
        backend = RecordingBackend()
        out = ParallelExecutor(backend=backend).map(square, range(9))
        assert out == [x * x for x in range(9)]
        assert backend.chunks  # the map went through the backend seam

    def test_explicit_backend_honours_executor_chunk_size(self):
        backend = RecordingBackend()
        ParallelExecutor(backend=backend, chunk_size=2).map(square, range(5))
        [chunks] = backend.chunks
        assert [start for start, _ in chunks] == [0, 2, 4]

    def test_all_backends_bit_identical(self):
        items = list(range(13))
        reference = SerialBackend().map(square, items)
        for backend in (ProcessPoolBackend(2), ProcessPoolBackend(3, None)):
            assert (
                ParallelExecutor(backend=backend).map(square, items)
                == reference
            )


class TestMakeBackend:
    def test_names_cover_specs(self):
        assert BACKEND_NAMES == ("local", "processes", "socket")

    def test_local(self):
        assert isinstance(make_backend("local"), SerialBackend)

    def test_processes_carries_workers(self):
        backend = make_backend("processes", workers=5)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.parallelism == 5

    def test_socket_requires_addresses(self):
        with pytest.raises(ValueError, match="worker address"):
            make_backend("socket")

    def test_socket_builds_dispatcher(self):
        from repro.runtime.remote import SocketBackend

        backend = make_backend("socket", addresses=["h1:9000", "h2:9001"])
        assert isinstance(backend, SocketBackend)
        assert backend.parallelism == 2

    def test_unknown_spec_rejected(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            make_backend("carrier-pigeon")
