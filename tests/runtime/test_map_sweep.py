"""map_sweep determinism: workers must never change results."""

import numpy as np
import pytest

from repro.experiments.sweep import SweepPoint
from repro.runtime import ReplicatedValue, map_sweep


def seeded_noise(threshold, seed):
    """A cheap stochastic evaluate: threshold + seeded noise."""
    return threshold + float(np.random.default_rng(seed).normal(0.0, 0.5))


class TestDeterminism:
    def test_workers_1_vs_4_identical_at_fixed_seed(self):
        grid = [0.001, 0.01, 0.1, 1.0, 10.0]
        serial = map_sweep(seeded_noise, grid, seed=2010, workers=1)
        parallel = map_sweep(seeded_noise, grid, seed=2010, workers=4)
        assert [p.threshold for p in serial] == grid
        assert serial == parallel  # SweepPoint is a frozen dataclass

    def test_workers_1_vs_4_identical_with_replications(self):
        grid = [0.1, 1.0]
        serial = map_sweep(
            seeded_noise, grid, seed=42, workers=1, replications=5
        )
        parallel = map_sweep(
            seeded_noise, grid, seed=42, workers=4, replications=5
        )
        assert serial == parallel

    def test_same_seed_reproduces(self):
        a = map_sweep(seeded_noise, [0.5], seed=1)
        b = map_sweep(seeded_noise, [0.5], seed=1)
        assert a == b

    def test_different_seeds_differ(self):
        a = map_sweep(seeded_noise, [0.5], seed=1)
        b = map_sweep(seeded_noise, [0.5], seed=2)
        assert a != b


class TestReplications:
    def test_single_replication_returns_bare_value(self):
        [point] = map_sweep(seeded_noise, [0.5], seed=3)
        assert isinstance(point, SweepPoint)
        assert isinstance(point.value, float)

    def test_multi_replication_returns_replicated_value(self):
        [point] = map_sweep(seeded_noise, [0.5], seed=3, replications=6)
        value = point.value
        assert isinstance(value, ReplicatedValue)
        assert len(value.values) == 6
        assert len(set(value.seeds)) == 6

    def test_replication_streams_are_distinct(self):
        [point] = map_sweep(seeded_noise, [0.5], seed=3, replications=8)
        assert len(set(point.value.values)) == 8

    def test_interval_covers_true_mean(self):
        [point] = map_sweep(seeded_noise, [0.5], seed=3, replications=64)
        ci = point.value.interval()
        assert ci.low < 0.5 < ci.high
        assert point.value.mean() == pytest.approx(ci.mean)

    def test_rejects_zero_replications(self):
        with pytest.raises(ValueError):
            map_sweep(seeded_noise, [0.5], replications=0)


class TestExperimentDrivers:
    """End-to-end: the rewired drivers are worker-count invariant."""

    @pytest.mark.slow
    def test_node_sweep_workers_invariant(self):
        from repro.experiments import NodeSweepConfig, run_node_energy_sweep

        cfg = NodeSweepConfig(horizon=5.0, thresholds=(0.001, 0.00178, 0.1))
        serial = run_node_energy_sweep(cfg, workers=1)
        parallel = run_node_energy_sweep(cfg, workers=4)
        assert serial.total_energy_j == parallel.total_energy_j
        assert serial.optimum() == parallel.optimum()

    @pytest.mark.slow
    def test_network_lifetime_workers_invariant(self):
        from repro.models.network import LineTopology, SensorNetworkModel

        model = SensorNetworkModel(LineTopology(3))
        serial = model.simulate(5.0, seed=9, workers=1)
        parallel = model.simulate(5.0, seed=9, workers=2)
        assert [n.energy_j for n in serial.nodes] == [
            n.energy_j for n in parallel.nodes
        ]
        assert serial.network_lifetime_days == parallel.network_lifetime_days
