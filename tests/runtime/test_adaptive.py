"""Adaptive replication control: stopping rule, prefix reproducibility.

The acceptance contract: the replications an adaptive run executes are
a bit-identical prefix of the fixed ``max_replications`` run at the
same seed, for every ``workers`` setting.
"""

import numpy as np
import pytest

from repro.runtime import (
    AdaptiveSettings,
    ParallelExecutor,
    ReplicatedValue,
    map_sweep,
    run_adaptive_rounds,
)


def seeded_noise(threshold, seed):
    """Stochastic evaluate whose noise scales with the threshold."""
    return 1.0 + threshold * float(
        np.random.default_rng(seed).normal(0.0, 1.0)
    )


def _identity(task):
    return task


class TestAdaptiveSettings:
    def test_round_size_defaults_to_min_replications(self):
        s = AdaptiveSettings(ci_target=0.1, min_replications=3)
        assert s.round_size == 3
        assert AdaptiveSettings(ci_target=0.1, batch_size=5).round_size == 5

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            AdaptiveSettings(ci_target=0.0)
        with pytest.raises(ValueError):
            AdaptiveSettings(ci_target=0.1, min_replications=1)
        with pytest.raises(ValueError):
            AdaptiveSettings(ci_target=0.1, min_replications=8, max_replications=4)
        with pytest.raises(ValueError):
            AdaptiveSettings(ci_target=0.1, batch_size=0)
        with pytest.raises(ValueError):
            AdaptiveSettings(ci_target=0.1, confidence=1.0)


class TestRunAdaptiveRounds:
    def test_constant_metric_stops_at_min_replications(self):
        runs = run_adaptive_rounds(
            _identity,
            lambda i, r: 2.5,
            3,
            AdaptiveSettings(ci_target=0.05, min_replications=2),
        )
        assert [run.replications for run in runs] == [2, 2, 2]
        assert all(run.converged for run in runs)

    def test_constant_zero_metric_converges(self):
        # Regression tied to relative_half_width(): a 0 ± 0 interval is
        # perfectly precise and must satisfy the stopping rule, not
        # spin to max_replications on an inf relative width.
        [run] = run_adaptive_rounds(
            _identity,
            lambda i, r: 0.0,
            1,
            AdaptiveSettings(ci_target=0.05, max_replications=8),
        )
        assert run.converged
        assert run.replications == 2

    def test_never_converging_point_hits_max(self):
        [run] = run_adaptive_rounds(
            _identity,
            lambda i, r: float(r),  # linear drift: CI never tightens
            1,
            AdaptiveSettings(ci_target=1e-9, min_replications=2, max_replications=7),
        )
        assert not run.converged
        assert run.replications == 7

    def test_round_growth_uses_batch_size(self):
        calls: list[int] = []

        def task_for(i, r):
            calls.append(r)
            return float(r)

        run_adaptive_rounds(
            _identity,
            task_for,
            1,
            AdaptiveSettings(
                ci_target=1e-9, min_replications=2, max_replications=9, batch_size=3
            ),
        )
        # Rounds: 2, then +3, +3, then +1 capped at max.
        assert calls == list(range(9))

    def test_multi_metric_requires_all_to_converge(self):
        # Metric 0 is constant (instantly tight); metric 1 drifts.
        [run] = run_adaptive_rounds(
            _identity,
            lambda i, r: (1.0, float(r)),
            1,
            AdaptiveSettings(ci_target=0.05, max_replications=6),
            metrics=lambda v: v,
        )
        assert not run.converged
        assert run.replications == 6

    def test_workers_do_not_change_decisions(self):
        settings = AdaptiveSettings(ci_target=0.5, max_replications=8)
        serial = run_adaptive_rounds(
            seeded_eval_task,
            lambda i, r: (0.5 * (i + 1), 1000 * i + r),
            3,
            settings,
        )
        parallel = run_adaptive_rounds(
            seeded_eval_task,
            lambda i, r: (0.5 * (i + 1), 1000 * i + r),
            3,
            settings,
            executor=ParallelExecutor(workers=2),
        )
        assert [run.values for run in serial] == [run.values for run in parallel]
        assert [run.converged for run in serial] == [
            run.converged for run in parallel
        ]


def seeded_eval_task(task):
    """Module-level (picklable) wrapper for multi-process rounds."""
    threshold, seed = task
    return seeded_noise(threshold, seed)


class TestMapSweepAdaptive:
    GRID = [0.01, 0.2, 2.0]

    def test_adaptive_is_prefix_of_fixed_run(self):
        fixed = map_sweep(seeded_noise, self.GRID, seed=11, replications=16)
        adaptive = map_sweep(
            seeded_noise, self.GRID, seed=11, ci_target=0.2, max_replications=16
        )
        for f, a in zip(fixed, adaptive):
            k = a.value.replications
            assert a.value.values == f.value.values[:k]
            assert a.value.seeds == f.value.seeds[:k]

    def test_adaptive_independent_of_workers(self):
        kwargs = dict(seed=11, ci_target=0.2, max_replications=16)
        serial = map_sweep(seeded_noise, self.GRID, workers=1, **kwargs)
        parallel = map_sweep(seeded_noise, self.GRID, workers=3, **kwargs)
        assert serial == parallel  # frozen dataclasses: bit-identical

    def test_noisier_points_replicate_more(self):
        points = map_sweep(
            seeded_noise,
            [0.01, 2.0],
            seed=11,
            ci_target=0.2,
            max_replications=32,
        )
        quiet, noisy = points
        assert quiet.value.converged
        assert quiet.value.replications < noisy.value.replications

    def test_max_replications_cap(self):
        [point] = map_sweep(
            seeded_noise, [5.0], seed=11, ci_target=1e-9, max_replications=5
        )
        assert point.value.replications == 5
        assert point.value.converged is False

    def test_replications_acts_as_min_floor(self):
        [point] = map_sweep(
            seeded_noise,
            [0.001],
            seed=11,
            replications=6,
            ci_target=0.5,
            max_replications=16,
        )
        assert point.value.replications >= 6

    def test_always_returns_replicated_values_with_flag(self):
        points = map_sweep(
            seeded_noise, self.GRID, seed=11, ci_target=0.5, max_replications=8
        )
        for p in points:
            assert isinstance(p.value, ReplicatedValue)
            assert p.value.converged in (True, False)
            assert len(p.value.seeds) == p.value.replications

    def test_fixed_sweeps_leave_converged_unset(self):
        [point] = map_sweep(seeded_noise, [0.5], seed=11, replications=3)
        assert point.value.converged is None
