"""ParallelExecutor: ordering, chunking, fallback and error contracts."""

import pytest

from repro.runtime import ParallelExecutor, TaskError
from repro.runtime.executor import _run_chunk


def square(x):
    return x * x


def fail_on_three(x):
    if x == 3:
        raise ValueError("boom at three")
    return x


class TestValidation:
    def test_rejects_bad_workers(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=0)

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            ParallelExecutor(workers=2, chunk_size=0)


class TestSerialFallback:
    def test_maps_in_order(self):
        out = ParallelExecutor(workers=1).map(square, [3, 1, 2])
        assert out == [9, 1, 4]

    def test_empty_items(self):
        assert ParallelExecutor(workers=1).map(square, []) == []

    def test_closures_allowed_serially(self):
        out = ParallelExecutor(workers=1).map(lambda x: x + 1, [1, 2])
        assert out == [2, 3]

    def test_error_carries_item_and_index(self):
        with pytest.raises(TaskError) as exc_info:
            ParallelExecutor(workers=1).map(fail_on_three, [1, 3, 5])
        assert exc_info.value.index == 1
        assert exc_info.value.item == 3
        assert "boom at three" in str(exc_info.value.__cause__)


class TestParallel:
    def test_results_ordered_and_identical_to_serial(self):
        items = list(range(17))
        serial = ParallelExecutor(workers=1).map(square, items)
        parallel = ParallelExecutor(workers=4).map(square, items)
        assert parallel == serial

    def test_chunk_size_does_not_change_results(self):
        items = list(range(11))
        expected = [square(x) for x in items]
        for chunk in (1, 2, 5, 100):
            got = ParallelExecutor(workers=2, chunk_size=chunk).map(
                square, items
            )
            assert got == expected

    def test_error_carries_global_index(self):
        with pytest.raises(TaskError) as exc_info:
            ParallelExecutor(workers=2, chunk_size=1).map(
                fail_on_three, [0, 1, 2, 3, 4]
            )
        assert exc_info.value.index == 3
        assert exc_info.value.item == 3

    @pytest.mark.slow
    def test_spawn_context_is_safe(self):
        # 'spawn' workers import everything fresh: proves the task
        # closure-free/pickling contract end to end.
        out = ParallelExecutor(workers=2, mp_context="spawn").map(
            square, [2, 4, 6]
        )
        assert out == [4, 16, 36]


class TestChunkHelpers:
    def test_default_chunk_size_balances_load(self):
        pool = ParallelExecutor(workers=4)
        assert pool._resolve_chunk_size(16) == 1
        assert pool._resolve_chunk_size(160) == 10
        assert ParallelExecutor(workers=1)._resolve_chunk_size(0) == 1

    def test_run_chunk_offsets_index(self):
        with pytest.raises(TaskError) as exc_info:
            _run_chunk(fail_on_three, 10, [1, 3])
        assert exc_info.value.index == 11
