"""The result-store safety battery: hashing, integrity, memoization.

Three claims guard the cache against silently-wrong science:

1. **Key canonicalization is semantic.**  Representation details
   (dict insertion order, numpy vs Python scalars, tuple vs list,
   newly added defaulted dataclass fields) never change a key;
   semantic details (horizon, seed, parameter values, class identity,
   task function) always do.  Checked property-style with Hypothesis.
2. **Integrity failures degrade to recompute.**  Truncation, garbage,
   bit flips, version skew and unpicklable payloads each warn
   (:class:`StoreWarning`), delete the bad entry, and read as a miss —
   never a crash, never a wrong hit.
3. **The execution wrappers submit exactly the misses.**  ``cached_map``
   / ``cached_ensemble_map`` / ``map_shards`` / the adaptive controller
   serve hits in the parent and recompute only what is missing, and a
   warm run is bit-identical to a cold one.
"""

import dataclasses
import json
import pickle
import warnings
from dataclasses import dataclass, make_dataclass

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.adaptive import AdaptiveSettings, run_adaptive_rounds
from repro.runtime.executor import ParallelExecutor
from repro.runtime.sharding import map_shards, partition_indices, run_sharded
from repro.runtime.store import (
    ENTRY_MAGIC,
    KEY_SCHEMA,
    STORE_SCHEMA,
    ResultStore,
    StoreWarning,
    cached_ensemble_map,
    cached_map,
    canonical_json,
    canonicalize,
    request_key,
    task_key,
)

# ----------------------------------------------------------------------
# Module-level task functions (content-addressable: stable qualnames)
# ----------------------------------------------------------------------


def square(x):
    return x * x


def noisy(task):
    """threshold + seeded noise — a stand-in simulation replication."""
    threshold, seed = task
    return threshold + float(np.random.default_rng(seed).normal(0.0, 0.5))


def noisy_ensemble(task):
    """All replications of one point in one task (vectorized shape)."""
    threshold, seeds = task
    return [noisy((threshold, s)) for s in seeds]


def bad_ensemble(task):
    """An ensemble task that drops a value (contract violation)."""
    return noisy_ensemble(task)[:-1]


class CountingPool:
    """A serial pool that records every item submitted through it."""

    def __init__(self):
        self.submitted = []

    def map(self, fn, items):
        items = list(items)
        self.submitted.extend(items)
        return [fn(item) for item in items]


@dataclass(frozen=True)
class SpecA:
    horizon: float = 900.0
    seed: int = 2010


@dataclass(frozen=True)
class SpecB:  # same shape as SpecA on purpose: class identity must matter
    horizon: float = 900.0
    seed: int = 2010


# ----------------------------------------------------------------------
# Canonicalization properties
# ----------------------------------------------------------------------

json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(-(10**9), 10**9),
    st.floats(allow_nan=False),
    st.text(max_size=12),
)


class TestCanonicalizationProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.dictionaries(st.text(max_size=8), json_scalars, max_size=6))
    def test_dict_insertion_order_never_matters(self, d):
        reversed_d = dict(reversed(list(d.items())))
        assert canonical_json(d) == canonical_json(reversed_d)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(allow_nan=False, width=64))
    def test_numpy_float_equals_python_float(self, x):
        assert canonicalize(np.float64(x)) == canonicalize(x)

    @settings(max_examples=100, deadline=None)
    @given(st.integers(-(2**40), 2**40))
    def test_numpy_int_equals_python_int(self, n):
        assert canonicalize(np.int64(n)) == canonicalize(n)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(json_scalars, max_size=6))
    def test_tuple_equals_list(self, xs):
        assert canonical_json(tuple(xs)) == canonical_json(xs)

    @settings(max_examples=100, deadline=None)
    @given(st.floats(allow_nan=False), st.floats(allow_nan=False))
    def test_distinct_float_bits_give_distinct_keys(self, a, b):
        same_bits = a.hex() == b.hex()
        same_key = task_key(noisy, (a, 1)) == task_key(noisy, (b, 1))
        assert same_key == same_bits

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 2**31), st.integers(0, 2**31))
    def test_seed_is_semantic(self, s1, s2):
        k1 = task_key(noisy, (0.5, s1))
        k2 = task_key(noisy, (0.5, s2))
        assert (k1 == k2) == (s1 == s2)

    @settings(max_examples=50, deadline=None)
    @given(st.floats(min_value=1e-6, max_value=1e6))
    def test_key_is_stable_across_calls(self, horizon):
        item = {"horizon": horizon, "seed": 7}
        assert task_key(noisy, item) == task_key(noisy, item)

    def test_task_function_is_semantic(self):
        item = (0.5, 7)
        assert task_key(noisy, item) != task_key(square, item)

    def test_nested_mapping_order(self):
        a = {"outer": {"x": 1, "y": 2}, "z": [1, 2]}
        b = {"z": (1, 2), "outer": {"y": 2, "x": 1}}
        assert canonical_json(a) == canonical_json(b)


class TestDataclassFieldRules:
    def test_newly_added_defaulted_field_keeps_the_key(self):
        # The schema-evolution scenario: a config dataclass grows a new
        # defaulted field between releases.  Old entries must stay valid.
        Old = make_dataclass(
            "Cfg", [("horizon", float), ("seed", int)], frozen=True
        )
        New = make_dataclass(
            "Cfg",
            [
                ("horizon", float),
                ("seed", int),
                ("engine_hint", str, dataclasses.field(default="auto")),
            ],
            frozen=True,
        )
        assert canonical_json(Old(900.0, 7)) == canonical_json(New(900.0, 7))
        # ... but setting the new field off its default is semantic.
        assert canonical_json(New(900.0, 7)) != canonical_json(
            New(900.0, 7, engine_hint="other")
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(allow_nan=False, min_value=1e-6, max_value=1e6),
        st.integers(0, 2**31),
    )
    def test_explicit_default_equals_omitted_default(self, horizon, seed):
        assert canonical_json(SpecA()) == canonical_json(
            SpecA(horizon=900.0, seed=2010)
        )
        changed = SpecA(horizon=horizon, seed=seed)
        base = SpecA()
        assert (canonical_json(changed) == canonical_json(base)) == (
            changed == base
        )

    def test_class_identity_is_semantic(self):
        assert canonical_json(SpecA()) != canonical_json(SpecB())

    def test_field_values_are_semantic(self):
        assert canonical_json(SpecA(horizon=901.0)) != canonical_json(SpecA())
        assert canonical_json(SpecA(seed=7)) != canonical_json(SpecA())


class TestCanonicalizationRejections:
    def test_lambda_is_rejected(self):
        with pytest.raises(TypeError, match="lambdas"):
            task_key(lambda x: x, 1)

    def test_closure_is_rejected(self):
        def make():
            y = 2

            def inner(x):
                return x + y

            return inner

        with pytest.raises(TypeError, match="content-addressable"):
            canonicalize(make())

    def test_opaque_object_is_rejected(self):
        with pytest.raises(TypeError, match="cannot canonicalize"):
            canonicalize(object())

    def test_module_level_callable_hashes_by_qualname(self):
        assert canonicalize(square) == ["fn", f"{__name__}:square"]


# ----------------------------------------------------------------------
# ResultStore basics
# ----------------------------------------------------------------------


class TestResultStore:
    def test_round_trip_and_counters(self, tmp_path):
        store = ResultStore(tmp_path)
        key = task_key(noisy, (0.5, 7))
        assert store.get(key) == (False, None)
        store.put(key, 42.0)
        assert store.get(key) == (True, 42.0)
        assert (store.hits, store.misses, store.puts) == (1, 1, 1)

    def test_persists_across_instances(self, tmp_path):
        key = task_key(noisy, (0.5, 7))
        ResultStore(tmp_path).put(key, {"energy": 1.25})
        assert ResultStore(tmp_path).get(key) == (True, {"energy": 1.25})

    def test_values_round_trip_bit_identically(self, tmp_path):
        store = ResultStore(tmp_path)
        value = (SpecA(horizon=3.0), np.float64(0.125), [1, 2, (3, "x")])
        key = task_key(noisy, (0.1, 1))
        store.put(key, value)
        _, loaded = store.get(key)
        assert pickle.dumps(loaded, 5) == pickle.dumps(value, 5)

    def test_stats_and_lines(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(task_key(noisy, (0.5, 1)), 1.0)
        store.put(task_key(noisy, (0.5, 2)), 2.0)
        stats = store.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.puts == 2
        assert "entries : 2" in stats.lines()

    def test_flush_counters_survive_the_process(self, tmp_path):
        # What makes `repro.cli store stats` (a fresh process) useful.
        store = ResultStore(tmp_path)
        key = task_key(noisy, (0.5, 1))
        store.put(key, 1.0)
        store.get(key)
        store.get(task_key(noisy, (0.5, 99)))
        store.flush_counters()
        assert (store.hits, store.misses, store.puts) == (0, 0, 0)
        fresh = ResultStore(tmp_path).stats()
        assert (fresh.hits, fresh.misses, fresh.puts) == (1, 1, 1)

    def test_verify_and_gc_on_healthy_store(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(task_key(noisy, (0.5, 1)), 1.0)
        assert store.verify() == (1, [])
        assert store.gc() == (0, 0)

    def test_malformed_key_is_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="64-char"):
            store.get("not-a-digest")
        with pytest.raises(ValueError, match="64-char"):
            store.put("AB" * 32, 1.0)  # uppercase: not canonical hex

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in range(5):
            store.put(task_key(noisy, (0.5, seed)), float(seed))
        assert not list(store.objects_dir.glob("**/.*.tmp"))

    def test_contains_is_pure_introspection(self, tmp_path):
        # The serving layer's read-path probe: no counters, no payload
        # read, and a disabled store always answers False.
        store = ResultStore(tmp_path)
        key = task_key(noisy, (0.5, 7))
        assert not store.contains(key)
        store.put(key, 1.0)
        store.flush_counters()
        assert store.contains(key)
        assert (store.hits, store.misses) == (0, 0)

    def test_contains_answers_false_on_a_disabled_store(self, tmp_path):
        store, key, _path = _single_entry(tmp_path)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["store_schema"] = STORE_SCHEMA + 1
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.warns(StoreWarning, match="store disabled"):
            skewed = ResultStore(tmp_path)
        assert not skewed.contains(key)  # entry exists, schema doesn't match


class TestRequestKey:
    def test_insertion_order_never_matters(self):
        a = request_key({"scenario": {"x": 1, "y": 2}, "smoke": False})
        b = request_key({"smoke": False, "scenario": {"y": 2, "x": 1}})
        assert a == b

    def test_semantic_changes_always_matter(self):
        base = request_key({"scenario": {"horizon": 2.0}})
        assert base != request_key({"scenario": {"horizon": 3.0}})
        assert base != request_key({"scenario": {"horizon": 2.0}, "s": 1})

    def test_distinct_from_task_key_namespace(self):
        # Same canonical payload, different key family: a request digest
        # can never collide into the task-entry address space.
        payload = {"threshold": 0.5, "seed": 7}
        assert request_key(payload) != task_key(noisy, payload)

    def test_shape_is_a_store_grade_digest(self):
        digest = request_key({"scenario": {}})
        assert len(digest) == 64
        assert set(digest) <= set("0123456789abcdef")


# ----------------------------------------------------------------------
# Fault injection: every corruption degrades to a warned recompute
# ----------------------------------------------------------------------


def _single_entry(tmp_path, value=42.0):
    store = ResultStore(tmp_path)
    key = task_key(noisy, (0.5, 7))
    store.put(key, value)
    [path] = store._entry_files()
    return store, key, path


CORRUPTIONS = {
    "truncated_payload": lambda blob: blob[:-3],
    "truncated_below_header": lambda blob: blob[:10],
    "garbage_bytes": lambda blob: b"not a store entry at all",
    "checksum_bit_flip": lambda blob: (
        blob[:-1] + bytes([blob[-1] ^ 0x01])
    ),
    "future_entry_format": lambda blob: (
        b"RPRSTOR9" + blob[len(ENTRY_MAGIC) :]
    ),
    "empty_file": lambda blob: b"",
}


class TestFaultInjection:
    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_corruption_degrades_to_warned_miss(self, tmp_path, name):
        store, key, path = _single_entry(tmp_path)
        path.write_bytes(CORRUPTIONS[name](path.read_bytes()))
        with pytest.warns(StoreWarning, match="recomputing"):
            assert store.get(key) == (False, None)
        assert store.corrupt == 1
        assert not path.exists(), "bad entry must be dropped so a put heals it"
        # The recomputed value heals the entry; reads verify again.
        store.put(key, 42.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.get(key) == (True, 42.0)

    def test_unpicklable_payload_with_valid_checksum(self, tmp_path):
        # Checksums pass but the payload is not a pickle: the unpickle
        # failure must still degrade to a warned miss, not an exception.
        import hashlib

        store, key, path = _single_entry(tmp_path)
        payload = b"this is not a pickle"
        path.write_bytes(
            ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload
        )
        with pytest.warns(StoreWarning, match="unpickle"):
            assert store.get(key) == (False, None)

    @pytest.mark.parametrize("name", sorted(CORRUPTIONS))
    def test_verify_flags_and_gc_reclaims(self, tmp_path, name):
        store, _key, path = _single_entry(tmp_path)
        store.put(task_key(noisy, (0.5, 8)), 43.0)
        path.write_bytes(CORRUPTIONS[name](path.read_bytes()))
        ok, bad = store.verify()
        assert ok == 1
        assert bad == [path]
        removed, _reclaimed = store.gc()
        assert removed == 1
        assert store.verify() == (1, [])

    def test_manifest_schema_skew_disables_the_store(self, tmp_path):
        store, key, _path = _single_entry(tmp_path)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["store_schema"] = STORE_SCHEMA + 1
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.warns(StoreWarning, match="store disabled"):
            skewed = ResultStore(tmp_path)
        assert not skewed.enabled
        assert skewed.get(key) == (False, None)  # reads miss
        skewed.put(key, 99.0)  # writes are skipped ...
        # ... so a same-schema instance still sees the original value.
        manifest["store_schema"] = STORE_SCHEMA
        store.manifest_path.write_text(json.dumps(manifest))
        assert ResultStore(tmp_path).get(key) == (True, 42.0)

    def test_key_schema_skew_also_disables(self, tmp_path):
        store = ResultStore(tmp_path)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["key_schema"] = KEY_SCHEMA + 1
        store.manifest_path.write_text(json.dumps(manifest))
        with pytest.warns(StoreWarning, match="store disabled"):
            assert not ResultStore(tmp_path).enabled

    def test_garbage_manifest_is_rewritten(self, tmp_path):
        store = ResultStore(tmp_path)
        store.manifest_path.write_text("{ not json")
        with pytest.warns(StoreWarning, match="unreadable"):
            reopened = ResultStore(tmp_path)
        assert reopened.enabled
        assert json.loads(reopened.manifest_path.read_text())[
            "store_schema"
        ] == STORE_SCHEMA

    def test_corrupt_entry_mid_cached_map_recomputes_only_it(self, tmp_path):
        store = ResultStore(tmp_path)
        items = [(0.5, s) for s in range(4)]
        expected = cached_map(CountingPool(), noisy, items, store)
        [victim] = [
            p for p in store._entry_files() if p.name == task_key(noisy, items[2])
        ]
        blob = victim.read_bytes()
        victim.write_bytes(blob[:-2])
        pool = CountingPool()
        with pytest.warns(StoreWarning, match="recomputing"):
            warm = cached_map(pool, noisy, items, store)
        assert warm == expected
        assert pool.submitted == [items[2]]


# ----------------------------------------------------------------------
# cached_map / cached_ensemble_map submit exactly the misses
# ----------------------------------------------------------------------


class TestCachedMap:
    def test_without_store_is_plain_map(self):
        pool = CountingPool()
        items = [(0.5, s) for s in range(3)]
        assert cached_map(pool, noisy, items, None) == [noisy(i) for i in items]
        assert pool.submitted == items

    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path)
        items = [(0.5, s) for s in range(4)]
        cold_pool = CountingPool()
        cold = cached_map(cold_pool, noisy, items, store)
        assert cold_pool.submitted == items
        warm_pool = CountingPool()
        warm = cached_map(warm_pool, noisy, items, store)
        assert warm_pool.submitted == []
        assert warm == cold

    def test_partial_warm_submits_only_new_items(self, tmp_path):
        store = ResultStore(tmp_path)
        cached_map(CountingPool(), noisy, [(0.5, 0), (0.5, 1)], store)
        pool = CountingPool()
        grown = [(0.5, 0), (0.5, 2), (0.5, 1), (0.5, 3)]
        result = cached_map(pool, noisy, grown, store)
        assert pool.submitted == [(0.5, 2), (0.5, 3)]
        assert result == [noisy(i) for i in grown]


class TestCachedEnsembleMap:
    def _run(self, pool, store, seeds_per_point):
        points = [0.1, 0.5]
        tasks = [(t, tuple(seeds_per_point)) for t in points]
        return cached_ensemble_map(
            pool,
            noisy_ensemble,
            tasks,
            store,
            key_fn=noisy,
            rep_items=[[(t, s) for s in seeds_per_point] for t in points],
            rebuild_tail=lambda i, start: (
                points[i],
                tuple(seeds_per_point[start:]),
            ),
        )

    def test_cold_then_warm(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = self._run(CountingPool(), store, [1, 2, 3])
        warm_pool = CountingPool()
        warm = self._run(warm_pool, store, [1, 2, 3])
        assert warm_pool.submitted == []
        assert warm == cold

    def test_top_up_submits_only_the_tail(self, tmp_path):
        # The incremental re-run: raise the replication count and only
        # the new suffix is computed, per point.
        store = ResultStore(tmp_path)
        self._run(CountingPool(), store, [1, 2])
        pool = CountingPool()
        grown = self._run(pool, store, [1, 2, 3, 4])
        assert pool.submitted == [(0.1, (3, 4)), (0.5, (3, 4))]
        assert grown == self._run(CountingPool(), ResultStore(tmp_path), [1, 2, 3, 4])
        full_cold = [
            noisy_ensemble((t, (1, 2, 3, 4))) for t in (0.1, 0.5)
        ]
        assert grown == full_cold

    def test_shared_keys_with_cached_map(self, tmp_path):
        # The engine-equivalence contract: per-replication keys written
        # by the interpreted path serve the ensemble path, and back.
        store = ResultStore(tmp_path)
        items = [(t, s) for t in (0.1, 0.5) for s in (1, 2, 3)]
        cached_map(CountingPool(), noisy, items, store)
        pool = CountingPool()
        self._run(pool, store, [1, 2, 3])
        assert pool.submitted == []

    def test_mismatched_rep_items_is_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="points"):
            cached_ensemble_map(
                CountingPool(),
                noisy_ensemble,
                [(0.1, (1,)), (0.5, (1,))],
                store,
                key_fn=noisy,
                rep_items=[[(0.1, 1)]],
                rebuild_tail=lambda i, start: (0.1, (1,)),
            )

    def test_short_ensemble_return_is_an_error(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ValueError, match="expected"):
            cached_ensemble_map(
                CountingPool(),
                bad_ensemble,
                [(0.1, (1, 2))],
                store,
                key_fn=noisy,
                rep_items=[[(0.1, 1), (0.1, 2)]],
                rebuild_tail=lambda i, start: (0.1, (1, 2)[start:]),
            )


# ----------------------------------------------------------------------
# Sharded and adaptive layers share the same per-replication entries
# ----------------------------------------------------------------------


class TestShardedStore:
    def test_shard_plan_never_enters_the_key(self, tmp_path):
        store = ResultStore(tmp_path)
        items = [(0.5, s) for s in range(7)]
        plan_a = partition_indices(len(items), 2, "contiguous")
        cold = run_sharded(noisy, items, plan_a, store=store)
        puts_after_cold = store.puts
        assert puts_after_cold == len(items)
        # A different shard count *and* strategy reads the same entries.
        plan_b = partition_indices(len(items), 3, "round-robin")
        warm = run_sharded(noisy, items, plan_b, store=store)
        assert warm == cold
        assert store.puts == puts_after_cold  # nothing recomputed
        assert store.hits == len(items)

    def test_partially_warm_shards_compute_only_missing(self, tmp_path):
        store = ResultStore(tmp_path)
        items = [(0.5, s) for s in range(6)]
        plan = partition_indices(len(items), 3, "contiguous")
        for s in (0, 1, 4):  # warm shard 0 fully, shard 2 partially
            store.put(task_key(noisy, (0.5, s)), noisy((0.5, s)))
        per_shard = map_shards(noisy, items, plan, store=store)
        assert per_shard == [
            [noisy(items[i]) for i in shard.node_indices]
            for shard in plan.shards
        ]
        assert store.puts == 3 + 3  # the warm-up puts + the 3 misses


class TestAdaptiveStore:
    SETTINGS = dict(ci_target=1e-9, min_replications=2)  # never converges

    def _run(self, store, max_replications, **kwargs):
        return run_adaptive_rounds(
            noisy,
            lambda i, r: ((0.1, 0.5)[i], 100 + 17 * i + r),
            2,
            AdaptiveSettings(max_replications=max_replications, **self.SETTINGS),
            executor=ParallelExecutor(workers=1),
            store=store,
            **kwargs,
        )

    def _ensemble_kwargs(self):
        return dict(
            ensemble_fn=noisy_ensemble,
            ensemble_task_for=lambda i, start, n: (
                (0.1, 0.5)[i],
                tuple(100 + 17 * i + r for r in range(start, start + n)),
            ),
        )

    def test_warm_adaptive_run_is_all_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        cold = self._run(store, 4)
        store.hits = store.misses = 0
        warm = self._run(store, 4)
        assert [r.values for r in warm] == [r.values for r in cold]
        assert store.misses == 0
        assert store.hits == sum(r.replications for r in cold)

    def test_raising_max_replications_reuses_the_prefix(self, tmp_path):
        store = ResultStore(tmp_path)
        short = self._run(store, 4)
        store.hits = store.misses = 0
        long = self._run(store, 8)
        for short_run, long_run in zip(short, long):
            assert long_run.values[:4] == short_run.values
        assert store.hits == 2 * 4  # the cached prefix, both points
        assert store.misses == 2 * 4  # only the delta was computed
        # ... and the topped-up run matches a cold uncached full run.
        uncached = self._run(None, 8)
        assert [r.values for r in long] == [r.values for r in uncached]

    def test_ensemble_path_reads_interpreted_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        interpreted = self._run(store, 4)
        store.hits = store.misses = 0
        vectorized = self._run(store, 4, **self._ensemble_kwargs())
        assert [r.values for r in vectorized] == [
            r.values for r in interpreted
        ]
        assert store.misses == 0

    def test_ensemble_path_tops_up_with_one_tail_per_round(self, tmp_path):
        store = ResultStore(tmp_path)
        self._run(store, 4, **self._ensemble_kwargs())
        store.hits = store.misses = store.puts = 0
        long = self._run(store, 8, **self._ensemble_kwargs())
        assert store.hits == 2 * 4
        assert store.puts == 2 * 4
        assert [r.values for r in long] == [
            r.values for r in self._run(None, 8)
        ]
