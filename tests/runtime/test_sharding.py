"""Tests for the shard partition/seed/execution runtime."""

import pytest

from repro.runtime import TaskError
from repro.runtime.sharding import (
    SHARD_STRATEGIES,
    ShardPlan,
    map_shards,
    partition_indices,
    run_sharded,
    shard_node_seeds,
)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise ValueError("boom")
    return x


class TestPartitionIndices:
    @pytest.mark.parametrize("strategy", SHARD_STRATEGIES)
    @pytest.mark.parametrize("n_items,shards", [(1, 1), (5, 2), (7, 3), (8, 8), (100, 7)])
    def test_partition_invariants(self, n_items, shards, strategy):
        plan = partition_indices(n_items, shards, strategy)
        # non-empty, disjoint, covering
        seen = []
        for shard in plan.shards:
            assert len(shard) > 0
            seen.extend(shard.node_indices)
        assert sorted(seen) == list(range(n_items))
        assert len(seen) == len(set(seen))
        # balanced: sizes differ by at most one
        sizes = [len(s) for s in plan.shards]
        assert max(sizes) - min(sizes) <= 1

    def test_contiguous_blocks(self):
        plan = partition_indices(7, 3, "contiguous")
        assert [s.node_indices for s in plan.shards] == [
            (0, 1, 2),
            (3, 4),
            (5, 6),
        ]

    def test_round_robin_stride(self):
        plan = partition_indices(7, 3, "round-robin")
        assert [s.node_indices for s in plan.shards] == [
            (0, 3, 6),
            (1, 4),
            (2, 5),
        ]

    def test_shards_clamped_to_items(self):
        plan = partition_indices(3, 8)
        assert plan.n_shards == 3
        assert all(len(s) == 1 for s in plan.shards)

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_indices(0, 1)
        with pytest.raises(ValueError):
            partition_indices(4, 0)
        with pytest.raises(ValueError):
            partition_indices(4, 2, "bogus")


class TestShardNodeSeeds:
    def test_legacy_matches_historical_scheme(self):
        assert shard_node_seeds(2010, 4) == [2010, 2011, 2012, 2013]

    def test_legacy_requires_integer_seed(self):
        with pytest.raises(ValueError):
            shard_node_seeds(None, 3, mode="legacy")

    def test_spawn_mode_reproducible_and_entropy_ok(self):
        a = shard_node_seeds(7, 16, mode="spawn")
        b = shard_node_seeds(7, 16, mode="spawn")
        assert a == b
        assert len(shard_node_seeds(None, 4, mode="spawn")) == 4

    @pytest.mark.parametrize("mode", ["legacy", "spawn"])
    def test_collision_free_across_shards(self, mode):
        # Every shard's seed set is disjoint from every other shard's,
        # for both strategies — seeds are keyed by global node index.
        seeds = shard_node_seeds(42, 50, mode=mode)
        assert len(set(seeds)) == len(seeds)
        for strategy in SHARD_STRATEGIES:
            plan = partition_indices(50, 6, strategy)
            per_shard = [
                {seeds[i] for i in shard.node_indices}
                for shard in plan.shards
            ]
            union = set().union(*per_shard)
            assert len(union) == sum(len(s) for s in per_shard)

    def test_seed_plan_invariant_to_shard_count(self):
        # The seed of node i never depends on how the nodes are grouped.
        seeds = shard_node_seeds(9, 12, mode="spawn")
        for shards in (1, 3, 12):
            plan = partition_indices(12, shards)
            gathered = {}
            for shard in plan.shards:
                for i in shard.node_indices:
                    gathered[i] = seeds[i]
            assert [gathered[i] for i in range(12)] == seeds

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            shard_node_seeds(1, 3, mode="bogus")


class TestMapShards:
    def test_global_order_restored(self):
        items = list(range(10))
        for strategy in SHARD_STRATEGIES:
            plan = partition_indices(len(items), 3, strategy)
            assert run_sharded(_square, items, plan) == [
                x * x for x in items
            ]

    def test_per_shard_shape(self):
        plan = partition_indices(5, 2)
        per_shard = map_shards(_square, [1, 2, 3, 4, 5], plan)
        assert [len(r) for r in per_shard] == [3, 2]
        assert per_shard[0] == [1, 4, 9]
        assert per_shard[1] == [16, 25]

    def test_item_count_mismatch_rejected(self):
        plan = partition_indices(4, 2)
        with pytest.raises(ValueError):
            map_shards(_square, [1, 2, 3], plan)

    def test_failure_carries_global_index(self):
        items = [0, 1, 2, 3, 4]
        plan = partition_indices(len(items), 2, "round-robin")
        with pytest.raises(TaskError) as excinfo:
            run_sharded(_fail_on_three, items, plan)
        assert excinfo.value.index == 3
        assert excinfo.value.item == 3

    def test_parallel_workers_identical(self):
        items = list(range(8))
        plan = partition_indices(len(items), 4)
        serial = run_sharded(_square, items, plan, workers=1)
        parallel = run_sharded(_square, items, plan, workers=2)
        assert serial == parallel


class TestGlobalOrder:
    def test_shape_validation(self):
        plan = partition_indices(4, 2)
        with pytest.raises(ValueError):
            plan.global_order([[1, 2]])  # one list missing
        with pytest.raises(ValueError):
            plan.global_order([[1], [2, 3]])  # first shard has 2 items

    def test_scatter(self):
        plan = ShardPlan(
            n_items=4,
            strategy="round-robin",
            shards=partition_indices(4, 2, "round-robin").shards,
        )
        assert plan.global_order([["a", "c"], ["b", "d"]]) == [
            "a",
            "b",
            "c",
            "d",
        ]
