"""Spawn-safe seeding: collision-freedom, determinism, legacy head."""

import numpy as np

from repro.runtime.seeding import (
    replication_seeds,
    sequence_to_seed,
    spawn_seeds,
    spawn_sequences,
)


class TestSpawnSeeds:
    def test_deterministic_for_fixed_root(self):
        assert spawn_seeds(2010, 8) == spawn_seeds(2010, 8)

    def test_distinct_within_family(self):
        seeds = spawn_seeds(7, 64)
        assert len(set(seeds)) == 64

    def test_distinct_across_roots(self):
        assert set(spawn_seeds(1, 16)).isdisjoint(spawn_seeds(2, 16))

    def test_children_produce_distinct_streams(self):
        # The regression the runtime exists to prevent: replications
        # must see genuinely different randomness.
        a, b = (np.random.default_rng(s).random(16) for s in spawn_seeds(3, 2))
        assert not np.array_equal(a, b)

    def test_sequence_to_seed_is_128_bit(self):
        seq = np.random.SeedSequence(5)
        seed = sequence_to_seed(seq)
        assert 0 <= seed < 2**128
        assert seed == sequence_to_seed(np.random.SeedSequence(5))


class TestSpawnSequences:
    def test_matches_numpy_spawn_tree(self):
        ours = spawn_sequences(11, 3)
        theirs = np.random.SeedSequence(11).spawn(3)
        for a, b in zip(ours, theirs):
            assert a.generate_state(4).tolist() == b.generate_state(4).tolist()


class TestReplicationSeeds:
    def test_single_replication_is_legacy_seed(self):
        assert replication_seeds(2010, 1) == [2010]

    def test_head_is_legacy_rest_are_spawned(self):
        seeds = replication_seeds(2010, 4)
        assert seeds[0] == 2010
        assert len(set(seeds)) == 4
        assert seeds[1:] == spawn_seeds(2010, 3)

    def test_rejects_zero_replications(self):
        import pytest

        with pytest.raises(ValueError):
            replication_seeds(1, 0)
