"""Tests for the command-line interface (fast paths only)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figures" in out
        assert "validate" in out

    def test_fig7_short(self, capsys):
        assert main(["fig", "7", "--horizon", "60"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "Simulation (J)" in out

    def test_fig4_short(self, capsys):
        assert main(["fig", "4", "--horizon", "60"]) == 0
        out = capsys.readouterr().out
        assert "simulation" in out
        assert "markov" in out
        assert "petri" in out

    def test_table5_short(self, capsys):
        assert main(["table", "5", "--horizon", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "RMSE" in out

    def test_node_sweep_short(self, capsys):
        assert main(["node-sweep", "--horizon", "30"]) == 0
        out = capsys.readouterr().out
        assert "optimum Power_Down_Threshold" in out

    def test_lifetime(self, capsys):
        assert (
            main(
                [
                    "lifetime",
                    "--threshold",
                    "0.01",
                    "--horizon",
                    "30",
                    "--capacity-mah",
                    "1000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "days" in out

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig", "3"])

    def test_node_sweep_with_workers_and_replications(self, capsys):
        assert (
            main(
                [
                    "node-sweep",
                    "--horizon",
                    "2",
                    "--workers",
                    "2",
                    "--replications",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "optimum Power_Down_Threshold" in out
        assert "across 2 replications" in out
        assert "±" in out

    def test_validate_with_replications(self, capsys):
        # Replications re-run the whole Section V protocol with spawned
        # seeds and report the headline metric's uncertainty.
        assert main(["validate", "--replications", "2"]) == 0
        out = capsys.readouterr().out
        assert "percent difference across 2 replications" in out

    def test_validate_single_replication_prints_na_not_inf(self, capsys):
        # An R=1 interval has infinite half-width; the CLI must say so
        # instead of printing "± inf".
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "n/a (1 replication)" in out
        assert "inf" not in out

    def test_node_sweep_adaptive(self, capsys):
        assert (
            main(
                [
                    "node-sweep",
                    "--horizon",
                    "2",
                    "--ci-target",
                    "0.5",
                    "--max-replications",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive replications (ci-target 0.5" in out
        assert "reps," in out

    def test_network_sweep_adaptive(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "star",
                    "--nodes",
                    "2",
                    "--horizon",
                    "5",
                    "--sweep",
                    "--ci-target",
                    "0.5",
                    "--max-replications",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive replications (ci-target 0.5" in out
        assert "best threshold for the network" in out

    def test_bad_ci_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["node-sweep", "--ci-target", "0"])

    def test_replications_floor_above_cap_rejected(self, capsys):
        # --replications acts as the per-point floor under --ci-target,
        # so it must fit below the cap — a clean argparse error, not a
        # traceback from the adaptive controller.
        with pytest.raises(SystemExit):
            main(
                [
                    "node-sweep",
                    "--ci-target",
                    "0.5",
                    "--replications",
                    "100",
                    "--max-replications",
                    "64",
                ]
            )
        assert "per-point floor" in capsys.readouterr().err

    def test_network_single_run(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "line",
                    "--nodes",
                    "3",
                    "--horizon",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "network lifetime" in out
        assert "shards=1" in out

    def test_network_sharded_grid(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "grid",
                    "--grid",
                    "4x3",
                    "--horizon",
                    "5",
                    "--base-rate",
                    "0.05",
                    "--shards",
                    "3",
                    "--shard-strategy",
                    "round-robin",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4x3 grid of 12 nodes" in out
        assert "shards=3" in out

    def test_network_sweep(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "star",
                    "--nodes",
                    "2",
                    "--horizon",
                    "5",
                    "--sweep",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Network lifetime sweep" in out
        assert "best threshold for the network" in out

    def test_network_bad_grid_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["network", "--topology", "grid", "--grid", "10by10"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])


class TestBackendSelection:
    def test_backend_local_matches_default(self, capsys):
        args = ["network", "--topology", "line", "--nodes", "3", "--horizon", "5"]
        assert main(args) == 0
        default_out = capsys.readouterr().out
        assert main([*args, "--backend", "local"]) == 0
        local_out = capsys.readouterr().out
        assert local_out == default_out

    def test_backend_processes(self, capsys):
        assert (
            main(
                [
                    "node-sweep",
                    "--horizon",
                    "2",
                    "--backend",
                    "processes",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        assert "optimum Power_Down_Threshold" in capsys.readouterr().out

    def test_socket_without_connect_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["network", "--backend", "socket"])
        assert "--connect" in capsys.readouterr().err

    def test_connect_without_socket_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["network", "--connect", "localhost:9000"])
        assert "--backend socket" in capsys.readouterr().err

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["node-sweep", "--backend", "quantum"])

    def test_socket_backend_end_to_end(self, capsys):
        """worker --serve + --backend socket vs --backend local: same bits."""
        from tests.runtime.test_remote import _cli_worker

        args = [
            "network",
            "--topology",
            "line",
            "--nodes",
            "3",
            "--horizon",
            "5",
            "--sweep",
            "--shards",
            "2",
        ]
        assert main([*args, "--backend", "local"]) == 0
        local_out = capsys.readouterr().out
        worker, port = _cli_worker()
        try:
            assert (
                main(
                    [
                        *args,
                        "--backend",
                        "socket",
                        "--connect",
                        f"127.0.0.1:{port}",
                    ]
                )
                == 0
            )
            socket_out = capsys.readouterr().out
        finally:
            worker.terminate()
            worker.wait(10)
        assert socket_out == local_out


class TestStoreFlags:
    def test_store_and_no_store_conflict_rejected(self, capsys):
        # Passing both is contradictory; the CLI must say so up front
        # instead of silently letting one win.
        with pytest.raises(SystemExit):
            main(
                [
                    "node-sweep",
                    "--horizon",
                    "2",
                    "--store",
                    "/tmp/ignored",
                    "--no-store",
                ]
            )
        err = capsys.readouterr().err
        assert "--store DIR and --no-store contradict each other" in err
        assert "$REPRO_STORE" in err

    def test_no_store_overrides_env(self, capsys, tmp_path, monkeypatch):
        # $REPRO_STORE is the ambient default; --no-store must beat it
        # for one run (that is its whole purpose).
        store_dir = tmp_path / "envstore"
        monkeypatch.setenv("REPRO_STORE", str(store_dir))
        assert main(["node-sweep", "--horizon", "2", "--no-store"]) == 0
        capsys.readouterr()
        assert not store_dir.exists()
        assert main(["node-sweep", "--horizon", "2"]) == 0
        capsys.readouterr()
        assert store_dir.exists()


class TestScenarioSubcommand:
    def _write(self, tmp_path, data):
        import json

        path = tmp_path / "spec.json"
        path.write_text(json.dumps(data))
        return str(path)

    def _valid(self):
        return {
            "version": 1,
            "name": "cli-test",
            "model": "fig",
            "params": {"number": 14, "horizon": 2.0},
            "execution": {"replications": 2},
        }

    def test_validate_ok(self, capsys, tmp_path):
        path = self._write(tmp_path, self._valid())
        assert main(["scenario", "validate", path]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "cli-test" in out

    def test_show_prints_normalised_spec(self, capsys, tmp_path):
        import json

        path = self._write(tmp_path, self._valid())
        assert main(["scenario", "show", path]) == 0
        shown = json.loads(capsys.readouterr().out)
        assert shown["params"]["seed"] == 2010  # default filled in
        assert shown["execution"]["replications"] == 2

    def test_run_matches_flag_invocation(self, capsys, tmp_path):
        path = self._write(tmp_path, self._valid())
        assert main(["scenario", "run", path]) == 0
        scenario_out = capsys.readouterr().out
        assert (
            main(["fig", "14", "--horizon", "2.0", "--replications", "2"])
            == 0
        )
        assert scenario_out == capsys.readouterr().out

    def test_override_applied(self, capsys, tmp_path):
        path = self._write(tmp_path, self._valid())
        assert (
            main(
                [
                    "scenario",
                    "run",
                    path,
                    "--override",
                    "params.number=15",
                ]
            )
            == 0
        )
        assert "Figure 15" in capsys.readouterr().out

    def test_schema_error_names_key_and_exits_2(self, capsys, tmp_path):
        data = self._valid()
        data["params"]["number"] = 3
        path = self._write(tmp_path, data)
        assert main(["scenario", "validate", path]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "params.number" in err

    def test_missing_file_exits_2(self, capsys, tmp_path):
        assert (
            main(["scenario", "run", str(tmp_path / "absent.json")]) == 2
        )
        assert "cannot read" in capsys.readouterr().err

    def test_vectorized_network_spec_is_clean_error(self, capsys, tmp_path):
        # A spec-level misconfiguration surfaces as an error message,
        # not a traceback.
        path = self._write(
            tmp_path,
            {
                "version": 1,
                "name": "bad",
                "model": "network",
                "params": {"horizon": 5.0},
                "execution": {"engine": "vectorized"},
            },
        )
        assert main(["scenario", "run", path]) == 2
        err = capsys.readouterr().err
        assert "ensemble of one" in err


class TestWorkerSubcommand:
    def test_worker_requires_serve(self):
        with pytest.raises(SystemExit):
            main(["worker"])

    def test_worker_serves_and_exits_after_max_sessions(self, capsys):
        import socket as socket_module
        import threading
        import time

        from repro.runtime.remote import SocketBackend

        # Reserve a free port, then hand it to the worker (announcing
        # through capsys-captured stdout is racy to read back).
        with socket_module.socket() as probe_sock:
            probe_sock.bind(("127.0.0.1", 0))
            port = probe_sock.getsockname()[1]
        ready = threading.Event()
        result_holder = {}

        def run_worker():
            result_holder["code"] = main(
                ["worker", "--serve", str(port), "--max-sessions", "1"]
            )
            ready.set()

        thread = threading.Thread(target=run_worker, daemon=True)
        thread.start()
        backend = SocketBackend([f"127.0.0.1:{port}"], connect_timeout=10.0)
        for attempt in range(50):  # retry until the worker binds
            try:
                assert backend.map(lambda_free_square, [1, 2, 3]) == [1, 4, 9]
                break
            except Exception:
                if attempt == 49:
                    raise
                time.sleep(0.1)
        assert ready.wait(10), "worker did not exit after its only session"
        assert result_holder["code"] == 0
        assert "3 chunk(s) served" in capsys.readouterr().out


def lambda_free_square(x):
    return x * x
