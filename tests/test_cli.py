"""Tests for the command-line interface (fast paths only)."""

import pytest

from repro.cli import main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "figures" in out
        assert "validate" in out

    def test_fig7_short(self, capsys):
        assert main(["fig", "7", "--horizon", "60"]) == 0
        out = capsys.readouterr().out
        assert "Figure 7" in out
        assert "Simulation (J)" in out

    def test_fig4_short(self, capsys):
        assert main(["fig", "4", "--horizon", "60"]) == 0
        out = capsys.readouterr().out
        assert "simulation" in out
        assert "markov" in out
        assert "petri" in out

    def test_table5_short(self, capsys):
        assert main(["table", "5", "--horizon", "60"]) == 0
        out = capsys.readouterr().out
        assert "Table V" in out
        assert "RMSE" in out

    def test_node_sweep_short(self, capsys):
        assert main(["node-sweep", "--horizon", "30"]) == 0
        out = capsys.readouterr().out
        assert "optimum Power_Down_Threshold" in out

    def test_lifetime(self, capsys):
        assert (
            main(
                [
                    "lifetime",
                    "--threshold",
                    "0.01",
                    "--horizon",
                    "30",
                    "--capacity-mah",
                    "1000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "days" in out

    def test_invalid_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["fig", "3"])

    def test_node_sweep_with_workers_and_replications(self, capsys):
        assert (
            main(
                [
                    "node-sweep",
                    "--horizon",
                    "2",
                    "--workers",
                    "2",
                    "--replications",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "optimum Power_Down_Threshold" in out
        assert "across 2 replications" in out
        assert "±" in out

    def test_validate_with_replications(self, capsys):
        # Replications re-run the whole Section V protocol with spawned
        # seeds and report the headline metric's uncertainty.
        assert main(["validate", "--replications", "2"]) == 0
        out = capsys.readouterr().out
        assert "percent difference across 2 replications" in out

    def test_validate_single_replication_prints_na_not_inf(self, capsys):
        # An R=1 interval has infinite half-width; the CLI must say so
        # instead of printing "± inf".
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "n/a (1 replication)" in out
        assert "inf" not in out

    def test_node_sweep_adaptive(self, capsys):
        assert (
            main(
                [
                    "node-sweep",
                    "--horizon",
                    "2",
                    "--ci-target",
                    "0.5",
                    "--max-replications",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive replications (ci-target 0.5" in out
        assert "reps," in out

    def test_network_sweep_adaptive(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "star",
                    "--nodes",
                    "2",
                    "--horizon",
                    "5",
                    "--sweep",
                    "--ci-target",
                    "0.5",
                    "--max-replications",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "adaptive replications (ci-target 0.5" in out
        assert "best threshold for the network" in out

    def test_bad_ci_target_rejected(self):
        with pytest.raises(SystemExit):
            main(["node-sweep", "--ci-target", "0"])

    def test_replications_floor_above_cap_rejected(self, capsys):
        # --replications acts as the per-point floor under --ci-target,
        # so it must fit below the cap — a clean argparse error, not a
        # traceback from the adaptive controller.
        with pytest.raises(SystemExit):
            main(
                [
                    "node-sweep",
                    "--ci-target",
                    "0.5",
                    "--replications",
                    "100",
                    "--max-replications",
                    "64",
                ]
            )
        assert "per-point floor" in capsys.readouterr().err

    def test_network_single_run(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "line",
                    "--nodes",
                    "3",
                    "--horizon",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "network lifetime" in out
        assert "shards=1" in out

    def test_network_sharded_grid(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "grid",
                    "--grid",
                    "4x3",
                    "--horizon",
                    "5",
                    "--base-rate",
                    "0.05",
                    "--shards",
                    "3",
                    "--shard-strategy",
                    "round-robin",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "4x3 grid of 12 nodes" in out
        assert "shards=3" in out

    def test_network_sweep(self, capsys):
        assert (
            main(
                [
                    "network",
                    "--topology",
                    "star",
                    "--nodes",
                    "2",
                    "--horizon",
                    "5",
                    "--sweep",
                    "--shards",
                    "2",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Network lifetime sweep" in out
        assert "best threshold for the network" in out

    def test_network_bad_grid_spec_rejected(self):
        with pytest.raises(SystemExit):
            main(["network", "--topology", "grid", "--grid", "10by10"])

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])
