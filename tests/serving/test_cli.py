"""The ``repro.cli query`` client and ``serve`` argument handling.

``query`` must print the served output *verbatim* — CI diffs its
stdout byte-for-byte against ``scenario run`` — and route every
failure (unreachable server, schema rejection, failed job) to stderr
with exit code 2, mirroring ``scenario run``'s error contract.
"""

import io
import json
from contextlib import redirect_stdout

import pytest

from repro.cli import main
from repro.runtime import ExecutionConfig
from repro.scenarios import ScenarioSpec, run_scenario
from repro.serving import SweepService, serve_http

SCENARIO = {
    "version": 1,
    "name": "serving-cli-test",
    "model": "fig",
    "params": {"number": 14, "horizon": 2.0},
    "execution": {"replications": 2},
}


@pytest.fixture(scope="module")
def reference():
    spec = ScenarioSpec.from_dict(SCENARIO)
    buf = io.StringIO()
    with redirect_stdout(buf):
        code = run_scenario(spec)
    return code, buf.getvalue()


@pytest.fixture(scope="module")
def live(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("serving-cli") / "store"
    service = SweepService(
        ExecutionConfig(store_dir=store_dir), progress_interval=0.0
    )
    server, _thread = serve_http(service)
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}"
    server.shutdown()
    server.server_close()
    service.close()


@pytest.fixture
def spec_file(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(SCENARIO))
    return str(path)


class TestQuery:
    @pytest.mark.parametrize("mode", ["sync", "poll", "stream"])
    def test_output_is_verbatim_scenario_run(
        self, live, spec_file, reference, capsys, mode
    ):
        ref_code, ref_out = reference
        code = main(
            ["query", spec_file, "--server", live, "--mode", mode]
        )
        captured = capsys.readouterr()
        assert code == ref_code
        assert captured.out == ref_out
        assert captured.err == ""

    def test_overrides_travel_to_the_server(
        self, live, spec_file, reference, capsys
    ):
        _, ref_out = reference
        code = main(
            [
                "query", spec_file, "--server", live,
                "--override", "params.horizon=1.0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert captured.out != ref_out  # different horizon, different rows
        assert "1 s" in captured.out

    def test_stats_flag_prints_server_stats(self, live, capsys):
        code = main(["query", "--server", live, "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        stats = json.loads(captured.out)
        assert stats["store"]["enabled"]
        assert stats["requests"]["total"] > 0

    def test_schema_rejection_is_exit_2_on_stderr(
        self, live, tmp_path, capsys
    ):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(dict(SCENARIO, version=99)))
        code = main(["query", str(bad), "--server", live])
        captured = capsys.readouterr()
        assert code == 2
        assert "version 99" in captured.err
        assert captured.out == ""

    def test_unreachable_server_is_exit_2(self, spec_file, capsys):
        code = main(
            ["query", spec_file, "--server", "http://127.0.0.1:1", "--timeout", "2"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")

    def test_missing_file_is_exit_2(self, live, tmp_path, capsys):
        code = main(
            ["query", str(tmp_path / "absent.json"), "--server", live]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "error:" in captured.err

    def test_unparseable_spec_file_is_exit_2(self, live, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        code = main(["query", str(bad), "--server", live])
        captured = capsys.readouterr()
        assert code == 2
        assert "invalid JSON" in captured.err

    def test_no_file_without_stats_is_a_usage_error(self, live, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["query", "--server", live])
        assert exc.value.code == 2
        assert "FILE" in capsys.readouterr().err


class TestServeArgs:
    def test_port_out_of_range_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "--port", "70000"])
        assert exc.value.code == 2
        assert "--port" in capsys.readouterr().err

    def test_store_conflict_is_a_usage_error(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as exc:
            main(
                ["serve", "--store", str(tmp_path / "s"), "--no-store"]
            )
        assert exc.value.code == 2
        assert "--no-store" in capsys.readouterr().err
